"""Plain-text tables and series for the benchmark harness output.

The paper reports Figures 2 and 3 as line charts; a terminal harness
renders the same data as aligned columns, one row per database size and
one column per algorithm, which preserves exactly the information the
figures carry (who wins, by how much, and the growth trend).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence


@dataclass
class Table:
    """A small column-aligned text table builder."""

    headers: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)
    title: str = ""

    def add_row(self, *values: Any) -> None:
        """Append one row; must match the header count."""
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells for {len(self.headers)} headers"
            )
        self.rows.append(values)

    def render(self) -> str:
        """Render the aligned table."""
        cells = [[_fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(h), *(len(row[i]) for row in cells)) if cells else len(h)
            for i, h in enumerate(self.headers)
        ]
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(
            "  ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append(
                "  ".join(c.rjust(w) for c, w in zip(row, widths))
            )
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:,.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence[Any]]
) -> str:
    """One-shot table rendering."""
    table = Table(headers=headers, title=title)
    for row in rows:
        table.add_row(*row)
    return table.render()


def format_series(
    title: str,
    x_label: str,
    series: Mapping[str, Mapping[Any, float]],
) -> str:
    """Render ``{series name: {x: y}}`` as a table with one column per series.

    This is the textual equivalent of a multi-line figure: x values become
    rows, series names become columns.
    """
    xs = sorted({x for points in series.values() for x in points})
    headers = [x_label, *series.keys()]
    rows = []
    for x in xs:
        rows.append(
            [x, *(points.get(x, float("nan")) for points in series.values())]
        )
    return format_table(title, headers, rows)
