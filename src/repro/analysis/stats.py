"""Quality metrics: approximation ratios and algorithm comparisons.

The Figure-2 harness uses :func:`compare_algorithms` to produce the
"distance approximation" series (cover weight per algorithm per database),
optionally anchored by the exact optimum on small instances.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.exceptions import SetCoverError
from repro.repair.builder import RepairProblem
from repro.setcover.exact import exact_cover
from repro.setcover.result import Cover
from repro.setcover.solvers import get_solver


def approximation_ratio(approximate: Cover, optimal: Cover) -> float:
    """``weight(approx) / weight(opt)``; 1.0 when both are zero."""
    if optimal.weight == 0:
        if approximate.weight == 0:
            return 1.0
        raise SetCoverError(
            "optimal cover has zero weight but approximation does not"
        )
    return approximate.weight / optimal.weight


@dataclass(frozen=True)
class AlgorithmComparison:
    """Covers of several algorithms over one repair problem."""

    covers: Mapping[str, Cover]
    solve_seconds: Mapping[str, float]
    optimum: Cover | None = None
    ratios: Mapping[str, float] = field(default_factory=dict)

    def weight(self, algorithm: str) -> float:
        """Cover weight of one algorithm."""
        return self.covers[algorithm].weight

    def best_algorithm(self) -> str:
        """The algorithm with the lightest cover (ties: first registered)."""
        return min(self.covers, key=lambda name: self.covers[name].weight)


def compare_algorithms(
    problem: RepairProblem,
    algorithms: Iterable[str] = ("greedy", "layer"),
    with_exact: bool = False,
    exact_max_elements: int = 40,
) -> AlgorithmComparison:
    """Solve one problem with several algorithms and collect weights/times.

    ``with_exact`` additionally computes the true optimum when the universe
    is small enough, enabling real approximation ratios.
    """
    covers: dict[str, Cover] = {}
    seconds: dict[str, float] = {}
    for name in algorithms:
        solver = get_solver(name)
        started = time.perf_counter()
        covers[name] = solver(problem.setcover)
        seconds[name] = time.perf_counter() - started

    optimum: Cover | None = None
    ratios: dict[str, float] = {}
    if with_exact and problem.setcover.n_elements <= exact_max_elements:
        optimum = exact_cover(problem.setcover, max_elements=exact_max_elements)
        ratios = {
            name: approximation_ratio(cover, optimum)
            for name, cover in covers.items()
        }
    return AlgorithmComparison(
        covers=covers, solve_seconds=seconds, optimum=optimum, ratios=ratios
    )
