"""Repair-quality analytics and text reporting for the bench harness."""

from repro.analysis.stats import (
    AlgorithmComparison,
    approximation_ratio,
    compare_algorithms,
)
from repro.analysis.explain import (
    ChangeExplanation,
    TupleExplanation,
    explain_repair,
    explain_tuple,
)
from repro.analysis.quality import RepairScore, score_repair
from repro.analysis.report import Table, format_series, format_table
from repro.analysis.structure import (
    ConflictStructure,
    analyze_structure,
    conflict_graph,
)

__all__ = [
    "AlgorithmComparison",
    "approximation_ratio",
    "compare_algorithms",
    "ChangeExplanation",
    "TupleExplanation",
    "explain_repair",
    "explain_tuple",
    "RepairScore",
    "score_repair",
    "ConflictStructure",
    "analyze_structure",
    "conflict_graph",
    "Table",
    "format_series",
    "format_table",
]
