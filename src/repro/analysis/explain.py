"""Explanations: why is a tuple inconsistent, and what are its options?

Data-cleaning users need to *inspect* before they trust a repair.  Given a
tuple, :func:`explain_tuple` reports the violation sets it participates in
(with the co-violating tuples and the constraint texts) and the candidate
mono-local fixes with their weights and coverage - the exact information
the set-cover solver weighs.  :func:`explain_repair` post-hoc annotates
every change of a computed repair with the violations it was covering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.constraints.denial import DenialConstraint
from repro.fixes.mlf import FixCandidate
from repro.model.instance import DatabaseInstance
from repro.model.tuples import Tuple, TupleRef
from repro.repair.builder import RepairProblem, build_repair_problem
from repro.repair.result import CellChange, RepairResult
from repro.violations.detector import ViolationSet


@dataclass(frozen=True)
class TupleExplanation:
    """Everything the repair machinery knows about one tuple."""

    ref: TupleRef
    tuple: Tuple
    violations: tuple[ViolationSet, ...]
    candidates: tuple[FixCandidate, ...]

    @property
    def degree(self) -> int:
        """``Deg(t, IC)`` of the tuple."""
        return len(self.violations)

    def summary(self) -> str:
        """Human-readable report."""
        lines = [f"tuple {self.tuple!r}  (degree {self.degree})"]
        for violation in self.violations:
            partners = [
                repr(t) for t in violation.sorted_tuples() if t != self.tuple
            ]
            with_text = f" with {', '.join(partners)}" if partners else ""
            lines.append(
                f"  violates {violation.constraint.label}: "
                f"{violation.constraint}{with_text}"
            )
        if self.candidates:
            lines.append("  candidate fixes:")
            for candidate in sorted(self.candidates, key=lambda c: c.weight):
                lines.append(f"    - {candidate.describe()}")
        elif self.violations:
            lines.append("  (no single-attribute fix on this tuple)")
        return "\n".join(lines)


def explain_tuple(
    instance: DatabaseInstance,
    constraints: Iterable[DenialConstraint],
    relation_name: str,
    key: tuple,
    problem: RepairProblem | None = None,
) -> TupleExplanation:
    """Explain one tuple's inconsistency and repair options.

    Pass a prebuilt ``problem`` to amortize the reduction when explaining
    many tuples.
    """
    if problem is None:
        problem = build_repair_problem(instance, tuple(constraints))
    tup = instance.get(relation_name, key)
    violations = tuple(v for v in problem.violations if tup in v)
    candidates = tuple(
        weighted_set.payload
        for weighted_set in problem.setcover.sets
        if weighted_set.payload.ref == tup.ref
    )
    return TupleExplanation(
        ref=tup.ref, tuple=tup, violations=violations, candidates=candidates
    )


@dataclass(frozen=True)
class ChangeExplanation:
    """One applied change, annotated with the violations it covered."""

    change: CellChange
    covered: tuple[ViolationSet, ...]

    def summary(self) -> str:
        labels = ", ".join(
            f"{v.constraint.label}{{{', '.join(repr(t) for t in v.sorted_tuples())}}}"
            for v in self.covered
        )
        return f"{self.change}  covering  {labels or '(subsumed duplicate)'}"


def explain_repair(
    instance: DatabaseInstance,
    constraints: Iterable[DenialConstraint],
    result: RepairResult,
) -> tuple[ChangeExplanation, ...]:
    """Annotate a repair's changes with the violations each one solved.

    A change is credited with every original violation set that the
    corresponding single-attribute update solves on its own (changes
    merged from several mono-local fixes each keep their own coverage).
    """
    constraints = tuple(constraints)
    problem = build_repair_problem(instance, constraints)
    explanations: list[ChangeExplanation] = []
    for change in result.changes:
        covered: list[ViolationSet] = []
        old = instance.resolve(change.ref)
        new = old.replace({change.attribute: change.new_value})
        for violation in problem.violations:
            if old not in violation:
                continue
            substituted = [t for t in violation.tuples if t != old]
            substituted.append(new)
            if not violation.constraint.violated_by(substituted):
                covered.append(violation)
        explanations.append(
            ChangeExplanation(change=change, covered=tuple(covered))
        )
    return tuple(explanations)
