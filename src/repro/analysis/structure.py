"""Conflict-structure analysis: the shape of an inconsistency.

The violation sets of ``(D, IC)`` induce the *conflict hypergraph*: tuples
are vertices, each violation set is a hyperedge.  Its structure governs
both complexity knobs of the paper - the degree of inconsistency
(Propositions 3.5/3.7) and the element frequency the layer algorithm's
factor depends on - and explains why repair MWSCP instances decompose into
many small components (:mod:`repro.setcover.decompose`).

:func:`conflict_graph` materializes the 2-section of the hypergraph as a
:mod:`networkx` graph (tuples connected when they co-occur in a violation
set); :func:`analyze_structure` summarizes everything the benchmarks and
examples report about inconsistency shape.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Mapping

import networkx as nx

from repro.constraints.denial import DenialConstraint
from repro.model.instance import DatabaseInstance
from repro.model.tuples import TupleRef
from repro.violations.detector import ViolationSet, find_all_violations


def conflict_graph(violations: Iterable[ViolationSet]) -> "nx.Graph":
    """The 2-section of the conflict hypergraph over tuple refs.

    Vertices are the refs of tuples participating in some violation;
    an edge joins two refs that share a violation set.  Singleton
    violation sets contribute isolated vertices.
    """
    graph = nx.Graph()
    for violation in violations:
        refs = [t.ref for t in violation.sorted_tuples()]
        graph.add_nodes_from(refs)
        for i, left in enumerate(refs):
            for right in refs[i + 1:]:
                graph.add_edge(left, right)
    return graph


@dataclass(frozen=True)
class ConflictStructure:
    """Summary statistics of the conflict hypergraph."""

    n_violations: int
    n_conflicting_tuples: int
    n_components: int
    largest_component: int
    mean_component: float
    max_degree: int                      # Deg(D, IC), Definition 2.4
    degree_histogram: Mapping[int, int]
    violation_size_histogram: Mapping[int, int]

    def summary(self) -> str:
        """Human-readable report."""
        return (
            f"violations            : {self.n_violations}\n"
            f"conflicting tuples    : {self.n_conflicting_tuples}\n"
            f"conflict components   : {self.n_components} "
            f"(largest {self.largest_component}, mean {self.mean_component:.1f})\n"
            f"degree of inconsistency: {self.max_degree} "
            f"(histogram {dict(self.degree_histogram)})\n"
            f"violation set sizes   : {dict(self.violation_size_histogram)}"
        )


def analyze_structure(
    instance: DatabaseInstance,
    constraints: Iterable[DenialConstraint],
    violations: Iterable[ViolationSet] | None = None,
) -> ConflictStructure:
    """Compute the conflict-structure summary of ``(D, IC)``."""
    constraints = tuple(constraints)
    if violations is None:
        violations = find_all_violations(instance, constraints)
    violations = tuple(violations)

    degree: Counter[TupleRef] = Counter()
    size_histogram: Counter[int] = Counter()
    for violation in violations:
        size_histogram[len(violation)] += 1
        for tup in violation:
            degree[tup.ref] += 1

    graph = conflict_graph(violations)
    components = [len(c) for c in nx.connected_components(graph)]
    return ConflictStructure(
        n_violations=len(violations),
        n_conflicting_tuples=len(degree),
        n_components=len(components),
        largest_component=max(components, default=0),
        mean_component=(
            sum(components) / len(components) if components else 0.0
        ),
        max_degree=max(degree.values(), default=0),
        degree_histogram=dict(sorted(Counter(degree.values()).items())),
        violation_size_histogram=dict(sorted(size_histogram.items())),
    )
