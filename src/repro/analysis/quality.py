"""Repair quality against ground truth: precision/recall/distance.

Given a :class:`~repro.workloads.corruption.CorruptionResult` and a repair
of its dirty instance, :func:`score_repair` computes the standard
data-cleaning metrics:

* **cell precision** - of the cells the repair changed, how many were
  actually corrupted;
* **cell recall** - of the corrupted cells, how many the repair touched;
* **value accuracy** - of the touched corrupted cells, how many were
  restored to *exactly* the clean value;
* **residual distance** - Δ(clean, repaired) vs Δ(clean, dirty): how much
  closer to the truth the repair moved the database.

Repairs only see the constraints, not the truth, so perfect scores are not
expected: an error that violates nothing is invisible (bounds recall), and
a minimal fix stops at the constraint bound rather than the original value
(bounds value accuracy).  The metrics quantify exactly that gap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fixes.distance import CITY_DISTANCE, DistanceMetric, database_delta
from repro.repair.result import RepairResult
from repro.workloads.corruption import CorruptionResult


@dataclass(frozen=True)
class RepairScore:
    """Ground-truth evaluation of one repair."""

    changed_cells: int
    corrupted_cells: int
    true_positives: int
    exact_restorations: int
    dirty_distance: float
    repaired_distance: float

    @property
    def precision(self) -> float:
        """Fraction of repaired cells that were actually corrupted."""
        if self.changed_cells == 0:
            return 1.0
        return self.true_positives / self.changed_cells

    @property
    def recall(self) -> float:
        """Fraction of corrupted cells the repair touched."""
        if self.corrupted_cells == 0:
            return 1.0
        return self.true_positives / self.corrupted_cells

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)

    @property
    def value_accuracy(self) -> float:
        """Fraction of touched corrupted cells restored exactly."""
        if self.true_positives == 0:
            return 1.0 if self.corrupted_cells == 0 else 0.0
        return self.exact_restorations / self.true_positives

    @property
    def distance_reduction(self) -> float:
        """How much of the corruption distance the repair recovered.

        1.0 = repaired database equals the truth; 0.0 = no closer than the
        dirty database; negative = the repair moved *away* from the truth.
        """
        if self.dirty_distance == 0:
            return 1.0 if self.repaired_distance == 0 else 0.0
        return 1.0 - self.repaired_distance / self.dirty_distance

    def summary(self) -> str:
        """One paragraph of metrics."""
        return (
            f"precision={self.precision:.2f} recall={self.recall:.2f} "
            f"f1={self.f1:.2f} value_accuracy={self.value_accuracy:.2f} "
            f"distance: dirty={self.dirty_distance:g} -> "
            f"repaired={self.repaired_distance:g} "
            f"(recovered {self.distance_reduction:.0%})"
        )


def score_repair(
    corruption: CorruptionResult,
    result: RepairResult,
    metric: DistanceMetric = CITY_DISTANCE,
) -> RepairScore:
    """Score a repair of ``corruption.dirty`` against ``corruption.clean``."""
    error_index = corruption.error_index
    changed = {(c.ref, c.attribute) for c in result.changes}
    true_positives = changed & set(error_index)

    exact = 0
    for key in true_positives:
        error = error_index[key]
        repaired_value = result.repaired.resolve(error.ref)[error.attribute]
        if repaired_value == error.clean_value:
            exact += 1

    return RepairScore(
        changed_cells=len(changed),
        corrupted_cells=len(error_index),
        true_positives=len(true_positives),
        exact_restorations=exact,
        dirty_distance=database_delta(corruption.clean, corruption.dirty, metric),
        repaired_distance=database_delta(
            corruption.clean, result.repaired, metric
        ),
    )
