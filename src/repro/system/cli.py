"""Command-line entry points: ``repro-repair``, ``repro lint``, ``repro trace``.

``repro-repair <config.json>`` runs the Figure-1 pipeline from a
configuration file and prints the repair summary.  ``--dry-run`` skips the
export step; ``--algorithm`` and ``--metric`` override the configured
choices; ``--changes`` also prints each cell update.  ``--trace`` records
the run with the observability layer (:mod:`repro.obs`) and prints the
span tree; ``--trace-out FILE`` writes it (``--trace-format``: ``chrome``
for ``chrome://tracing`` / Perfetto, ``json`` for the lossless native
form, ``tree`` for the text report).  ``--stream`` (with
``--max-pending`` / ``--commit-interval``) runs the pipeline in
streaming-repair mode (see :mod:`repro.repair.streaming`).

``repro lint`` runs the static constraint analyzer (:mod:`repro.lint`)
over the ``(schema, constraints)`` of one or more configuration files
and/or bundled workloads - no database instance is loaded.  Exit code 0
means no diagnostics at or above ``--fail-on``; 1 means the gate fired;
2 means a usage or configuration error.

``repro compile`` runs the static constraint-program compiler
(:mod:`repro.plan`) over the same sources: canonicalization, per-
constraint engine classification and cost ranking, and solver
pre-selection - all before any data loads.  ``--out FILE`` saves the
fingerprinted artifact, ``--strict`` exits 1 when any constraint's
kernel/pushdown execution is data-dependent (LINT050/051), and
``--cache`` routes through the on-disk plan cache.  ``repro
explain-plan`` renders a plan (from a config, workload, or saved
artifact) as a ``constraint -> engine chain -> cost -> diagnostics``
table.

``repro serve`` runs a batch of repair jobs through the
repair-as-a-service runtime (:mod:`repro.service`): bounded admission,
per-job timeouts, retry with backoff, and a shared artifact cache, with
deterministic ``--inject-kill`` / ``--inject-stall`` /
``--inject-poison`` fault hooks for the concurrency stress harness.
Exit code 0 means every job reached a terminal state (with
``--expect-clean``: every job succeeded).

``repro trace <file>`` replays a saved trace (native or Chrome format)
as an aggregated summary table - count, wall, CPU, p50/p99 and share
per span name; ``--tree`` prints the full span tree instead, and
``--latency`` the commit-latency distribution of a streaming run.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Callable, Sequence

from repro.exceptions import ReproError
from repro.system.config import RepairConfig
from repro.system.pipeline import RepairProgram


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-repair",
        description=(
            "Approximate attribute-update repairs of inconsistent databases "
            "(Lopatenko & Bravo, ICDE 2007)."
        ),
    )
    parser.add_argument("config", help="path to the JSON configuration file")
    parser.add_argument(
        "--algorithm",
        help="override the configured set-cover algorithm "
        "(greedy, modified-greedy, layer, modified-layer, exact)",
    )
    parser.add_argument(
        "--metric", help="override the configured distance metric (l1, l2, l0)"
    )
    parser.add_argument(
        "--semantics",
        choices=["update", "delete", "mixed"],
        help="override the repair semantics: attribute updates (Section 3), "
        "minimum tuple deletions (Section 5), or the combined mode",
    )
    parser.add_argument(
        "--parallel",
        choices=["serial", "thread", "process", "auto"],
        help="override the configured runtime backend: fan violation "
        "detection out per constraint and set-cover solving per connected "
        "component (results are identical on every backend)",
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        metavar="N",
        help="worker bound for the parallel runtime (default: all cores)",
    )
    parser.add_argument(
        "--engine",
        choices=["auto", "kernel", "interpreted", "pushdown"],
        help="override the violation-detection engine: the columnar NumPy "
        "kernel, the interpreted enumeration, the SQL pushdown engine "
        "(runs the violation queries inside a SQL source backend), or "
        "auto (pushdown for backend-resident instances, else kernel when "
        "NumPy is available; results are identical in every case)",
    )
    parser.add_argument(
        "--solver-engine",
        choices=["auto", "flat", "object"],
        help="override the set-cover solver engine: the flat CSR/bitset "
        "core, the per-object reference solvers, or auto (flat; results "
        "are identical either way)",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="run the pipeline in streaming-repair mode: rows are fed "
        "through a bounded, coalescing commit queue "
        "(StreamingRepairer) instead of being repaired in one batch; "
        "requires update semantics",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        metavar="N",
        help="streaming queue bound before backpressure engages "
        "(implies --stream; default 1024)",
    )
    parser.add_argument(
        "--commit-interval",
        type=int,
        metavar="N",
        help="streamed operations per auto-committed repair round "
        "(implies --stream; default 256)",
    )
    parser.add_argument(
        "--plan",
        action="store_true",
        help="enable static plan compilation for this run (equivalent to "
        "\"plan\": true in the configuration): the constraint program is "
        "compiled (or loaded from the plan cache) before any data loads "
        "and the repair executes from the plan",
    )
    parser.add_argument(
        "--plan-cache-dir",
        metavar="DIR",
        help="plan cache directory (implies --plan; default: "
        "$REPRO_PLAN_CACHE or ~/.cache/repro/plans)",
    )
    parser.add_argument(
        "--profile-only",
        action="store_true",
        help="print the inconsistency profile and exit without repairing",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="compute the repair but do not export it",
    )
    parser.add_argument(
        "--changes",
        action="store_true",
        help="print every cell update of the repair",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record the run with the observability layer and print the "
        "span tree (detect/reduce/solve/apply/verify stages, "
        "per-constraint and per-solver spans, metrics)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write the recorded trace to FILE (implies --trace)",
    )
    parser.add_argument(
        "--trace-format",
        choices=["chrome", "json", "tree"],
        help="trace file format for --trace-out (default: chrome)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        config = RepairConfig.from_file(args.config)
        overrides = {}
        if args.algorithm:
            overrides["algorithm"] = args.algorithm
        if args.metric:
            overrides["metric"] = args.metric
        if args.semantics:
            overrides["repair_semantics"] = args.semantics
        if args.parallel:
            overrides["runtime_backend"] = args.parallel
        if args.max_workers is not None:
            if args.max_workers < 1:
                print("error: --max-workers must be >= 1", file=sys.stderr)
                return 1
            overrides["runtime_workers"] = args.max_workers
        if args.engine:
            overrides["detection_engine"] = args.engine
        if args.solver_engine:
            overrides["solver_engine"] = args.solver_engine
        if args.stream or args.max_pending is not None or args.commit_interval is not None:
            overrides["streaming_enabled"] = True
        if args.max_pending is not None:
            if args.max_pending < 1:
                print("error: --max-pending must be >= 1", file=sys.stderr)
                return 1
            overrides["streaming_max_pending"] = args.max_pending
        if args.commit_interval is not None:
            if args.commit_interval < 1:
                print("error: --commit-interval must be >= 1", file=sys.stderr)
                return 1
            overrides["streaming_commit_interval"] = args.commit_interval
        if args.plan or args.plan_cache_dir:
            overrides["plan_enabled"] = True
        if args.plan_cache_dir:
            overrides["plan_cache_dir"] = args.plan_cache_dir
        if args.trace or args.trace_out or args.trace_format:
            overrides["trace_enabled"] = True
        if args.trace_out:
            overrides["trace_out"] = args.trace_out
        if args.trace_format:
            overrides["trace_format"] = args.trace_format
        if overrides:
            config = dataclasses.replace(config, **overrides)
        program = RepairProgram(config)
        if args.profile_only:
            from repro.violations import inconsistency_profile

            profile = inconsistency_profile(program.load(), config.constraints)
            print(profile)
            print(f"degree histogram : {profile.degree_histogram}")
            return 0
        report = program.run(export=not args.dry_run)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(report.summary())
    if args.changes:
        for change in report.result.changes:
            print(f"  {change}")
        if report.deletion is not None:
            for tup in report.deletion.deleted:
                print(f"  deleted {tup!r}")
    if args.trace and report.trace is not None:
        from repro.obs import render_tree

        print(render_tree(report.trace))
    return 0


def _lint_workload_sources() -> dict[str, Callable[[], tuple]]:
    """Bundled workloads as lazy ``(schema, constraints)`` factories.

    Only static schema builders and constraint text are used - no
    :class:`~repro.model.instance.DatabaseInstance` is ever constructed.
    """
    from repro.constraints.parser import parse_denials
    from repro.workloads.census import CENSUS_CONSTRAINTS, census_schema
    from repro.workloads.clientbuy import (
        CLIENT_BUY_CONSTRAINTS,
        client_buy_schema,
    )
    from repro.workloads.finance import FINANCE_CONSTRAINTS, finance_schema
    from repro.workloads.paperdemo import (
        PAPER_CONSTRAINTS,
        PUB_CONSTRAINT,
        paper_pub_schema,
    )

    from repro.workloads.tpch_like import TPCH_CONSTRAINTS, tpch_like_schema

    return {
        "clientbuy": lambda: (
            client_buy_schema(),
            parse_denials(CLIENT_BUY_CONSTRAINTS),
        ),
        "finance": lambda: (
            finance_schema(),
            parse_denials(FINANCE_CONSTRAINTS),
        ),
        "census": lambda: (
            census_schema(),
            parse_denials(CENSUS_CONSTRAINTS),
        ),
        "paperdemo": lambda: (
            paper_pub_schema(),
            parse_denials(PAPER_CONSTRAINTS + PUB_CONSTRAINT),
        ),
        "tpch": lambda: (
            tpch_like_schema(),
            parse_denials(TPCH_CONSTRAINTS),
        ),
    }


LINT_WORKLOADS = ("clientbuy", "finance", "census", "paperdemo", "tpch")


def build_lint_parser() -> argparse.ArgumentParser:
    """The ``repro lint`` argparse parser (exposed for tests and docs)."""
    from repro.lint.analyzer import PASSES

    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Static analysis of denial-constraint sets: satisfiability, "
            "redundancy, locality, approximation-bound prediction, and "
            "kernel compilability - without loading any data."
        ),
    )
    parser.add_argument(
        "configs",
        nargs="*",
        metavar="CONFIG",
        help="JSON configuration files whose (schema, constraints) to lint",
    )
    parser.add_argument(
        "--workload",
        action="append",
        choices=LINT_WORKLOADS,
        default=None,
        help="also lint a bundled workload's constraint set (repeatable)",
    )
    parser.add_argument(
        "--pass",
        action="append",
        dest="passes",
        choices=PASSES,
        default=None,
        help="run only the named pass (repeatable; default: all passes)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--fail-on",
        choices=["error", "warning", "info", "never"],
        default="error",
        help="minimum severity that makes the exit code 1 (default: error)",
    )
    return parser


def lint_main(argv: Sequence[str] | None = None) -> int:
    """``repro lint`` entry point; returns the process exit code.

    0 = no gated diagnostics, 1 = diagnostics at or above ``--fail-on``,
    2 = usage or configuration error.
    """
    from repro.lint.analyzer import lint_constraints
    from repro.lint.reporters import render_text

    args = build_lint_parser().parse_args(argv)
    workloads = args.workload or []
    if not args.configs and not workloads:
        print(
            "error: nothing to lint - pass a config file or --workload",
            file=sys.stderr,
        )
        return 2

    sources: list[tuple[str, Callable[[], tuple]]] = []
    factories = _lint_workload_sources()
    for name in workloads:
        sources.append((f"workload:{name}", factories[name]))
    for path in args.configs:
        def _from_config(path: str = path) -> tuple:
            config = RepairConfig.from_file(path)
            return config.schema, config.constraints

        sources.append((path, _from_config))

    gate_fired = False
    json_documents = []
    for source_name, factory in sources:
        try:
            schema, constraints = factory()
            report = lint_constraints(schema, constraints, passes=args.passes)
        except ReproError as error:
            print(f"error: {source_name}: {error}", file=sys.stderr)
            return 2
        if report.gated(args.fail_on):
            gate_fired = True
        if args.format == "json":
            json_documents.append({"source": source_name, **report.to_dict()})
        else:
            print(f"== {source_name} ==")
            print(render_text(report))
    if args.format == "json":
        print(json.dumps(json_documents, indent=2))
    return 1 if gate_fired else 0


def _plan_sources(
    configs: Sequence[str], workloads: Sequence[str]
) -> "list[tuple[str, Callable[[], tuple]]]":
    """``(name, factory)`` pairs for compile/explain-plan inputs."""
    sources: list[tuple[str, Callable[[], tuple]]] = []
    factories = _lint_workload_sources()
    for name in workloads:
        sources.append((f"workload:{name}", factories[name]))
    for path in configs:
        def _from_config(path: str = path) -> tuple:
            config = RepairConfig.from_file(path)
            return config.schema, config.constraints
        sources.append((path, _from_config))
    return sources


def build_compile_parser() -> argparse.ArgumentParser:
    """The ``repro compile`` argparse parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro compile",
        description=(
            "Compile (schema, constraints) into a fingerprinted "
            "CompiledProgram plan artifact: canonicalization, static "
            "engine classification and cost ranking, solver "
            "pre-selection - without loading any data."
        ),
    )
    parser.add_argument(
        "configs",
        nargs="*",
        metavar="CONFIG",
        help="JSON configuration files whose (schema, constraints) to compile",
    )
    parser.add_argument(
        "--workload",
        action="append",
        choices=LINT_WORKLOADS,
        default=None,
        help="also compile a bundled workload's constraint set (repeatable)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any constraint is not statically compilable "
        "(its kernel/pushdown execution is data-dependent, LINT050/051)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        help="write the compiled artifact to FILE (single source only)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="store/reuse the artifact through the on-disk plan cache",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="plan cache directory (implies --cache; default: "
        "$REPRO_PLAN_CACHE or ~/.cache/repro/plans)",
    )
    return parser


def compile_main(argv: Sequence[str] | None = None) -> int:
    """``repro compile`` entry point; returns the process exit code.

    0 = every source compiled, 1 = strict compilation refused a source
    (statically non-compilable constraint) or compilation failed, 2 =
    usage or configuration error.
    """
    from repro.exceptions import PlanError
    from repro.plan import PlanCache, compile_program, render_plan_text

    args = build_compile_parser().parse_args(argv)
    workloads = args.workload or []
    if not args.configs and not workloads:
        print(
            "error: nothing to compile - pass a config file or --workload",
            file=sys.stderr,
        )
        return 2
    sources = _plan_sources(args.configs, workloads)
    if args.out and len(sources) != 1:
        print(
            "error: --out needs exactly one source", file=sys.stderr
        )
        return 2

    use_cache = args.cache or args.cache_dir is not None
    cache = PlanCache(args.cache_dir) if use_cache else None
    failed = False
    json_documents = []
    for source_name, factory in sources:
        try:
            schema, constraints = factory()
            if cache is not None:
                program, hit = cache.get_or_compile(
                    schema, constraints, strict=args.strict
                )
            else:
                program, hit = (
                    compile_program(schema, constraints, strict=args.strict),
                    False,
                )
        except PlanError as error:
            print(f"error: {source_name}: {error}", file=sys.stderr)
            for diagnostic in error.diagnostics:
                print(f"  {diagnostic.code}  {diagnostic.message}", file=sys.stderr)
            failed = True
            continue
        except ReproError as error:
            print(f"error: {source_name}: {error}", file=sys.stderr)
            return 2
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(program.to_json())
        if args.format == "json":
            json_documents.append({"source": source_name, **program.to_dict()})
        else:
            cached = " (cache hit)" if hit else ""
            print(f"== {source_name}{cached} ==")
            print(render_plan_text(program))
    if args.format == "json":
        print(json.dumps(json_documents, indent=2))
    return 1 if failed else 0


def build_explain_plan_parser() -> argparse.ArgumentParser:
    """The ``repro explain-plan`` argparse parser (exposed for tests/docs)."""
    parser = argparse.ArgumentParser(
        prog="repro explain-plan",
        description=(
            "Render a compiled plan as a table: constraint -> engine "
            "chain -> static cost estimate -> diagnostics.  Input is a "
            "saved artifact (--plan), a configuration file, or a bundled "
            "workload (compiled on the fly)."
        ),
    )
    parser.add_argument(
        "configs",
        nargs="*",
        metavar="CONFIG",
        help="JSON configuration files whose plan to explain",
    )
    parser.add_argument(
        "--workload",
        action="append",
        choices=LINT_WORKLOADS,
        default=None,
        help="explain a bundled workload's plan (repeatable)",
    )
    parser.add_argument(
        "--plan",
        metavar="FILE",
        action="append",
        default=None,
        help="explain a saved plan artifact (from `repro compile --out`)",
    )
    return parser


def explain_plan_main(argv: Sequence[str] | None = None) -> int:
    """``repro explain-plan`` entry point; returns the process exit code."""
    from repro.exceptions import PlanError
    from repro.plan import CompiledProgram, compile_program, render_plan_text

    args = build_explain_plan_parser().parse_args(argv)
    workloads = args.workload or []
    plans = args.plan or []
    if not args.configs and not workloads and not plans:
        print(
            "error: nothing to explain - pass a config file, --workload, "
            "or --plan",
            file=sys.stderr,
        )
        return 2
    try:
        for path in plans:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    program = CompiledProgram.from_json(handle.read())
            except OSError as error:
                print(f"error: {path}: {error}", file=sys.stderr)
                return 2
            print(f"== {path} ==")
            print(render_plan_text(program))
        for source_name, factory in _plan_sources(args.configs, workloads):
            schema, constraints = factory()
            program = compile_program(schema, constraints)
            print(f"== {source_name} ==")
            print(render_plan_text(program))
    except PlanError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


#: Workloads ``repro serve`` can instantiate with data (seeded builders).
SERVE_WORKLOADS = ("clientbuy", "tpch")


def _serve_workload(name: str, size: int, seed: int):
    """Build one seeded workload instance for the service harness."""
    if name == "clientbuy":
        from repro.workloads import client_buy_workload

        return client_buy_workload(
            n_clients=size, inconsistency_ratio=0.3, seed=seed
        )
    from repro.workloads import tpch_like_workload

    return tpch_like_workload(
        scale_factor=max(1, size // 50), violation_ratio=0.05, seed=seed
    )


def _parse_fault_specs(kills, stalls, poisons):
    """Translate ``--inject-*`` specs into a :class:`ScriptedFaults`.

    ``--inject-kill SEQ:STAGE[:N]`` (N defaults to 1),
    ``--inject-stall SEQ:STAGE:SECONDS``, ``--inject-poison SEQ:KIND``.
    Raises ``ValueError`` with a usable message on malformed specs.
    """
    from repro.service import NO_FAULTS, ScriptedFaults

    if not kills and not stalls and not poisons:
        return NO_FAULTS
    kill: dict = {}
    for spec in kills or ():
        parts = spec.split(":")
        if len(parts) not in (2, 3):
            raise ValueError(f"--inject-kill expects SEQ:STAGE[:N], got {spec!r}")
        kill[(int(parts[0]), parts[1])] = int(parts[2]) if len(parts) == 3 else 1
    stall: dict = {}
    for spec in stalls or ():
        parts = spec.split(":")
        if len(parts) != 3:
            raise ValueError(
                f"--inject-stall expects SEQ:STAGE:SECONDS, got {spec!r}"
            )
        stall[(int(parts[0]), parts[1])] = float(parts[2])
    poison: dict = {}
    for spec in poisons or ():
        parts = spec.split(":")
        if len(parts) != 2:
            raise ValueError(f"--inject-poison expects SEQ:KIND, got {spec!r}")
        poison[int(parts[0])] = parts[1]
    return ScriptedFaults(kill=kill, stall=stall, poison=poison)


def build_serve_parser() -> argparse.ArgumentParser:
    """The ``repro serve`` argparse parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Run the repair-as-a-service job runtime over a batch of "
            "repair jobs: bounded admission, per-job timeouts with "
            "cooperative cancellation, retry with backoff, and a shared "
            "artifact cache (compiled plans, lint reports, detected "
            "violations) across jobs.  Deterministic fault injection "
            "(--inject-*) drives the concurrency stress harness."
        ),
    )
    parser.add_argument(
        "config",
        nargs="?",
        help="JSON configuration file providing (schema, constraints, "
        "source) for the jobs; alternatively use --workload",
    )
    parser.add_argument(
        "--workload",
        choices=SERVE_WORKLOADS,
        help="run jobs over a bundled seeded workload instead of a config",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=4,
        metavar="N",
        help="number of repair jobs to submit (default 4)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        metavar="N",
        help="concurrent service workers (default: the config's "
        "service.workers, else 2)",
    )
    parser.add_argument(
        "--size",
        type=int,
        default=60,
        metavar="N",
        help="workload size knob for --workload (clients / rows-ish; "
        "default 60)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=7,
        metavar="N",
        help="base RNG seed for --workload data generation (default 7)",
    )
    parser.add_argument(
        "--distinct-data",
        action="store_true",
        help="give every job its own seeded instance (seed+i) instead of "
        "sharing one instance across jobs - exercises the data-token "
        "keying of the artifact cache",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        metavar="SECONDS",
        help="per-job wall budget; exceeding it cancels the job "
        "cooperatively and marks it timed-out",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        metavar="N",
        help="queue admission bound (default: unbounded)",
    )
    parser.add_argument(
        "--backpressure",
        choices=["block", "error"],
        help="policy when the queue is at --max-pending: block the "
        "submitter or reject with BackpressureError (default block)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        metavar="N",
        help="retry budget for transient worker crashes (default 2)",
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        metavar="SECONDS",
        help="base backoff between retries, doubled per attempt "
        "(default 0.05)",
    )
    parser.add_argument(
        "--cache-entries",
        type=int,
        metavar="N",
        help="artifact cache bound (default 256)",
    )
    parser.add_argument(
        "--trace-jobs",
        action="store_true",
        help="record a per-job trace (printable via job ids in --format "
        "json output)",
    )
    parser.add_argument(
        "--inject-kill",
        action="append",
        metavar="SEQ:STAGE[:N]",
        help="kill job SEQ's worker the first N times it reaches STAGE "
        "(start/plan/detect/repair/finish; repeatable)",
    )
    parser.add_argument(
        "--inject-stall",
        action="append",
        metavar="SEQ:STAGE:SECONDS",
        help="stall job SEQ at STAGE for SECONDS (cancel-aware; "
        "repeatable)",
    )
    parser.add_argument(
        "--inject-poison",
        action="append",
        metavar="SEQ:KIND",
        help="poison the KIND artifact (plan/lint/violations) job SEQ "
        "published, so the next reader refuses it (repeatable)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--expect-clean",
        action="store_true",
        help="exit 1 unless every job succeeded (stress-gate mode; "
        "without it, fault-induced failures are reported but exit 0)",
    )
    return parser


def serve_main(argv: Sequence[str] | None = None) -> int:
    """``repro serve`` entry point; returns the process exit code.

    0 = batch completed (all jobs terminal; with ``--expect-clean``, all
    succeeded), 1 = gate fired or service error, 2 = usage error.
    """
    from repro.service import JobRequest, run_jobs

    args = build_serve_parser().parse_args(argv)
    if bool(args.config) == bool(args.workload):
        print(
            "error: pass exactly one of CONFIG or --workload",
            file=sys.stderr,
        )
        return 2
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    try:
        faults = _parse_fault_specs(
            args.inject_kill, args.inject_stall, args.inject_poison
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    try:
        params: dict = {}
        if args.workload:
            options = {
                "workers": 2,
                "max_pending": None,
                "backpressure": "block",
                "job_timeout": None,
                "max_retries": 2,
                "retry_backoff": 0.05,
                "cache_entries": 256,
                "trace_jobs": False,
            }
            def job_source(i: int):
                seed = args.seed + i if args.distinct_data else args.seed
                workload = _serve_workload(args.workload, args.size, seed)
                return workload.instance, tuple(workload.constraints)
        else:
            config = RepairConfig.from_file(args.config)
            options = config.service_options()
            program = RepairProgram(config)
            instance = program.load()
            constraints = config.constraints
            params = {
                "algorithm": config.algorithm,
                "metric": config.metric,
                "engine": config.detection_engine,
                "solver_engine": config.solver_engine,
            }
            if config.runtime_backend != "serial":
                params["parallel"] = config.runtime_backend
                params["max_workers"] = config.runtime_workers
            def job_source(i: int):
                return instance, constraints
        if args.workers is not None:
            options["workers"] = args.workers
        if args.job_timeout is not None:
            options["job_timeout"] = args.job_timeout
        if args.max_pending is not None:
            options["max_pending"] = args.max_pending
        if args.backpressure is not None:
            options["backpressure"] = args.backpressure
        if args.retries is not None:
            options["max_retries"] = args.retries
        if args.retry_backoff is not None:
            options["retry_backoff"] = args.retry_backoff
        if args.cache_entries is not None:
            options["cache_entries"] = args.cache_entries
        if args.trace_jobs:
            options["trace_jobs"] = True

        requests = []
        for i in range(args.jobs):
            instance, constraints = job_source(i)
            requests.append(
                JobRequest(instance, constraints, params=params, label=f"job{i}")
            )
        views, service = run_jobs(requests, faults=faults, **options)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    by_status: dict = {}
    for view in views:
        by_status[view.status] = by_status.get(view.status, 0) + 1
    stats = service.cache.stats()
    if args.format == "json":
        document = {
            "jobs": [view.to_dict() for view in views],
            "by_status": by_status,
            "cache": stats,
        }
        print(json.dumps(document, indent=2))
    else:
        for view in views:
            line = f"{view.id}  {view.status:10s} attempts={view.attempts}"
            if view.error is not None:
                line += f"  [{view.error.code}] {view.error.message}"
            print(line)
        summary = ", ".join(
            f"{count} {status}" for status, count in sorted(by_status.items())
        )
        print(f"-- {len(views)} job(s): {summary}")
        print(
            f"-- artifact cache: {stats['hits']:.0f} hit(s), "
            f"{stats['misses']:.0f} miss(es), "
            f"{stats['evictions']:.0f} eviction(s), "
            f"{stats['poisoned']:.0f} poisoned"
        )
    non_terminal = [v for v in views if not v.terminal]
    if non_terminal:
        print(
            f"error: {len(non_terminal)} job(s) never reached a terminal "
            "state",
            file=sys.stderr,
        )
        return 1
    if args.expect_clean and by_status.get("succeeded", 0) != len(views):
        print("error: --expect-clean and not every job succeeded", file=sys.stderr)
        return 1
    return 0


def build_trace_parser() -> argparse.ArgumentParser:
    """The ``repro trace`` argparse parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description=(
            "Replay a saved repair trace (native repro-trace JSON or "
            "Chrome trace-event format) as an aggregated summary table."
        ),
    )
    parser.add_argument("file", help="path to the saved trace file")
    parser.add_argument(
        "--tree",
        action="store_true",
        help="print the full span tree instead of the summary table",
    )
    parser.add_argument(
        "--latency",
        action="store_true",
        help="print the commit-latency distribution (count, mean, p50, "
        "p99, max per commit-pipeline span) instead of the summary table",
    )
    return parser


def trace_main(argv: Sequence[str] | None = None) -> int:
    """``repro trace`` entry point; returns the process exit code."""
    from repro.obs import format_latency, format_summary, load_trace, render_tree

    args = build_trace_parser().parse_args(argv)
    try:
        trace = load_trace(args.file)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.latency:
        print(format_latency(trace))
    elif args.tree:
        print(render_tree(trace))
    else:
        print(format_summary(trace))
    return 0


def repro_main(argv: Sequence[str] | None = None) -> int:
    """``repro <subcommand>`` dispatcher.

    Subcommands: ``repair``, ``lint``, ``compile``, ``explain-plan``,
    ``serve``, ``trace``.
    """
    arguments = list(sys.argv[1:] if argv is None else argv)
    if not arguments or arguments[0] in ("-h", "--help"):
        print(
            "usage: repro {repair,lint,compile,explain-plan,serve,trace} ...\n\n"
            "subcommands:\n"
            "  repair        run the Figure-1 repair pipeline (see repro-repair)\n"
            "  lint          statically analyze a constraint set\n"
            "  compile       compile constraints into a fingerprinted plan\n"
            "  explain-plan  render a compiled plan as a table\n"
            "  serve         run a batch of jobs through the repair service\n"
            "  trace         summarize a saved repair trace",
            file=sys.stderr if arguments == [] else sys.stdout,
        )
        return 2 if not arguments else 0
    subcommand, rest = arguments[0], arguments[1:]
    if subcommand == "repair":
        return main(rest)
    if subcommand == "lint":
        return lint_main(rest)
    if subcommand == "compile":
        return compile_main(rest)
    if subcommand == "explain-plan":
        return explain_plan_main(rest)
    if subcommand == "serve":
        return serve_main(rest)
    if subcommand == "trace":
        return trace_main(rest)
    print(
        f"error: unknown subcommand {subcommand!r}; "
        "choose 'repair', 'lint', 'compile', 'explain-plan', 'serve', "
        "or 'trace'",
        file=sys.stderr,
    )
    return 2


if __name__ == "__main__":
    sys.exit(main())
