"""Command-line entry point: ``repro-repair <config.json>``.

Runs the Figure-1 pipeline from a configuration file and prints the repair
summary.  ``--dry-run`` skips the export step; ``--algorithm`` and
``--metric`` override the configured choices; ``--changes`` also prints
each cell update.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Sequence

from repro.exceptions import ReproError
from repro.system.config import RepairConfig
from repro.system.pipeline import RepairProgram


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-repair",
        description=(
            "Approximate attribute-update repairs of inconsistent databases "
            "(Lopatenko & Bravo, ICDE 2007)."
        ),
    )
    parser.add_argument("config", help="path to the JSON configuration file")
    parser.add_argument(
        "--algorithm",
        help="override the configured set-cover algorithm "
        "(greedy, modified-greedy, layer, modified-layer, exact)",
    )
    parser.add_argument(
        "--metric", help="override the configured distance metric (l1, l2, l0)"
    )
    parser.add_argument(
        "--semantics",
        choices=["update", "delete", "mixed"],
        help="override the repair semantics: attribute updates (Section 3), "
        "minimum tuple deletions (Section 5), or the combined mode",
    )
    parser.add_argument(
        "--parallel",
        choices=["serial", "thread", "process", "auto"],
        help="override the configured runtime backend: fan violation "
        "detection out per constraint and set-cover solving per connected "
        "component (results are identical on every backend)",
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        metavar="N",
        help="worker bound for the parallel runtime (default: all cores)",
    )
    parser.add_argument(
        "--engine",
        choices=["auto", "kernel", "interpreted"],
        help="override the violation-detection engine: the columnar NumPy "
        "kernel, the interpreted enumeration, or auto (kernel when NumPy "
        "is available; results are identical either way)",
    )
    parser.add_argument(
        "--profile-only",
        action="store_true",
        help="print the inconsistency profile and exit without repairing",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="compute the repair but do not export it",
    )
    parser.add_argument(
        "--changes",
        action="store_true",
        help="print every cell update of the repair",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        config = RepairConfig.from_file(args.config)
        overrides = {}
        if args.algorithm:
            overrides["algorithm"] = args.algorithm
        if args.metric:
            overrides["metric"] = args.metric
        if args.semantics:
            overrides["repair_semantics"] = args.semantics
        if args.parallel:
            overrides["runtime_backend"] = args.parallel
        if args.max_workers is not None:
            if args.max_workers < 1:
                print("error: --max-workers must be >= 1", file=sys.stderr)
                return 1
            overrides["runtime_workers"] = args.max_workers
        if args.engine:
            overrides["detection_engine"] = args.engine
        if overrides:
            config = dataclasses.replace(config, **overrides)
        program = RepairProgram(config)
        if args.profile_only:
            from repro.violations import inconsistency_profile

            profile = inconsistency_profile(program.load(), config.constraints)
            print(profile)
            print(f"degree histogram : {profile.degree_histogram}")
            return 0
        report = program.run(export=not args.dry_run)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(report.summary())
    if args.changes:
        for change in report.result.changes:
            print(f"  {change}")
        if report.deletion is not None:
            for tup in report.deletion.deleted:
                print(f"  deleted {tup!r}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
