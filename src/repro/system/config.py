"""The configuration file of the repair program (Figure 1).

The paper: *"The configuration file contains information about the schema
of the database, the integrity constraints, the flexible/non-flexible
attributes, database repair mode (update, insert into a new database, dump
into text file)."*  We use JSON::

    {
      "schema": {
        "relations": [
          {
            "name": "Client",
            "key": ["id"],
            "attributes": [
              {"name": "id"},
              {"name": "a", "flexible": true, "weight": 1.0},
              {"name": "c", "flexible": true, "weight": 1.0}
            ]
          }
        ]
      },
      "constraints": [
        "ic1: NOT(Client(id, a, c), a < 18, c > 50)"
      ],
      "algorithm": "modified-greedy",
      "metric": "l1",
      "violation_detection": "memory",
      "runtime": {"backend": "process", "max_workers": 4, "engine": "auto",
                  "solver_engine": "auto"},
      "source": {"backend": "sqlite", "path": "clients.db"},
      "export": {"mode": "update"}
    }

``source.backend`` is ``sqlite`` or ``duckdb`` (with ``path``), ``csv``
(with ``directory``), or ``memory`` (with inline ``rows``);
``export.mode`` is ``update`` / ``insert`` / ``dump`` (the latter with
``destination``).  The optional ``runtime`` block picks the
parallel-execution backend (``serial`` / ``thread`` / ``process`` /
``auto``) and worker count for the detection and solving stages, plus the
violation-detection ``engine`` (``auto`` / ``kernel`` / ``interpreted`` /
``pushdown``, see :mod:`repro.violations.kernels`); it defaults to the
serial pipeline with the ``auto`` engine, which resolves to ``pushdown``
for instances loaded from a SQL source backend.

``runtime.trace`` switches on the observability layer
(:mod:`repro.obs`): either a boolean, or an object
``{"enabled": true, "out": "trace.json", "format": "chrome"}`` naming a
file the finished trace is written to (``format``: ``chrome`` /
``json`` / ``tree``).  Without ``out`` the program still records the
trace and attaches it to its report.

``runtime.streaming`` switches the pipeline into sustained streaming
repair (:class:`repro.repair.streaming.StreamingRepairer`): either a
boolean, or an object ``{"enabled": true, "max_pending": 1024,
"commit_interval": 256, "backpressure": "block", "shards": 4}``.  Rows
from the source are streamed through a bounded, coalescing commit queue
instead of being repaired in one batch; requires the ``update`` repair
semantics.

The optional ``service`` block (``true`` or ``{"enabled": true,
"workers": 4, "max_pending": 64, "backpressure": "block",
"job_timeout": 30.0, "max_retries": 2, "retry_backoff": 0.05,
"cache_entries": 256, "trace_jobs": false}``) configures the
repair-as-a-service job runtime (:mod:`repro.service`, the ``repro
serve`` subcommand): worker concurrency, queue admission (the streaming
layer's ``block``/``error`` policies), the default per-job timeout and
retry budget, and the shared artifact-cache bound.

The optional ``lint`` block (``{"preflight": true, "fail_on": "error"}``)
makes the pipeline run the static constraint analyzer
(:mod:`repro.lint`) before loading any data and abort with a
:class:`~repro.exceptions.LintError` when the report contains
diagnostics at or above the ``fail_on`` severity (``error`` / ``warning``
/ ``info``; ``never`` reports without gating).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.constraints.denial import DenialConstraint
from repro.constraints.parser import parse_denials
from repro.exceptions import ConfigError, ConstraintParseError, SchemaError
from repro.fixes.distance import get_metric
from repro.model.schema import Attribute, AttributeRole, Relation, Schema
from repro.runtime.executor import BACKENDS, ExecutionPolicy
from repro.setcover.solvers import SOLVER_ENGINES, SOLVERS
from repro.storage.base import ExportMode
from repro.violations.kernels import ENGINES as _VALID_ENGINES

_VALID_DETECTION = ("memory", "sql")


_VALID_SEMANTICS = ("update", "delete", "mixed")

_VALID_LINT_GATES = ("error", "warning", "info", "never")


@dataclass(frozen=True)
class RepairConfig:
    """Parsed and validated repair-program configuration.

    ``repair_semantics`` selects between the paper's attribute-update
    repairs (``update``, Section 3), minimum-cardinality tuple deletions
    (``delete``, Section 5), and the conclusion's combined mode
    (``mixed``); ``table_weights`` sets the per-relation deletion weights
    ``α_{δ_R}`` for the deletion-based modes.  ``runtime_backend`` /
    ``runtime_workers`` / ``detection_engine`` / ``solver_engine``
    configure the parallel-execution runtime, the violation-detection
    engine and the set-cover solver engine (the JSON ``runtime`` block).
    """

    schema: Schema
    constraints: tuple[DenialConstraint, ...]
    algorithm: str = "modified-greedy"
    metric: str = "l1"
    violation_detection: str = "memory"
    source: Mapping[str, Any] = field(default_factory=dict)
    export_mode: ExportMode = ExportMode.UPDATE
    export_destination: str | None = None
    repair_semantics: str = "update"
    table_weights: Mapping[str, float] = field(default_factory=dict)
    runtime_backend: str = "serial"
    runtime_workers: int | None = None
    detection_engine: str = "auto"
    solver_engine: str = "auto"
    trace_enabled: bool = False
    trace_out: str | None = None
    trace_format: str = "chrome"
    streaming_enabled: bool = False
    streaming_max_pending: int | None = 1024
    streaming_commit_interval: int | None = 256
    streaming_backpressure: str = "block"
    streaming_shards: int | None = None
    lint_preflight: bool = False
    lint_fail_on: str = "error"
    plan_enabled: bool = False
    plan_cache_dir: str | None = None
    plan_strict: bool = False
    service_enabled: bool = False
    service_workers: int = 2
    service_max_pending: int | None = None
    service_backpressure: str = "block"
    service_job_timeout: float | None = None
    service_max_retries: int = 2
    service_retry_backoff: float = 0.05
    service_cache_entries: int = 256
    service_trace_jobs: bool = False

    @property
    def execution_policy(self) -> ExecutionPolicy:
        """The configured runtime as an :class:`ExecutionPolicy`."""
        return ExecutionPolicy(
            backend=self.runtime_backend, max_workers=self.runtime_workers
        )

    def service_options(self) -> "dict[str, Any]":
        """The ``service`` block as :class:`repro.service.RepairService`
        constructor keywords (``enabled`` excluded)."""
        return {
            "workers": self.service_workers,
            "max_pending": self.service_max_pending,
            "backpressure": self.service_backpressure,
            "job_timeout": self.service_job_timeout,
            "max_retries": self.service_max_retries,
            "retry_backoff": self.service_retry_backoff,
            "cache_entries": self.service_cache_entries,
            "trace_jobs": self.service_trace_jobs,
        }

    # -- parsing ------------------------------------------------------------

    @classmethod
    def from_file(cls, path: str | Path) -> "RepairConfig":
        """Load a JSON configuration file."""
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as error:
            raise ConfigError(f"cannot read config file {path}: {error}")
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigError(f"config file {path} is not valid JSON: {error}")
        return cls.from_dict(data)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RepairConfig":
        """Build a config from a parsed JSON object."""
        if not isinstance(data, Mapping):
            raise ConfigError("configuration root must be a JSON object")

        schema = _parse_schema(data.get("schema"))
        constraints = _parse_constraints(data.get("constraints"), schema)

        algorithm = data.get("algorithm", "modified-greedy")
        if algorithm not in SOLVERS:
            raise ConfigError(
                f"unknown algorithm {algorithm!r}; choose from {sorted(SOLVERS)}"
            )
        metric = data.get("metric", "l1")
        try:
            get_metric(metric)
        except Exception as error:
            raise ConfigError(str(error))

        detection = data.get("violation_detection", "memory")
        if detection not in _VALID_DETECTION:
            raise ConfigError(
                f"violation_detection must be one of {_VALID_DETECTION}, "
                f"got {detection!r}"
            )

        source = data.get("source", {"backend": "memory", "rows": {}})
        if not isinstance(source, Mapping) or "backend" not in source:
            raise ConfigError("source must be an object with a 'backend' key")
        if source["backend"] not in ("memory", "sqlite", "csv", "duckdb"):
            raise ConfigError(
                f"unknown source backend {source['backend']!r}"
            )
        if source["backend"] in ("sqlite", "duckdb") and "path" not in source:
            raise ConfigError(f"{source['backend']} source needs a 'path'")
        if source["backend"] == "csv" and "directory" not in source:
            raise ConfigError("csv source needs a 'directory'")

        semantics = data.get("repair_semantics", "update")
        if semantics not in _VALID_SEMANTICS:
            raise ConfigError(
                f"repair_semantics must be one of {_VALID_SEMANTICS}, "
                f"got {semantics!r}"
            )
        table_weights = data.get("table_weights", {})
        if not isinstance(table_weights, Mapping):
            raise ConfigError("table_weights must be an object")
        for relation_name, weight in table_weights.items():
            if relation_name not in schema:
                raise ConfigError(
                    f"table_weights names unknown relation {relation_name!r}"
                )
            if not isinstance(weight, (int, float)) or weight <= 0:
                raise ConfigError(
                    f"table_weights[{relation_name!r}] must be positive"
                )
        if semantics == "update" and table_weights:
            raise ConfigError(
                "table_weights only applies to delete/mixed repair_semantics"
            )

        runtime = data.get("runtime", {})
        if not isinstance(runtime, Mapping):
            raise ConfigError("runtime must be an object")
        runtime_backend = runtime.get("backend", "serial")
        if runtime_backend not in BACKENDS:
            raise ConfigError(
                f"runtime.backend must be one of {BACKENDS}, "
                f"got {runtime_backend!r}"
            )
        runtime_workers = runtime.get("max_workers")
        if runtime_workers is not None and (
            not isinstance(runtime_workers, int)
            or isinstance(runtime_workers, bool)
            or runtime_workers < 1
        ):
            raise ConfigError(
                f"runtime.max_workers must be a positive integer, "
                f"got {runtime_workers!r}"
            )
        detection_engine = runtime.get("engine", "auto")
        if detection_engine not in _VALID_ENGINES:
            raise ConfigError(
                f"runtime.engine must be one of {_VALID_ENGINES}, "
                f"got {detection_engine!r}"
            )
        solver_engine = runtime.get("solver_engine", "auto")
        if solver_engine not in SOLVER_ENGINES:
            raise ConfigError(
                f"runtime.solver_engine must be one of {SOLVER_ENGINES}, "
                f"got {solver_engine!r}"
            )
        trace_enabled, trace_out, trace_format = _parse_trace(
            runtime.get("trace", False)
        )
        streaming = _parse_streaming(runtime.get("streaming", False))
        if streaming[0] and semantics != "update":
            raise ConfigError(
                "runtime.streaming requires repair_semantics='update' "
                "(delete/mixed semantics repair whole-instance, not deltas)"
            )

        lint = data.get("lint", {})
        if not isinstance(lint, Mapping):
            raise ConfigError("lint must be an object")
        lint_preflight = lint.get("preflight", False)
        if not isinstance(lint_preflight, bool):
            raise ConfigError(
                f"lint.preflight must be a boolean, got {lint_preflight!r}"
            )
        lint_fail_on = lint.get("fail_on", "error")
        if lint_fail_on not in _VALID_LINT_GATES:
            raise ConfigError(
                f"lint.fail_on must be one of {_VALID_LINT_GATES}, "
                f"got {lint_fail_on!r}"
            )

        plan = _parse_plan(data.get("plan", False))
        service = _parse_service(data.get("service", False))

        export = data.get("export", {"mode": "update"})
        if not isinstance(export, Mapping):
            raise ConfigError("export must be an object")
        try:
            export_mode = ExportMode.from_name(export.get("mode", "update"))
        except ValueError as error:
            raise ConfigError(str(error))
        destination = export.get("destination")
        if export_mode is ExportMode.DUMP_TEXT and not destination:
            raise ConfigError("dump export mode needs a 'destination'")

        return cls(
            schema=schema,
            constraints=constraints,
            algorithm=algorithm,
            metric=metric,
            violation_detection=detection,
            source=dict(source),
            export_mode=export_mode,
            export_destination=destination,
            repair_semantics=semantics,
            table_weights=dict(table_weights),
            runtime_backend=runtime_backend,
            runtime_workers=runtime_workers,
            detection_engine=detection_engine,
            solver_engine=solver_engine,
            trace_enabled=trace_enabled,
            trace_out=trace_out,
            trace_format=trace_format,
            streaming_enabled=streaming[0],
            streaming_max_pending=streaming[1],
            streaming_commit_interval=streaming[2],
            streaming_backpressure=streaming[3],
            streaming_shards=streaming[4],
            lint_preflight=lint_preflight,
            lint_fail_on=lint_fail_on,
            plan_enabled=plan[0],
            plan_cache_dir=plan[1],
            plan_strict=plan[2],
            **service,
        )


def _parse_plan(data: Any) -> "tuple[bool, str | None, bool]":
    """Validate the ``plan`` block (bool or object form).

    ``true`` enables plan compilation with the default on-disk cache;
    the object form is ``{"enabled": bool, "cache_dir": str | null,
    "strict": bool}``.  ``cache_dir`` overrides the cache location
    (``null`` keeps the ``REPRO_PLAN_CACHE`` / ``~/.cache/repro/plans``
    resolution); ``strict`` refuses to run when any constraint is not
    statically compilable (see :mod:`repro.plan.compiler`).
    """
    if isinstance(data, bool):
        return data, None, False
    if not isinstance(data, Mapping):
        raise ConfigError(
            f"plan must be a boolean or an object, got {data!r}"
        )
    known = {"enabled", "cache_dir", "strict"}
    unknown = set(data) - known
    if unknown:
        raise ConfigError(
            f"unknown plan key(s) {sorted(unknown)}; "
            f"choose from {sorted(known)}"
        )
    enabled = data.get("enabled", True)
    if not isinstance(enabled, bool):
        raise ConfigError(f"plan.enabled must be a boolean, got {enabled!r}")
    cache_dir = data.get("cache_dir")
    if cache_dir is not None and not isinstance(cache_dir, str):
        raise ConfigError(
            f"plan.cache_dir must be a string or null, got {cache_dir!r}"
        )
    strict = data.get("strict", False)
    if not isinstance(strict, bool):
        raise ConfigError(f"plan.strict must be a boolean, got {strict!r}")
    return enabled, cache_dir, strict


def _parse_service(data: Any) -> "dict[str, Any]":
    """Validate the ``service`` block (bool or object form).

    The object form configures the :mod:`repro.service` job runtime::

        {"enabled": true, "workers": 4, "max_pending": 64,
         "backpressure": "block", "job_timeout": 30.0,
         "max_retries": 2, "retry_backoff": 0.05,
         "cache_entries": 256, "trace_jobs": false}

    ``max_pending``/``backpressure`` reuse the streaming layer's
    admission semantics; ``job_timeout`` (seconds, ``null`` = none) is
    the default per-job budget; ``cache_entries`` bounds the shared
    :class:`~repro.service.cache.ArtifactCache`.
    """
    from repro.repair.streaming import BACKPRESSURE_POLICIES

    defaults: "dict[str, Any]" = {
        "service_enabled": False,
        "service_workers": 2,
        "service_max_pending": None,
        "service_backpressure": "block",
        "service_job_timeout": None,
        "service_max_retries": 2,
        "service_retry_backoff": 0.05,
        "service_cache_entries": 256,
        "service_trace_jobs": False,
    }
    if isinstance(data, bool):
        defaults["service_enabled"] = data
        return defaults
    if not isinstance(data, Mapping):
        raise ConfigError(
            f"service must be a boolean or an object, got {data!r}"
        )
    known = {
        "enabled",
        "workers",
        "max_pending",
        "backpressure",
        "job_timeout",
        "max_retries",
        "retry_backoff",
        "cache_entries",
        "trace_jobs",
    }
    unknown = set(data) - known
    if unknown:
        raise ConfigError(
            f"unknown service key(s) {sorted(unknown)}; "
            f"choose from {sorted(known)}"
        )

    def boolean(key: str, default: bool) -> bool:
        value = data.get(key, default)
        if not isinstance(value, bool):
            raise ConfigError(f"service.{key} must be a boolean, got {value!r}")
        return value

    def positive_int(key: str, default: int | None, nullable: bool = False):
        value = data.get(key, default)
        if value is None and nullable:
            return None
        if isinstance(value, bool) or not isinstance(value, int) or value < 1:
            null = " or null" if nullable else ""
            raise ConfigError(
                f"service.{key} must be a positive integer{null}, got {value!r}"
            )
        return value

    defaults["service_enabled"] = boolean("enabled", True)
    defaults["service_workers"] = positive_int("workers", 2)
    defaults["service_max_pending"] = positive_int(
        "max_pending", None, nullable=True
    )
    defaults["service_cache_entries"] = positive_int("cache_entries", 256)
    backpressure = data.get("backpressure", "block")
    if backpressure not in BACKPRESSURE_POLICIES:
        raise ConfigError(
            f"service.backpressure must be one of {BACKPRESSURE_POLICIES}, "
            f"got {backpressure!r}"
        )
    defaults["service_backpressure"] = backpressure
    job_timeout = data.get("job_timeout")
    if job_timeout is not None and (
        isinstance(job_timeout, bool)
        or not isinstance(job_timeout, (int, float))
        or job_timeout <= 0
    ):
        raise ConfigError(
            f"service.job_timeout must be a positive number or null, "
            f"got {job_timeout!r}"
        )
    defaults["service_job_timeout"] = (
        float(job_timeout) if job_timeout is not None else None
    )
    max_retries = data.get("max_retries", 2)
    if isinstance(max_retries, bool) or not isinstance(max_retries, int) or max_retries < 0:
        raise ConfigError(
            f"service.max_retries must be a non-negative integer, "
            f"got {max_retries!r}"
        )
    defaults["service_max_retries"] = max_retries
    retry_backoff = data.get("retry_backoff", 0.05)
    if (
        isinstance(retry_backoff, bool)
        or not isinstance(retry_backoff, (int, float))
        or retry_backoff < 0
    ):
        raise ConfigError(
            f"service.retry_backoff must be a non-negative number, "
            f"got {retry_backoff!r}"
        )
    defaults["service_retry_backoff"] = float(retry_backoff)
    defaults["service_trace_jobs"] = boolean("trace_jobs", False)
    return defaults


def _parse_trace(data: Any) -> tuple[bool, str | None, str]:
    """Validate the ``runtime.trace`` block (bool or object form)."""
    from repro.obs import TRACE_FORMATS

    if isinstance(data, bool):
        return data, None, "chrome"
    if not isinstance(data, Mapping):
        raise ConfigError(
            f"runtime.trace must be a boolean or an object, got {data!r}"
        )
    enabled = data.get("enabled", True)
    if not isinstance(enabled, bool):
        raise ConfigError(
            f"runtime.trace.enabled must be a boolean, got {enabled!r}"
        )
    out = data.get("out")
    if out is not None and not isinstance(out, str):
        raise ConfigError(f"runtime.trace.out must be a string, got {out!r}")
    format = data.get("format", "chrome")
    if format not in TRACE_FORMATS:
        raise ConfigError(
            f"runtime.trace.format must be one of {TRACE_FORMATS}, "
            f"got {format!r}"
        )
    return enabled, out, format


def _parse_streaming(
    data: Any,
) -> tuple[bool, int | None, int | None, str, int | None]:
    """Validate the ``runtime.streaming`` block (bool or object form).

    Returns ``(enabled, max_pending, commit_interval, backpressure,
    shards)``; the object form accepts e.g. ``{"enabled": true,
    "max_pending": 512, "commit_interval": 64, "backpressure": "error",
    "shards": 4}``.
    """
    from repro.repair.streaming import BACKPRESSURE_POLICIES

    if isinstance(data, bool):
        return data, 1024, 256, "block", None
    if not isinstance(data, Mapping):
        raise ConfigError(
            f"runtime.streaming must be a boolean or an object, got {data!r}"
        )
    known = {"enabled", "max_pending", "commit_interval", "backpressure", "shards"}
    unknown = set(data) - known
    if unknown:
        raise ConfigError(
            f"unknown runtime.streaming key(s) {sorted(unknown)}; "
            f"choose from {sorted(known)}"
        )
    enabled = data.get("enabled", True)
    if not isinstance(enabled, bool):
        raise ConfigError(
            f"runtime.streaming.enabled must be a boolean, got {enabled!r}"
        )
    def positive_or_none(key: str, default: int | None) -> int | None:
        value = data.get(key, default)
        if value is not None and (
            isinstance(value, bool) or not isinstance(value, int) or value < 1
        ):
            raise ConfigError(
                f"runtime.streaming.{key} must be a positive integer or "
                f"null, got {value!r}"
            )
        return value
    max_pending = positive_or_none("max_pending", 1024)
    commit_interval = positive_or_none("commit_interval", 256)
    shards = positive_or_none("shards", None)
    backpressure = data.get("backpressure", "block")
    if backpressure not in BACKPRESSURE_POLICIES:
        raise ConfigError(
            f"runtime.streaming.backpressure must be one of "
            f"{BACKPRESSURE_POLICIES}, got {backpressure!r}"
        )
    return enabled, max_pending, commit_interval, backpressure, shards


def _parse_schema(data: Any) -> Schema:
    if not isinstance(data, Mapping) or "relations" not in data:
        raise ConfigError("config needs schema.relations")
    relations = []
    for entry in data["relations"]:
        if not isinstance(entry, Mapping):
            raise ConfigError("each relation must be an object")
        for required in ("name", "key", "attributes"):
            if required not in entry:
                raise ConfigError(f"relation is missing {required!r}")
        attributes = []
        for attribute in entry["attributes"]:
            if isinstance(attribute, str):
                attributes.append(Attribute.hard(attribute))
                continue
            if not isinstance(attribute, Mapping) or "name" not in attribute:
                raise ConfigError(
                    f"bad attribute spec in relation {entry['name']!r}: "
                    f"{attribute!r}"
                )
            role = (
                AttributeRole.FLEXIBLE
                if attribute.get("flexible", False)
                else AttributeRole.HARD
            )
            try:
                attributes.append(
                    Attribute(
                        attribute["name"], role, float(attribute.get("weight", 1.0))
                    )
                )
            except (SchemaError, ValueError) as error:
                raise ConfigError(str(error))
        try:
            relations.append(Relation(entry["name"], attributes, entry["key"]))
        except SchemaError as error:
            raise ConfigError(str(error))
    try:
        return Schema(relations)
    except SchemaError as error:
        raise ConfigError(str(error))


def _parse_constraints(data: Any, schema: Schema) -> tuple[DenialConstraint, ...]:
    if not isinstance(data, list) or not data:
        raise ConfigError("config needs a non-empty 'constraints' list")
    try:
        constraints = parse_denials([str(line) for line in data])
    except ConstraintParseError as error:
        raise ConfigError(f"bad constraint: {error}")
    for constraint in constraints:
        try:
            constraint.validate(schema)
        except Exception as error:
            raise ConfigError(str(error))
    return tuple(constraints)
