"""The repair program of Figure 1: configuration, pipeline, and CLI.

The paper's system reads a configuration file describing the schema, the
integrity constraints, the flexible attributes, and the repair export mode;
a mapping component loads the data, builds the MWSCP instance, calls the
solver, and exports the repair.  This package is that architecture:
:class:`~repro.system.config.RepairConfig` is the configuration file,
:class:`~repro.system.pipeline.RepairProgram` wires the components, and
``repro-repair`` (:mod:`repro.system.cli`) is the command-line entry point.
"""

from repro.system.config import RepairConfig
from repro.system.pipeline import ProgramReport, RepairProgram

__all__ = ["RepairConfig", "RepairProgram", "ProgramReport"]
