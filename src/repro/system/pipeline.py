"""The end-to-end repair program (the architecture of Figure 1).

``RepairProgram`` wires the boxes of the paper's Figure 1 together:

1. the *configuration parser* (:class:`RepairConfig`) has already read the
   schema, constraints, flexible attributes, and export mode;
2. the *database connectivity* component opens the configured backend;
3. the *mapping component* loads the data into main memory and builds the
   MWSCP instance (Definition 3.1);
4. the *MWSCP solver* runs the configured approximation algorithm;
5. the mapping component reconstructs the repair and the chosen *export
   mode* persists it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.cardinality.engine import DeletionRepairResult, cardinality_repair
from repro.exceptions import ConfigError, LintError
from repro.model.instance import DatabaseInstance
from repro.obs import write_trace
from repro.repair.engine import repair_database
from repro.repair.result import RepairResult
from repro.storage.base import Backend
from repro.storage.csvdir import CsvBackend
from repro.storage.memory import MemoryBackend
from repro.storage.sqlite import SqliteBackend
from repro.system.config import RepairConfig


@dataclass(frozen=True)
class ProgramReport:
    """What one run of the repair program did.

    ``result`` is always the attribute-update result (for deletion-based
    semantics, the inner result over ``D#``); ``deletion`` carries the
    projected tuple-deletion outcome when ``repair_semantics`` was
    ``delete`` or ``mixed``.
    """

    config: RepairConfig
    result: RepairResult
    export_note: str
    deletion: DeletionRepairResult | None = None
    trace: Any = None
    trace_note: str | None = None
    streaming_note: str | None = None
    plan_note: str | None = None

    def summary(self) -> str:
        """Human-readable run report."""
        lines = [self.result.summary()]
        if self.deletion is not None:
            lines.append(f"semantics        : {self.config.repair_semantics}")
            lines.append(f"tuples deleted   : {self.deletion.deletions}")
        if self.streaming_note is not None:
            lines.append(f"streaming        : {self.streaming_note}")
        if self.plan_note is not None:
            lines.append(f"plan             : {self.plan_note}")
        lines.append(f"export           : {self.export_note}")
        if self.trace_note is not None:
            lines.append(f"trace            : {self.trace_note}")
        return "\n".join(lines)


class RepairProgram:
    """One configured instance of the repair system."""

    def __init__(self, config: RepairConfig, backend: Backend | None = None) -> None:
        self.config = config
        self.backend = backend if backend is not None else self._open_backend()

    def _open_backend(self) -> Backend:
        source = self.config.source
        if source["backend"] == "sqlite":
            return SqliteBackend(source["path"])
        if source["backend"] == "duckdb":
            from repro.storage.duckdb import DuckDBBackend

            return DuckDBBackend(source["path"])
        if source["backend"] == "csv":
            return CsvBackend(source["directory"])
        rows = source.get("rows", {})
        if not isinstance(rows, dict):
            raise ConfigError("memory source 'rows' must be an object")
        normalized = {
            name: [tuple(row) for row in relation_rows]
            for name, relation_rows in rows.items()
        }
        return MemoryBackend.from_rows(self.config.schema, normalized)

    def load(self) -> DatabaseInstance:
        """Database-connectivity step: pull the instance into memory."""
        return self.backend.load_instance(self.config.schema)

    def preflight(self) -> None:
        """Run the static constraint linter before touching any data.

        Raises :class:`~repro.exceptions.LintError` (with the full
        :class:`~repro.lint.diagnostics.LintReport` attached as
        ``report``) when diagnostics at or above the configured
        ``lint.fail_on`` severity exist.
        """
        from repro.lint.analyzer import lint_constraints

        report = lint_constraints(self.config.schema, self.config.constraints)
        if report.gated(self.config.lint_fail_on):
            worst = report.max_severity
            raise LintError(
                f"constraint lint preflight failed: {len(report)} "
                f"diagnostic(s), worst severity "
                f"{worst.value if worst else 'none'} "
                f"(gate: {self.config.lint_fail_on})",
                report=report,
            )

    def compile_plan(self) -> "tuple[Any, str] | tuple[None, None]":
        """Compile (or cache-load) the static plan the ``plan`` block asks for.

        Returns ``(plan, note)``; ``(None, None)`` when plan compilation
        is disabled or does not apply (deletion-based semantics rewrite
        the constraint set per run, so a precompiled artifact of the
        configured constraints would never match).  Strict-compilation
        failures propagate as :class:`~repro.exceptions.PlanError`.
        """
        if not self.config.plan_enabled:
            return None, None
        if self.config.repair_semantics in ("delete", "mixed"):
            return None, None
        from repro.plan import PlanCache

        cache = PlanCache(self.config.plan_cache_dir)
        program, hit = cache.get_or_compile(
            self.config.schema,
            self.config.constraints,
            strict=self.config.plan_strict,
        )
        note = (
            f"{program.fingerprint[:12]} "
            f"({'cache hit' if hit else 'compiled'}, "
            f"{len(program.executed_entries)} executed, "
            f"{len(program.skipped_entries)} eliminated)"
        )
        return program, note

    def run(self, export: bool = True) -> ProgramReport:
        """Execute the full pipeline; ``export=False`` is a dry run."""
        if self.config.lint_preflight:
            self.preflight()
        plan, plan_note = self.compile_plan()
        instance = self.load()
        if self.config.repair_semantics in ("delete", "mixed"):
            return self._run_deletion(instance, export)
        if self.config.streaming_enabled:
            return self._run_streaming(instance, export, plan, plan_note)

        violations = None
        if self.config.violation_detection == "sql":
            violations = self.backend.find_violations(
                self.config.schema, self.config.constraints
            )
        policy = self.config.execution_policy
        result = repair_database(
            instance,
            self.config.constraints,
            algorithm=self.config.algorithm,
            metric=self.config.metric,
            violations=violations,
            parallel=policy if policy.backend != "serial" else None,
            engine=self.config.detection_engine,
            solver_engine=self.config.solver_engine,
            trace=self.config.trace_enabled,
            plan=plan,
        )
        if export:
            note = self.backend.export_repair(
                result, self.config.export_mode, self.config.export_destination
            )
        else:
            note = "dry run (no export)"
        trace, trace_note = self._emit_trace(result.trace)
        return ProgramReport(
            config=self.config,
            result=result,
            export_note=note,
            trace=trace,
            trace_note=trace_note,
            plan_note=plan_note,
        )

    def _run_streaming(
        self,
        instance: DatabaseInstance,
        export: bool,
        plan: Any = None,
        plan_note: str | None = None,
    ) -> ProgramReport:
        """Streaming semantics: feed the loaded rows through the pipeline.

        Rows stream as inserts into an (initially empty) working instance
        through :class:`~repro.repair.streaming.StreamingRepairer`'s
        bounded commit queue; every ``commit_interval`` operations a
        Δ-anchored repair round runs, so memory and per-round latency
        stay proportional to the delta rather than the database.  A
        full queue under the ``"error"`` backpressure policy surfaces as
        :class:`~repro.exceptions.BackpressureError` (the CLI prints it
        and exits non-zero); the default ``"block"`` policy drains a
        round instead.  The aggregate result's ``changes`` are relative
        to the loaded (source) content, so the normal cell-update export
        applies.
        """
        from repro.repair.streaming import StreamingRepairer

        policy = self.config.execution_policy
        streamer = StreamingRepairer(
            DatabaseInstance(self.config.schema),
            self.config.constraints,
            max_pending=self.config.streaming_max_pending,
            commit_interval=self.config.streaming_commit_interval,
            backpressure=self.config.streaming_backpressure,
            trace=self.config.trace_enabled,
            algorithm=self.config.algorithm,
            metric=self.config.metric,
            parallel=policy if policy.backend != "serial" else None,
            engine=self.config.detection_engine,
            solver_engine=self.config.solver_engine,
            shards=self.config.streaming_shards,
            plan=plan,
        )
        for relation in self.config.schema:
            for tup in instance.tuples(relation.name):
                streamer.insert(relation.name, tup.values)
        streamer.flush()
        result = streamer.aggregate_result()
        if export:
            note = self.backend.export_repair(
                result, self.config.export_mode, self.config.export_destination
            )
        else:
            note = "dry run (no export)"
        trace, trace_note = self._emit_trace(
            streamer.finish_trace() if self.config.trace_enabled else None
        )
        stats = streamer.stats
        streaming_note = (
            f"{stats.total_submitted} ops in {stats.rounds} round(s), "
            f"{stats.coalesced} coalesced, "
            f"{stats.backpressure_blocks} backpressure block(s)"
        )
        return ProgramReport(
            config=self.config,
            result=result,
            export_note=note,
            trace=trace,
            trace_note=trace_note,
            streaming_note=streaming_note,
            plan_note=plan_note,
        )

    def _run_deletion(
        self, instance: DatabaseInstance, export: bool
    ) -> ProgramReport:
        """Deletion-based semantics: Section 5's reduction, snapshot export.

        Deletions shrink relations, so the export uses the backends'
        snapshot path (table rewrite / new tables / text dump) instead of
        per-cell updates.
        """
        policy = self.config.execution_policy
        deletion = cardinality_repair(
            instance,
            self.config.constraints,
            algorithm=self.config.algorithm,
            mode=self.config.repair_semantics,      # "delete" | "mixed"
            table_weights=self.config.table_weights or None,
            metric=self.config.metric,
            parallel=policy if policy.backend != "serial" else None,
            engine=self.config.detection_engine,
            solver_engine=self.config.solver_engine,
            trace=self.config.trace_enabled,
        )
        if export:
            note = self.backend.export_snapshot(
                deletion.repaired,
                self.config.export_mode,
                self.config.export_destination,
            )
        else:
            note = "dry run (no export)"
        trace, trace_note = self._emit_trace(deletion.trace)
        return ProgramReport(
            config=self.config,
            result=deletion.inner,
            export_note=note,
            deletion=deletion,
            trace=trace,
            trace_note=trace_note,
        )

    def _emit_trace(self, trace) -> "tuple[Any, str | None]":
        """Write the finished trace to the configured file, if any."""
        if trace is None:
            return None, None
        if self.config.trace_out is None:
            return trace, f"recorded ({len(trace)} spans, not written)"
        path = write_trace(trace, self.config.trace_out, self.config.trace_format)
        return trace, f"written to {path} ({self.config.trace_format})"
