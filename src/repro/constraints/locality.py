"""Locality check for sets of linear denial constraints (Section 2).

A set ``IC`` of linear denials is *local* when:

(a) attributes participating in equality atoms or joins are all hard;
(b) every ``ic ∈ IC`` has at least one flexible attribute among the
    attributes of its built-ins (``A_B(ic) ∩ F ≠ ∅``);
(c) no flexible attribute appears in ``IC`` both in comparisons of the form
    ``A < c₁`` and ``A > c₂`` (after the footnote-2 normalization of
    ``≤``/``≥``/``≠`` into strict comparisons).

Locality guarantees that local fixes never create new inconsistencies and
that a repair always exists, so the repair engine enforces it up front.

Condition (c) is checked on *flexible* attributes: hard attributes are never
updated, so mixed comparison directions on them cannot destabilize fixes.
The check also derives, for every flexible attribute mentioned by the
built-ins, its unique *fix direction*: ``UP`` when the attribute occurs in
``<`` comparisons (fixes raise the value to the smallest bound,
Definition 2.8 case (a)) and ``DOWN`` for ``>`` comparisons (fixes lower the
value to the largest bound, case (b)).
"""

from __future__ import annotations

import enum
from typing import Iterable

from repro.constraints.atoms import Comparator
from repro.constraints.denial import DenialConstraint
from repro.exceptions import LocalityError
from repro.model.schema import Schema


class FixDirection(enum.Enum):
    """Direction a mono-local fix moves a flexible attribute."""

    UP = "up"      # attribute occurs in "<" comparisons; fix raises the value
    DOWN = "down"  # attribute occurs in ">" comparisons; fix lowers the value


def _equality_variables(constraint: DenialConstraint) -> set[str]:
    """Variables condition (a) restricts to hard attributes.

    These are the variables of equality-class built-ins (=, ≠ against a
    constant) and of *every* variable/variable comparison - including the
    order forms ``x < y + c``: a fix moving either side of a cross-atom
    comparison could create fresh violations, so such variables must be
    hard for locality to hold.
    """
    variables: set[str] = set()
    for builtin in constraint.builtins:
        if builtin.comparator in (Comparator.EQ, Comparator.NE):
            variables.add(builtin.variable)
    for comparison in constraint.variable_comparisons:
        variables.add(comparison.left)
        variables.add(comparison.right)
    return variables


def check_local(constraint: DenialConstraint, schema: Schema) -> None:
    """Check conditions (a) and (b) for one constraint.

    Raises :class:`LocalityError` with a diagnostic message on failure;
    the exception's ``diagnostics`` tuple carries *every* failing
    condition, not just the first (the message stays the first one's).
    Condition (c) is inherently a property of the whole set; use
    :func:`check_local_set` for it.
    """
    constraint.validate(schema)
    from repro.lint.locality import constraint_locality_diagnostics

    diagnostics = constraint_locality_diagnostics(constraint, schema)
    if diagnostics:
        raise LocalityError(diagnostics[0].message, diagnostics=diagnostics)


def comparison_directions(
    constraints: Iterable[DenialConstraint], schema: Schema
) -> dict[tuple[str, str], set[FixDirection]]:
    """Map flexible ``(relation, attribute)`` to its comparison directions.

    Only strict comparisons after normalization are considered; equality
    built-ins on flexible attributes are rejected by condition (a) before
    this map matters.
    """
    directions: dict[tuple[str, str], set[FixDirection]] = {}
    for constraint in constraints:
        for builtin in constraint.builtins:
            for normalized in builtin.normalized():
                if normalized.comparator is Comparator.LT:
                    direction = FixDirection.UP
                elif normalized.comparator is Comparator.GT:
                    direction = FixDirection.DOWN
                else:
                    continue
                for pair in constraint.bound_attributes(normalized.variable, schema):
                    relation_name, attribute_name = pair
                    attribute = schema.relation(relation_name).attribute(attribute_name)
                    if attribute.is_flexible:
                        directions.setdefault(pair, set()).add(direction)
    return directions


def check_local_set(
    constraints: Iterable[DenialConstraint], schema: Schema
) -> None:
    """Check that a set of constraints is local (conditions (a)-(c)).

    Raises :class:`LocalityError` whose message is the first failing
    condition's (matching the historical fail-first behavior) and whose
    ``diagnostics`` tuple collects *all* failures - every condition (a)
    attribute, every condition (b) constraint, every condition (c)
    direction clash (see :mod:`repro.lint.locality`).
    """
    constraints = list(constraints)
    for constraint in constraints:
        constraint.validate(schema)
    from repro.lint.locality import locality_diagnostics

    diagnostics = locality_diagnostics(constraints, schema)
    if diagnostics:
        raise LocalityError(diagnostics[0].message, diagnostics=diagnostics)


def is_local(constraint: DenialConstraint, schema: Schema) -> bool:
    """True when ``{constraint}`` is a local set."""
    return is_local_set([constraint], schema)


def is_local_set(
    constraints: Iterable[DenialConstraint], schema: Schema
) -> bool:
    """Boolean form of :func:`check_local_set`."""
    try:
        check_local_set(constraints, schema)
    except LocalityError:
        return False
    return True


def fix_direction(
    constraints: Iterable[DenialConstraint],
    schema: Schema,
    relation_name: str,
    attribute_name: str,
) -> FixDirection | None:
    """The unique fix direction of a flexible attribute in a local set.

    Returns ``None`` when the attribute occurs in no strict comparison of
    any constraint (then it has no mono-local fixes).
    """
    directions = comparison_directions(constraints, schema).get(
        (relation_name, attribute_name)
    )
    if not directions:
        return None
    if len(directions) > 1:
        raise LocalityError(
            f"attribute {relation_name}.{attribute_name} has conflicting fix "
            "directions; the constraint set is not local"
        )
    return next(iter(directions))
