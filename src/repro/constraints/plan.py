"""Compile denial constraints into columnar detection plans.

The interpreted detector (:mod:`repro.violations.detector`) re-derives a
denial's join structure on every call and evaluates it tuple-by-tuple
through Python closures.  The detection kernels instead *compile* each
:class:`~repro.constraints.denial.DenialConstraint` once into a
:class:`ConstraintPlan` - the columnar analogue of Algorithm 2's SQL-view
formulation, where each constraint becomes one select-project-join query:

* per-atom **local filters**: variable/constant built-ins ``x θ c`` and
  intra-atom repeated variables, evaluable as vectorized masks over one
  relation's columns (the SQL ``WHERE`` clauses on a single alias);
* **join variables**: variables spanning several atoms, i.e. the equality
  join edges of the view;
* **resolved comparisons**: variable/variable built-ins ``x θ y + c``
  mapped to ``(atom, position)`` slots, so an executor can gather both
  sides without re-walking the constraint.

:func:`order_atoms` implements the selectivity-driven join planner: given
the *measured* post-filter candidate count of every atom it produces a
left-deep join order that starts from the most selective atom and prefers
equality-connected expansions (hash/sort joins) over order-connected ones
(sorted interval lookups) over cartesian products.

The plan is engine-agnostic plain data - :mod:`repro.violations.kernels`
executes it with NumPy, and tests can interpret it directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, Mapping

from repro.constraints.atoms import BuiltinAtom, Comparator, VariableComparison
from repro.constraints.denial import DenialConstraint

#: Planner preference classes, best first (lower sorts earlier).
_EQUALITY_EDGE = 0
_ORDER_EDGE = 1
_WEAK_EDGE = 2       # ≠ only: barely filters, but still beats a blind product
_DISCONNECTED = 3


@dataclass(frozen=True)
class LocalFilter:
    """One vectorizable single-atom condition ``column[position] θ constant``."""

    position: int
    comparator: Comparator
    constant: int


@dataclass(frozen=True)
class AtomPlan:
    """Per-atom slice of the plan: relation scan + local masks.

    ``intra_equalities`` lists the position groups of variables repeated
    *within* the atom (each group must be pairwise equal); ``filters``
    apply each var/constant built-in at every position its variable
    occupies in this atom, mirroring the interpreted
    ``_local_predicate`` exactly.
    """

    atom_index: int
    relation_name: str
    filters: tuple[LocalFilter, ...]
    intra_equalities: tuple[tuple[int, ...], ...]


@dataclass(frozen=True)
class ResolvedComparison:
    """A variable/variable built-in with its variables kept by name.

    Executors resolve each side to a concrete ``(atom, position)`` slot
    through :attr:`ConstraintPlan.var_slots` at join time (the slot used
    depends on which atoms are already joined).
    """

    left: str
    comparator: Comparator
    right: str
    offset: int

    @property
    def is_equality(self) -> bool:
        return self.comparator is Comparator.EQ

    @property
    def is_order(self) -> bool:
        return self.comparator in (
            Comparator.LT,
            Comparator.GT,
            Comparator.LE,
            Comparator.GE,
        )


@dataclass(frozen=True)
class ConstraintPlan:
    """The compiled columnar form of one denial constraint."""

    constraint: DenialConstraint
    atoms: tuple[AtomPlan, ...]
    comparisons: tuple[ResolvedComparison, ...]
    #: variable -> ((atom_index, first position in that atom), ...)
    var_slots: Mapping[str, tuple[tuple[int, int], ...]]

    @property
    def n_atoms(self) -> int:
        return len(self.atoms)

    def join_variables_with(
        self, bound_atoms: set[int], atom_index: int
    ) -> Iterator[tuple[str, tuple[int, int], int]]:
        """Variables linking ``atom_index`` to the already-bound atoms.

        Yields ``(variable, bound_slot, new_position)`` triples - the
        equality-join keys of the next left-deep join step.
        """
        for variable, slots in self.var_slots.items():
            atoms_of = [a for a, _ in slots]
            if atom_index not in atoms_of:
                continue
            bound_slot = next(
                (slot for slot in slots if slot[0] in bound_atoms), None
            )
            if bound_slot is None:
                continue
            new_position = next(p for a, p in slots if a == atom_index)
            yield variable, bound_slot, new_position

    def comparisons_ready_at(
        self, bound_atoms: set[int], atom_index: int
    ) -> tuple[ResolvedComparison, ...]:
        """Comparisons decidable once ``atom_index`` joins ``bound_atoms``.

        A comparison is *ready* when both variables become bound and it
        was not already decidable on the bound set alone (those fired at
        an earlier step).
        """
        after = bound_atoms | {atom_index}
        ready = []
        for comparison in self.comparisons:
            left_atoms = {a for a, _ in self.var_slots[comparison.left]}
            right_atoms = {a for a, _ in self.var_slots[comparison.right]}
            decidable_before = bool(left_atoms & bound_atoms) and bool(
                right_atoms & bound_atoms
            )
            decidable_after = bool(left_atoms & after) and bool(right_atoms & after)
            if decidable_after and not decidable_before:
                ready.append(comparison)
        return tuple(ready)


@lru_cache(maxsize=None)
def compile_plan(constraint: DenialConstraint) -> ConstraintPlan:
    """Compile (and memoize) the columnar plan of one constraint.

    Every linear-denial shape compiles: data-dependent limitations (e.g.
    an order comparison over a non-integer column) surface at execution
    time, not here.
    """
    var_slots: dict[str, list[tuple[int, int]]] = {}
    for atom_index, atom in enumerate(constraint.relation_atoms):
        seen_here: set[str] = set()
        for position, variable in enumerate(atom.variables):
            if variable in seen_here:
                continue
            seen_here.add(variable)
            var_slots.setdefault(variable, []).append((atom_index, position))

    atoms = []
    for atom_index, atom in enumerate(constraint.relation_atoms):
        filters = tuple(
            LocalFilter(positions[0], builtin.comparator, builtin.constant)
            for builtin in constraint.builtins
            if (positions := atom.positions_of(builtin.variable))
        )
        intra = tuple(
            positions
            for variable in dict.fromkeys(atom.variables)
            if len(positions := atom.positions_of(variable)) > 1
        )
        atoms.append(
            AtomPlan(atom_index, atom.relation_name, filters, intra)
        )

    comparisons = tuple(
        ResolvedComparison(c.left, c.comparator, c.right, c.offset)
        for c in constraint.variable_comparisons
    )
    return ConstraintPlan(
        constraint,
        tuple(atoms),
        comparisons,
        {v: tuple(slots) for v, slots in var_slots.items()},
    )


def _edge_class(
    plan: ConstraintPlan, bound_atoms: set[int], atom_index: int
) -> int:
    """How well ``atom_index`` connects to the bound set (planner classes)."""
    if any(True for _ in plan.join_variables_with(bound_atoms, atom_index)):
        return _EQUALITY_EDGE
    best = _DISCONNECTED
    for comparison in plan.comparisons_ready_at(bound_atoms, atom_index):
        if comparison.is_equality:
            return _EQUALITY_EDGE
        if comparison.is_order:
            best = min(best, _ORDER_EDGE)
        else:
            best = min(best, _WEAK_EDGE)
    return best


def order_atoms(
    plan: ConstraintPlan,
    counts: "list[int] | tuple[int, ...]",
    forced_first: int | None = None,
) -> tuple[int, ...]:
    """Selectivity-driven left-deep join order over the plan's atoms.

    ``counts[i]`` is the measured candidate cardinality of atom ``i``
    after its local filters.  The order starts from the most selective
    atom (or ``forced_first``, used by anchored detection to put the
    changed-tuple atom up front) and greedily appends the cheapest
    remaining atom, preferring equality-joinable atoms, then atoms
    reachable through an order comparison (interval lookup), then ``≠``
    neighbours, and only then a cartesian expansion.  Ties break on the
    original atom index, keeping the order deterministic.
    """
    n = plan.n_atoms
    if len(counts) != n:
        raise ValueError(f"need {n} candidate counts, got {len(counts)}")
    if forced_first is not None:
        order = [forced_first]
    else:
        order = [min(range(n), key=lambda i: (counts[i], i))]
    remaining = set(range(n)) - set(order)
    bound = set(order)
    while remaining:
        chosen = min(
            remaining,
            key=lambda i: (_edge_class(plan, bound, i), counts[i], i),
        )
        order.append(chosen)
        bound.add(chosen)
        remaining.remove(chosen)
    return tuple(order)
