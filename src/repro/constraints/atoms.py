"""Atoms of linear denial constraints.

Three atom kinds appear inside a denial ``∀x̄ ¬(A₁ ∧ … ∧ A_m)``:

* :class:`RelationAtom` - a database atom ``R(x₁, …, x_k)`` binding
  variables to attribute positions;
* :class:`BuiltinAtom` - a comparison between a variable and an integer
  constant, ``x θ c`` with θ ∈ {=, ≠, <, >, ≤, ≥};
* :class:`VariableComparison` - a comparison ``x θ y + c`` between two
  variables, optionally shifted by an integer offset (``x = y``,
  ``x ≠ y``, ``x < y``, ``x ≤ y + 5``, ...).  Locality restricts these to
  hard attributes, which is what keeps attribute-update repairs sound.

Comparators know how to evaluate themselves and how to *normalize*:
footnote 2 of the paper rewrites ``x ≤ c`` as ``x < c+1`` and ``x ≥ c`` as
``x > c-1`` over the integer domain, which the locality check and the
mono-local-fix construction (Definition 2.8) both rely on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.exceptions import ConstraintError


class Comparator(enum.Enum):
    """Comparison operator of a built-in atom."""

    EQ = "="
    NE = "!="
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="

    def evaluate(self, left: Any, right: Any) -> bool:
        """Apply the comparison to two values."""
        if self is Comparator.EQ:
            return left == right
        if self is Comparator.NE:
            return left != right
        if self is Comparator.LT:
            return left < right
        if self is Comparator.GT:
            return left > right
        if self is Comparator.LE:
            return left <= right
        return left >= right

    @property
    def sql(self) -> str:
        """SQL spelling of the operator."""
        if self is Comparator.NE:
            return "<>"
        return self.value

    @classmethod
    def from_symbol(cls, symbol: str) -> "Comparator":
        """Parse a comparator from its textual symbol (also accepts ``<>``)."""
        aliases = {"<>": "!=", "==": "=", "≠": "!=", "≤": "<=", "≥": ">="}
        symbol = aliases.get(symbol, symbol)
        for member in cls:
            if member.value == symbol:
                return member
        raise ConstraintError(f"unknown comparison operator: {symbol!r}")


@dataclass(frozen=True)
class RelationAtom:
    """A database atom ``R(x₁, …, x_k)``.

    ``variables[i]`` is the variable bound to attribute position ``i`` of
    relation ``relation_name``.  Repeating a variable inside one atom, or
    across atoms, expresses an equality join.
    """

    relation_name: str
    variables: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.variables:
            raise ConstraintError(
                f"relation atom {self.relation_name!r} must bind at least one variable"
            )
        for var in self.variables:
            if not var or not var.replace("_", "").isalnum():
                raise ConstraintError(f"invalid variable name: {var!r}")

    def positions_of(self, variable: str) -> tuple[int, ...]:
        """Attribute positions (0-based) where ``variable`` occurs."""
        return tuple(i for i, v in enumerate(self.variables) if v == variable)

    def __str__(self) -> str:
        return f"{self.relation_name}({', '.join(self.variables)})"


@dataclass(frozen=True)
class BuiltinAtom:
    """A variable/constant comparison ``x θ c``."""

    variable: str
    comparator: Comparator
    constant: int

    def __post_init__(self) -> None:
        if not isinstance(self.constant, int) or isinstance(self.constant, bool):
            raise ConstraintError(
                f"built-in constant must be an integer, got {self.constant!r}"
            )

    def evaluate(self, value: Any) -> bool:
        """True when ``value θ constant`` holds."""
        return self.comparator.evaluate(value, self.constant)

    def normalized(self) -> tuple["BuiltinAtom", ...]:
        """Rewrite over ℤ so only ``=``, ``≠``, ``<``, ``>`` remain.

        Footnote 2: ``x ≤ c`` becomes ``x < c+1`` and ``x ≥ c`` becomes
        ``x > c-1``.  Equality and inequality are returned unchanged (they
        are only legal on hard attributes, see locality condition (a)).
        """
        if self.comparator is Comparator.LE:
            return (BuiltinAtom(self.variable, Comparator.LT, self.constant + 1),)
        if self.comparator is Comparator.GE:
            return (BuiltinAtom(self.variable, Comparator.GT, self.constant - 1),)
        return (self,)

    def __str__(self) -> str:
        return f"{self.variable} {self.comparator.value} {self.constant}"


@dataclass(frozen=True)
class VariableComparison:
    """A variable/variable built-in ``x θ y + c`` with θ ∈ {=, ≠, <, >, ≤, ≥}.

    ``offset`` shifts the right-hand side by an integer constant, giving
    the linear comparison forms ``x < y``, ``x ≤ y + c``, ``x ≠ y - c``,
    and so on.  Locality condition (a) restricts *every* variable/variable
    built-in to hard attributes (see :mod:`repro.constraints.locality`), so
    admitting order comparators keeps the repair construction sound: fixes
    only ever move flexible attributes, which these atoms never mention.
    """

    left: str
    comparator: Comparator
    right: str
    offset: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.offset, int) or isinstance(self.offset, bool):
            raise ConstraintError(
                f"variable-comparison offset must be an integer, got "
                f"{self.offset!r}"
            )

    def evaluate(self, left_value: Any, right_value: Any) -> bool:
        """True when ``left_value θ (right_value + offset)`` holds."""
        if self.offset:
            right_value = right_value + self.offset
        return self.comparator.evaluate(left_value, right_value)

    @property
    def is_equality(self) -> bool:
        """True for ``=`` (usable as an equality-join edge by planners)."""
        return self.comparator is Comparator.EQ

    @property
    def is_order(self) -> bool:
        """True for the order comparators ``<``, ``>``, ``≤``, ``≥``."""
        return self.comparator in (
            Comparator.LT,
            Comparator.GT,
            Comparator.LE,
            Comparator.GE,
        )

    def __str__(self) -> str:
        suffix = ""
        if self.offset > 0:
            suffix = f" + {self.offset}"
        elif self.offset < 0:
            suffix = f" - {-self.offset}"
        return f"{self.left} {self.comparator.value} {self.right}{suffix}"
