"""Linear denial constraints and their analysis.

A *linear denial constraint* (Section 2) has the form
``∀x̄ ¬(A₁ ∧ … ∧ A_m)`` where each ``A_i`` is a database atom ``R(x̄_i)`` or
a built-in atom ``x θ c`` / ``x θ y + c`` (θ ∈ {=, ≠, <, >, ≤, ≥}).
This package provides the atom/constraint model, a small textual DSL, the
*locality* test of Section 2 (conditions (a)-(c)), and two compiled forms
of a constraint: the SQL violation view of Algorithm 2 / Example 3.6
(:mod:`repro.constraints.sql`) and the columnar detection plan consumed by
the kernel engine (:mod:`repro.constraints.plan`).
"""

from repro.constraints.atoms import (
    BuiltinAtom,
    Comparator,
    RelationAtom,
    VariableComparison,
)
from repro.constraints.denial import DenialConstraint
from repro.constraints.parser import parse_denial, parse_denials
from repro.constraints.locality import (
    check_local,
    check_local_set,
    fix_direction,
    is_local,
    is_local_set,
)
from repro.constraints.plan import ConstraintPlan, compile_plan, order_atoms
from repro.constraints.simplify import simplify_constraint, simplify_constraints
from repro.constraints.sql import violation_query

__all__ = [
    "BuiltinAtom",
    "Comparator",
    "RelationAtom",
    "VariableComparison",
    "DenialConstraint",
    "parse_denial",
    "parse_denials",
    "check_local",
    "check_local_set",
    "fix_direction",
    "is_local",
    "is_local_set",
    "simplify_constraint",
    "simplify_constraints",
    "violation_query",
    "ConstraintPlan",
    "compile_plan",
    "order_atoms",
]
