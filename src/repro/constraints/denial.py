"""The :class:`DenialConstraint` model and its derived structure.

A denial constraint ``∀x̄ ¬(A₁ ∧ … ∧ A_m)`` is *violated* by a set of
tuples that can be assigned to its database atoms so that all variable
bindings are consistent and all built-ins hold.  This module provides the
constraint object, schema validation, assignment evaluation (used both by
the violation detector and by the ``S(t, t′)`` substitution test of
Definition 2.6), and the per-attribute comparison view that Definition 2.8
needs to build mono-local fixes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.constraints.atoms import (
    BuiltinAtom,
    Comparator,
    RelationAtom,
    VariableComparison,
)
from repro.exceptions import ConstraintError
from repro.model.schema import Schema
from repro.model.tuples import Tuple


@dataclass(frozen=True)
class DenialConstraint:
    """A linear denial constraint.

    Parameters
    ----------
    relation_atoms:
        The database atoms, in syntactic order.
    builtins:
        Variable/constant comparisons ``x θ c``.
    variable_comparisons:
        Variable/variable built-ins ``x = y`` / ``x ≠ y``.
    name:
        Optional identifier used in reports and violation-set labels.
    """

    relation_atoms: tuple[RelationAtom, ...]
    builtins: tuple[BuiltinAtom, ...] = ()
    variable_comparisons: tuple[VariableComparison, ...] = ()
    name: str = ""
    _occurrences: dict = field(init=False, repr=False, compare=False, hash=False)

    def __init__(
        self,
        relation_atoms: Iterable[RelationAtom],
        builtins: Iterable[BuiltinAtom] = (),
        variable_comparisons: Iterable[VariableComparison] = (),
        name: str = "",
    ) -> None:
        object.__setattr__(self, "relation_atoms", tuple(relation_atoms))
        object.__setattr__(self, "builtins", tuple(builtins))
        object.__setattr__(
            self, "variable_comparisons", tuple(variable_comparisons)
        )
        object.__setattr__(self, "name", name)
        if not self.relation_atoms:
            raise ConstraintError("a denial constraint needs at least one database atom")
        occurrences: dict[str, list[tuple[int, int]]] = {}
        for atom_index, atom in enumerate(self.relation_atoms):
            for position, variable in enumerate(atom.variables):
                occurrences.setdefault(variable, []).append((atom_index, position))
        for builtin in self.builtins:
            if builtin.variable not in occurrences:
                raise ConstraintError(
                    f"built-in {builtin} uses variable {builtin.variable!r} "
                    "that appears in no database atom"
                )
        for comparison in self.variable_comparisons:
            for variable in (comparison.left, comparison.right):
                if variable not in occurrences:
                    raise ConstraintError(
                        f"built-in {comparison} uses variable {variable!r} "
                        "that appears in no database atom"
                    )
        object.__setattr__(self, "_occurrences", occurrences)

    # -- structure ----------------------------------------------------------

    @property
    def variables(self) -> tuple[str, ...]:
        """All variables, in first-occurrence order."""
        return tuple(self._occurrences)

    def occurrences(self, variable: str) -> tuple[tuple[int, int], ...]:
        """``(atom_index, position)`` pairs where ``variable`` occurs."""
        return tuple(self._occurrences.get(variable, ()))

    @property
    def join_variables(self) -> frozenset[str]:
        """Variables occurring in two or more database-atom positions.

        These express equality joins; locality condition (a) requires the
        attributes they bind to be hard.
        """
        return frozenset(
            v for v, occ in self._occurrences.items() if len(occ) > 1
        )

    @property
    def builtin_variables(self) -> frozenset[str]:
        """Variables mentioned by any built-in atom."""
        names = {b.variable for b in self.builtins}
        for comparison in self.variable_comparisons:
            names.add(comparison.left)
            names.add(comparison.right)
        return frozenset(names)

    @property
    def relation_names(self) -> tuple[str, ...]:
        """Relation names of the database atoms (with repetitions)."""
        return tuple(a.relation_name for a in self.relation_atoms)

    # -- schema-aware views --------------------------------------------------

    def validate(self, schema: Schema) -> None:
        """Check the constraint is well-formed against ``schema``.

        Verifies relations exist, atom arities match, and every variable in
        a variable/constant built-in binds at least one position.
        """
        for atom in self.relation_atoms:
            relation = schema.relation(atom.relation_name)
            if len(atom.variables) != relation.arity:
                raise ConstraintError(
                    f"{self.label}: atom {atom} has {len(atom.variables)} "
                    f"variables but {relation.name!r} has arity {relation.arity}"
                )

    def bound_attributes(self, variable: str, schema: Schema) -> tuple[tuple[str, str], ...]:
        """The ``(relation, attribute)`` pairs a variable binds to."""
        pairs = []
        for atom_index, position in self.occurrences(variable):
            atom = self.relation_atoms[atom_index]
            relation = schema.relation(atom.relation_name)
            pairs.append((relation.name, relation.attributes[position].name))
        return tuple(pairs)

    def attributes_in_builtins(self, schema: Schema) -> frozenset[tuple[str, str]]:
        """``A_B(ic)``: attributes occurring in built-in atoms (Section 2)."""
        pairs: set[tuple[str, str]] = set()
        for variable in self.builtin_variables:
            pairs.update(self.bound_attributes(variable, schema))
        return frozenset(pairs)

    def comparisons_on(
        self, schema: Schema, relation_name: str, attribute_name: str
    ) -> tuple[BuiltinAtom, ...]:
        """Normalized var/constant built-ins over one attribute.

        Returns the built-ins (with ``≤``/``≥`` rewritten to strict form,
        footnote 2) whose variable binds ``relation_name.attribute_name``.
        This is the comparison list Definition 2.8 reads to compute
        ``MLF(t, ic, A)``.
        """
        result: list[BuiltinAtom] = []
        for builtin in self.builtins:
            bound = self.bound_attributes(builtin.variable, schema)
            if (relation_name, attribute_name) in bound:
                result.extend(builtin.normalized())
        return tuple(result)

    # -- evaluation ----------------------------------------------------------

    def evaluate_assignment(self, assignment: Sequence[Tuple]) -> bool:
        """Check one tuple-per-atom assignment satisfies the denial body.

        ``assignment[i]`` is the tuple assigned to ``relation_atoms[i]``.
        Returns True when variable bindings are consistent and every
        built-in holds - i.e. the assignment *witnesses a violation*.
        """
        if len(assignment) != len(self.relation_atoms):
            raise ConstraintError(
                f"{self.label}: assignment has {len(assignment)} tuples for "
                f"{len(self.relation_atoms)} atoms"
            )
        bindings: dict[str, object] = {}
        for atom, tup in zip(self.relation_atoms, assignment):
            if tup.relation.name != atom.relation_name:
                return False
            for position, variable in enumerate(atom.variables):
                value = tup.values[position]
                if variable in bindings:
                    if bindings[variable] != value:
                        return False
                else:
                    bindings[variable] = value
        for builtin in self.builtins:
            if not builtin.evaluate(bindings[builtin.variable]):
                return False
        for comparison in self.variable_comparisons:
            if not comparison.evaluate(
                bindings[comparison.left], bindings[comparison.right]
            ):
                return False
        return True

    def violated_by(self, tuples: Iterable[Tuple]) -> bool:
        """True when some assignment over ``tuples`` satisfies the body.

        This is the test ``I ⊭ ic`` on a small tuple set: used for the
        minimality part of Definition 2.4 and for the substitution check in
        ``S(t, t′)``.  Exponential in the number of atoms, which is small
        (denials in practice have 1-3 atoms).
        """
        pool = list(tuples)
        per_atom: list[list[Tuple]] = []
        for atom in self.relation_atoms:
            candidates = [t for t in pool if t.relation.name == atom.relation_name]
            if not candidates:
                return False
            per_atom.append(candidates)
        for assignment in itertools.product(*per_atom):
            if self.evaluate_assignment(assignment):
                return True
        return False

    # -- display --------------------------------------------------------------

    @property
    def label(self) -> str:
        """The constraint name, or a generated description."""
        return self.name or f"ic[{self}]"

    def __str__(self) -> str:
        parts: list[str] = [str(a) for a in self.relation_atoms]
        parts.extend(str(b) for b in self.builtins)
        parts.extend(str(c) for c in self.variable_comparisons)
        return "NOT(" + ", ".join(parts) + ")"

    def __hash__(self) -> int:
        return hash(
            (
                self.relation_atoms,
                self.builtins,
                self.variable_comparisons,
            )
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DenialConstraint):
            return NotImplemented
        return (
            self.relation_atoms == other.relation_atoms
            and self.builtins == other.builtins
            and self.variable_comparisons == other.variable_comparisons
        )

    def __iter__(self) -> Iterator[RelationAtom]:
        return iter(self.relation_atoms)
