"""A small textual DSL for linear denial constraints.

The grammar accepted by :func:`parse_denial`::

    denial      :=  [ "NOT" ] "(" atom ("," atom)* ")"
                 |  atom ("," atom)*
    atom        :=  relation_atom | builtin
    relation    :=  NAME "(" NAME ("," NAME)* ")"
    builtin     :=  NAME op (INT | NAME [("+" | "-") INT])
    op          :=  "<" | ">" | "<=" | ">=" | "=" | "==" | "!=" | "<>"

Variable/variable comparisons accept an integer offset on the right-hand
side (``p > q + 10``, ``a <= b - 2``), covering the linear forms
``x θ y + c``.

Examples (the paper's constraints)::

    ic1: NOT(Paper(x, y, z, w), y > 0, z < 50)
    ic2: NOT(Paper(x, y, z, w), y > 0, w < 1)
    ic3: NOT(Pub(x, y, z), Paper(y, u, v, w), z > 40, v < 70)

:func:`parse_denials` parses a multi-line program where each non-empty,
non-comment line is ``[name :] denial``.
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.constraints.atoms import (
    BuiltinAtom,
    Comparator,
    RelationAtom,
    VariableComparison,
)
from repro.constraints.denial import DenialConstraint
from repro.exceptions import ConstraintParseError

_TOKEN_RE = re.compile(
    r"""
      (?P<int>-?\d+)
    | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
    | (?P<op><=|>=|!=|<>|==|=|<|>)
    | (?P<sign>[+-])
    | (?P<lparen>\()
    | (?P<rparen>\))
    | (?P<comma>,)
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "text")

    def __init__(self, kind: str, text: str) -> None:
        self.kind = kind
        self.text = text

    def __repr__(self) -> str:
        return f"{self.kind}:{self.text}"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        if text[pos].isspace():
            pos += 1
            continue
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ConstraintParseError(
                f"unexpected character {text[pos]!r} at offset {pos} in {text!r}"
            )
        kind = match.lastgroup
        assert kind is not None
        tokens.append(_Token(kind, match.group(kind)))
        pos = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: list[_Token], source: str) -> None:
        self._tokens = tokens
        self._source = source
        self._index = 0

    def _peek(self, offset: int = 0) -> _Token | None:
        index = self._index + offset
        if index < len(self._tokens):
            return self._tokens[index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ConstraintParseError(f"unexpected end of input in {self._source!r}")
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise ConstraintParseError(
                f"expected {kind} but found {token.text!r} in {self._source!r}"
            )
        return token

    def parse(self, name: str) -> DenialConstraint:
        wrapped = False
        token = self._peek()
        if token is not None and token.kind == "name" and token.text.upper() == "NOT":
            self._next()
            self._expect("lparen")
            wrapped = True
        elif token is not None and token.kind == "lparen":
            # A bare "( ... )" wrapper is also accepted.
            self._next()
            wrapped = True

        relation_atoms: list[RelationAtom] = []
        builtins: list[BuiltinAtom] = []
        variable_comparisons: list[VariableComparison] = []
        while True:
            self._parse_atom(relation_atoms, builtins, variable_comparisons)
            token = self._peek()
            if token is not None and token.kind == "comma":
                self._next()
                continue
            break
        if wrapped:
            self._expect("rparen")
        if self._peek() is not None:
            raise ConstraintParseError(
                f"trailing input {self._peek().text!r} in {self._source!r}"
            )
        return DenialConstraint(
            relation_atoms, builtins, variable_comparisons, name=name
        )

    def _parse_atom(
        self,
        relation_atoms: list[RelationAtom],
        builtins: list[BuiltinAtom],
        variable_comparisons: list[VariableComparison],
    ) -> None:
        first = self._expect("name")
        follower = self._peek()
        if follower is not None and follower.kind == "lparen":
            self._next()
            variables = [self._expect("name").text]
            while self._peek() is not None and self._peek().kind == "comma":
                self._next()
                variables.append(self._expect("name").text)
            self._expect("rparen")
            relation_atoms.append(RelationAtom(first.text, tuple(variables)))
            return
        if follower is not None and follower.kind == "op":
            operator = Comparator.from_symbol(self._next().text)
            operand = self._next()
            if operand.kind == "sign":
                # A constant with a detached sign: ``a < - 2``.
                number = self._expect("int")
                value = int(operand.text + number.text)
                builtins.append(BuiltinAtom(first.text, operator, value))
                return
            if operand.kind == "int":
                builtins.append(BuiltinAtom(first.text, operator, int(operand.text)))
                return
            if operand.kind == "name":
                offset = self._parse_offset()
                variable_comparisons.append(
                    VariableComparison(first.text, operator, operand.text, offset)
                )
                return
            raise ConstraintParseError(
                f"expected an integer or variable after operator, found "
                f"{operand.text!r} in {self._source!r}"
            )
        raise ConstraintParseError(
            f"expected '(' or comparison after {first.text!r} in {self._source!r}"
        )

    def _parse_offset(self) -> int:
        """Optional ``± INT`` offset after a variable-comparison RHS.

        Also accepts an adjoined negative literal (``x > y -2`` tokenizes
        the ``-2`` as an int); a bare positive int with no sign is *not*
        an offset and is left for the caller to reject as trailing input.
        """
        follower = self._peek()
        if follower is None:
            return 0
        if follower.kind == "sign":
            self._next()
            number = self._expect("int")
            magnitude = int(number.text)
            return magnitude if follower.text == "+" else -magnitude
        if follower.kind == "int" and follower.text.startswith("-"):
            self._next()
            return int(follower.text)
        return 0


def parse_denial(text: str, name: str = "") -> DenialConstraint:
    """Parse one denial constraint from its textual form.

    ``name`` labels the constraint in reports; a ``name:`` prefix inside
    ``text`` takes precedence.
    """
    text = text.strip()
    head, sep, tail = text.partition(":")
    if sep and "(" not in head and re.fullmatch(r"[A-Za-z_][\w.-]*", head.strip()):
        name = head.strip()
        text = tail.strip()
    if not text:
        raise ConstraintParseError("empty constraint text")
    parser = _Parser(_tokenize(text), text)
    return parser.parse(name)


def parse_denials(source: str | Iterable[str]) -> list[DenialConstraint]:
    """Parse a multi-line constraint program.

    Blank lines and ``#`` comments are skipped.  Unnamed constraints get
    sequential names ``ic1``, ``ic2``, ...
    """
    if isinstance(source, str):
        lines = source.splitlines()
    else:
        lines = list(source)
    constraints: list[DenialConstraint] = []
    for line in lines:
        stripped = line.split("#", 1)[0].strip()
        if not stripped:
            continue
        constraint = parse_denial(stripped)
        if not constraint.name:
            constraint = DenialConstraint(
                constraint.relation_atoms,
                constraint.builtins,
                constraint.variable_comparisons,
                name=f"ic{len(constraints) + 1}",
            )
        constraints.append(constraint)
    return constraints
