"""Compile denial constraints into SQL violation views (Algorithm 2).

The paper retrieves violation sets by rewriting each integrity constraint as
a SQL query that returns one row per witness of a violation (Example 3.6:
``SELECT X Y Z W FROM Paper WHERE Y>0 AND Z<50``).  We generate one
``SELECT`` per constraint, joining one table alias per database atom and
projecting the primary-key columns of every atom so each result row
identifies the participating tuples.

The emitted SQL is plain SQL-92 and runs unchanged on the bundled sqlite
backend (the paper used Oracle 10g; only the connectivity layer differs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.denial import DenialConstraint
from repro.exceptions import ConstraintError
from repro.model.schema import Schema


@dataclass(frozen=True)
class AtomColumns:
    """How one database atom's tuple is identified in the result rows.

    ``key_columns[i]`` is the 0-based index, inside a result row, of the
    ``i``-th primary-key attribute of ``relation_name``.
    """

    relation_name: str
    key_columns: tuple[int, ...]


@dataclass(frozen=True)
class ViolationQuery:
    """A compiled violation view for one denial constraint."""

    constraint: DenialConstraint
    sql: str
    atoms: tuple[AtomColumns, ...]


def violation_query(constraint: DenialConstraint, schema: Schema) -> ViolationQuery:
    """Build the SQL query whose rows are the violation witnesses of ``ic``.

    Each row holds the primary-key values of the tuple assigned to each
    database atom; the query is empty iff the constraint is satisfied.
    """
    constraint.validate(schema)

    aliases = [f"r{i}" for i in range(len(constraint.relation_atoms))]
    select_parts: list[str] = []
    atom_columns: list[AtomColumns] = []
    column_index = 0
    for i, atom in enumerate(constraint.relation_atoms):
        relation = schema.relation(atom.relation_name)
        key_columns = []
        for key_attribute in relation.key:
            select_parts.append(f"{aliases[i]}.{key_attribute}")
            key_columns.append(column_index)
            column_index += 1
        atom_columns.append(AtomColumns(relation.name, tuple(key_columns)))

    from_parts = [
        f"{atom.relation_name} {aliases[i]}"
        for i, atom in enumerate(constraint.relation_atoms)
    ]

    def column_of(variable: str) -> str:
        """SQL column of the first occurrence of a variable."""
        occurrences = constraint.occurrences(variable)
        if not occurrences:
            raise ConstraintError(
                f"{constraint.label}: variable {variable!r} unbound"
            )
        atom_index, position = occurrences[0]
        atom = constraint.relation_atoms[atom_index]
        relation = schema.relation(atom.relation_name)
        return f"{aliases[atom_index]}.{relation.attributes[position].name}"

    where_parts: list[str] = []
    # Equality joins induced by repeated variables.
    for variable in constraint.variables:
        occurrences = constraint.occurrences(variable)
        first = occurrences[0]
        for atom_index, position in occurrences[1:]:
            atom = constraint.relation_atoms[atom_index]
            relation = schema.relation(atom.relation_name)
            first_atom = constraint.relation_atoms[first[0]]
            first_relation = schema.relation(first_atom.relation_name)
            left = f"{aliases[first[0]]}.{first_relation.attributes[first[1]].name}"
            right = f"{aliases[atom_index]}.{relation.attributes[position].name}"
            where_parts.append(f"{left} = {right}")

    for builtin in constraint.builtins:
        where_parts.append(
            f"{column_of(builtin.variable)} {builtin.comparator.sql} {builtin.constant}"
        )
    for comparison in constraint.variable_comparisons:
        right = column_of(comparison.right)
        if comparison.offset > 0:
            right = f"{right} + {comparison.offset}"
        elif comparison.offset < 0:
            right = f"{right} - {-comparison.offset}"
        where_parts.append(
            f"{column_of(comparison.left)} {comparison.comparator.sql} {right}"
        )

    sql = f"SELECT {', '.join(select_parts)} FROM {', '.join(from_parts)}"
    if where_parts:
        sql += f" WHERE {' AND '.join(where_parts)}"
    return ViolationQuery(constraint, sql, tuple(atom_columns))


def view_name(constraint: DenialConstraint, index: int = 0) -> str:
    """A safe SQL identifier for a constraint's violation view."""
    base = constraint.name or f"ic{index}"
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in base)
    if not cleaned or cleaned[0].isdigit():
        cleaned = f"ic_{cleaned}"
    return f"{cleaned}_violations"


def violation_view_ddl(
    constraint: DenialConstraint, schema: Schema, index: int = 0
) -> str:
    """``CREATE VIEW`` DDL for the constraint's violation view.

    The paper's Algorithm 2 phrases violation retrieval as *"rewriting
    each integrity constraint as a SQL view that is empty if it is being
    satisfied"*; this emits exactly that view, so a DBA can materialize
    the inconsistency monitors directly in the database.
    """
    compiled = violation_query(constraint, schema)
    return f"CREATE VIEW {view_name(constraint, index)} AS {compiled.sql}"
