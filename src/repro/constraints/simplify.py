"""Constraint preprocessing: normalize, dedupe, and drop dead denials.

Real constraint sets accumulate redundancy (merged rule books, generated
rules).  Before building violation views it pays to simplify:

* **bound merging** - within one denial, ``x < 5 ∧ x < 9`` is ``x < 5``
  and ``x > 2 ∧ x > 7`` is ``x > 7`` (the conjunction is governed by the
  tightest bound);
* **dead-body elimination** - a body containing ``x < 5 ∧ x > 9`` (after
  normalization, empty integer range) can never be satisfied: the denial
  is vacuously true and can be dropped; cross-atom dead bodies built from
  variable comparisons (``x < y ∧ y < x``, offset cycles like
  ``x < y + 1 ∧ y < x - 1``) are caught by the difference-constraint
  satisfiability pass of :mod:`repro.lint.satisfiability`;
* **duplicate elimination** - syntactically equal denials (after the
  above) are kept once.

Simplification is semantics-preserving: the violation sets of the
simplified set equal those of the original (tested property).  It also
*reduces* the MLF bound lists, so Definition 2.8 produces identical fixes.
"""

from __future__ import annotations

from typing import Iterable

from repro.constraints.atoms import BuiltinAtom, Comparator
from repro.constraints.denial import DenialConstraint


def simplify_constraint(constraint: DenialConstraint) -> DenialConstraint | None:
    """Simplify one denial; ``None`` when its body is unsatisfiable.

    Equality/inequality built-ins pass through untouched (they are only
    legal on hard attributes and carry no redundancy of this kind).
    """
    lower: dict[str, int] = {}   # variable -> tightest 'x > c' bound
    upper: dict[str, int] = {}   # variable -> tightest 'x < c' bound
    passthrough: list[BuiltinAtom] = []
    equalities: dict[str, int] = {}

    for builtin in constraint.builtins:
        (normalized,) = builtin.normalized()
        if normalized.comparator is Comparator.LT:
            current = upper.get(normalized.variable)
            if current is None or normalized.constant < current:
                upper[normalized.variable] = normalized.constant
        elif normalized.comparator is Comparator.GT:
            current = lower.get(normalized.variable)
            if current is None or normalized.constant > current:
                lower[normalized.variable] = normalized.constant
        else:
            if normalized.comparator is Comparator.EQ:
                existing = equalities.get(normalized.variable)
                if existing is not None and existing != normalized.constant:
                    return None          # x = a ∧ x = b with a != b
                equalities[normalized.variable] = normalized.constant
            passthrough.append(normalized)

    # Dead ranges: over ℤ, x > a ∧ x < b is empty when b <= a + 1.
    for variable in set(lower) & set(upper):
        if upper[variable] <= lower[variable] + 1:
            return None
    # Equality outside a range is dead too.
    for variable, value in equalities.items():
        if variable in upper and value >= upper[variable]:
            return None
        if variable in lower and value <= lower[variable]:
            return None

    builtins: list[BuiltinAtom] = []
    for variable, constant in sorted(lower.items()):
        builtins.append(BuiltinAtom(variable, Comparator.GT, constant))
    for variable, constant in sorted(upper.items()):
        builtins.append(BuiltinAtom(variable, Comparator.LT, constant))
    builtins.extend(passthrough)

    result = DenialConstraint(
        constraint.relation_atoms,
        builtins,
        constraint.variable_comparisons,
        name=constraint.name,
    )
    if result.variable_comparisons:
        # The per-variable bound merging above is blind to cross-atom
        # comparisons; the full difference-constraint system catches
        # dead bodies like x < y ∧ y < x.
        from repro.lint.satisfiability import body_is_satisfiable

        if not body_is_satisfiable(result):
            return None
    return result


def simplify_constraints(
    constraints: Iterable[DenialConstraint],
) -> tuple[DenialConstraint, ...]:
    """Simplify a set: per-constraint simplification + duplicate removal.

    Order is preserved; of two duplicates the first (and its name) wins.
    """
    result: list[DenialConstraint] = []
    seen: set[DenialConstraint] = set()
    for constraint in constraints:
        simplified = simplify_constraint(constraint)
        if simplified is None:
            continue
        if simplified in seen:     # DenialConstraint equality ignores names
            continue
        seen.add(simplified)
        result.append(simplified)
    return tuple(result)
