"""repro - efficient approximation algorithms for repairing inconsistent databases.

A faithful, production-quality Python reproduction of Lopatenko & Bravo,
*"Efficient Approximation Algorithms for Repairing Inconsistent
Databases"*, ICDE 2007.

The library repairs databases that are inconsistent with respect to a set
of **local linear denial constraints** by minimally updating numerical
attribute values.  The optimization problem is MAXSNP-hard; the engine
reduces it to Minimum-Weight Set Cover (Definition 3.1) and solves that
with the paper's greedy / modified-greedy / layer algorithms - the
modified greedy runs in O(n log n) when the degree of inconsistency is
bounded (Proposition 3.7).  Tuple-deletion (cardinality) repairs are
supported through the δ-attribute transformation of Section 5.

Quickstart::

    from repro import (
        Attribute, Relation, Schema, DatabaseInstance,
        parse_denials, repair_database,
    )

    schema = Schema([
        Relation("Paper", [
            Attribute.hard("id"),
            Attribute.flexible("ef", weight=1.0),
            Attribute.flexible("prc", weight=1 / 20),
            Attribute.flexible("cf", weight=1 / 2),
        ], key=["id"]),
    ])
    db = DatabaseInstance.from_rows(schema, {
        "Paper": [("B1", 1, 40, 0), ("C2", 1, 20, 1), ("E3", 1, 70, 1)],
    })
    ics = parse_denials('''
        ic1: NOT(Paper(x, y, z, w), y > 0, z < 50)
        ic2: NOT(Paper(x, y, z, w), y > 0, w < 1)
    ''')
    result = repair_database(db, ics, algorithm="modified-greedy")
    print(result.summary())
"""

from repro.exceptions import (
    BackendError,
    BackpressureError,
    ConfigError,
    ConstraintError,
    ConstraintParseError,
    InstanceError,
    KeyViolationError,
    LintError,
    LocalityError,
    PlanError,
    RepairError,
    ReproError,
    SchemaError,
    SetCoverError,
    StalePlanError,
    UncoverableError,
    UnrepairableError,
)
from repro.model import (
    Attribute,
    AttributeRole,
    DatabaseInstance,
    Relation,
    Schema,
    Tuple,
    TupleRef,
)
from repro.constraints import (
    BuiltinAtom,
    Comparator,
    DenialConstraint,
    RelationAtom,
    VariableComparison,
    is_local,
    is_local_set,
    parse_denial,
    parse_denials,
)
from repro.violations import (
    ViolationSet,
    find_all_violations,
    find_violations,
    inconsistency_profile,
    is_consistent,
)
from repro.fixes import (
    CITY_DISTANCE,
    EUCLIDEAN_DISTANCE,
    ZERO_ONE_DISTANCE,
    DistanceMetric,
    database_delta,
    mono_local_fix,
    tuple_delta,
)
from repro.repair import (
    CellChange,
    IncrementalRepairer,
    RepairResult,
    StreamingRepairer,
    StreamStats,
    build_repair_problem,
    repair_database,
)
from repro.cardinality import (
    DeletionRepairResult,
    cardinality_repair,
)
from repro.lint import (
    Diagnostic,
    LintReport,
    Severity,
    lint_constraints,
)

__version__ = "1.0.0"

__all__ = [
    # exceptions
    "BackendError",
    "BackpressureError",
    "ConfigError",
    "ConstraintError",
    "ConstraintParseError",
    "InstanceError",
    "KeyViolationError",
    "LintError",
    "LocalityError",
    "PlanError",
    "RepairError",
    "ReproError",
    "SchemaError",
    "SetCoverError",
    "StalePlanError",
    "UncoverableError",
    "UnrepairableError",
    # model
    "Attribute",
    "AttributeRole",
    "DatabaseInstance",
    "Relation",
    "Schema",
    "Tuple",
    "TupleRef",
    # constraints
    "BuiltinAtom",
    "Comparator",
    "DenialConstraint",
    "RelationAtom",
    "VariableComparison",
    "is_local",
    "is_local_set",
    "parse_denial",
    "parse_denials",
    # violations
    "ViolationSet",
    "find_all_violations",
    "find_violations",
    "inconsistency_profile",
    "is_consistent",
    # fixes / distance
    "CITY_DISTANCE",
    "EUCLIDEAN_DISTANCE",
    "ZERO_ONE_DISTANCE",
    "DistanceMetric",
    "database_delta",
    "mono_local_fix",
    "tuple_delta",
    # repair
    "CellChange",
    "IncrementalRepairer",
    "RepairResult",
    "StreamingRepairer",
    "StreamStats",
    "build_repair_problem",
    "repair_database",
    # cardinality
    "DeletionRepairResult",
    "cardinality_repair",
    # lint
    "Diagnostic",
    "LintReport",
    "Severity",
    "lint_constraints",
    "__version__",
]
