"""Bounded async job queue with the streaming layer's admission semantics.

The :class:`JobQueue` is the admission-control stage of the
:class:`~repro.service.runtime.RepairService`: submissions enter here,
worker tasks pull from here.  Its bound and policy names deliberately
reuse the streaming repairer's contract
(:data:`repro.repair.streaming.BACKPRESSURE_POLICIES`):

* ``"block"`` - an over-bound submission *awaits* until a worker frees a
  slot (asyncio-cooperative, so other jobs keep flowing);
* ``"error"`` - an over-bound submission raises
  :class:`~repro.exceptions.BackpressureError` immediately, carrying the
  pending count and bound; the rejected job is **not** enqueued and
  nothing already queued is disturbed.

Pending jobs can be *withdrawn* (cancel-before-start): :meth:`withdraw`
removes the job and wakes one blocked submitter, so a cancelled pending
job frees its admission slot - part of the "cancelled jobs leave the
queue consistent" test contract.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import TYPE_CHECKING

from repro.exceptions import BackpressureError, RuntimeConfigError
from repro.repair.streaming import BACKPRESSURE_POLICIES

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.service.jobs import Job


class JobQueue:
    """FIFO of pending jobs, bounded by ``max_pending`` admissions.

    The bound covers jobs *waiting* for a worker; a job leaves the count
    the moment a worker takes it.  ``max_pending=None`` means unbounded
    (admission control off).  All methods must run on the service's
    event loop.
    """

    def __init__(
        self,
        max_pending: int | None = None,
        backpressure: str = "block",
    ) -> None:
        if max_pending is not None and max_pending < 1:
            raise RuntimeConfigError(
                f"max_pending must be a positive integer or None, got {max_pending}"
            )
        if backpressure not in BACKPRESSURE_POLICIES:
            raise RuntimeConfigError(
                f"unknown backpressure policy {backpressure!r}; "
                f"choose from {', '.join(BACKPRESSURE_POLICIES)}"
            )
        self.max_pending = max_pending
        self.backpressure = backpressure
        self._pending: "deque[Job]" = deque()
        self._condition = asyncio.Condition()
        self._closed = False

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def closed(self) -> bool:
        return self._closed

    def _has_room(self) -> bool:
        return self.max_pending is None or len(self._pending) < self.max_pending

    async def put(self, job: "Job") -> None:
        """Admit ``job``, applying the configured backpressure policy."""
        async with self._condition:
            if self._closed:
                raise RuntimeConfigError("cannot submit to a closed job queue")
            if not self._has_room():
                if self.backpressure == "error":
                    raise BackpressureError(
                        f"job queue full: {len(self._pending)} pending jobs at "
                        f"the max_pending={self.max_pending} bound; job "
                        f"{job.id} rejected (retry or use backpressure='block')",
                        pending=len(self._pending),
                        max_pending=self.max_pending,
                    )
                await self._condition.wait_for(
                    lambda: self._closed or self._has_room()
                )
                if self._closed:
                    raise RuntimeConfigError("cannot submit to a closed job queue")
            self._pending.append(job)
            self._condition.notify_all()

    async def get(self) -> "Job | None":
        """The next pending job, or ``None`` once the queue is drained+closed."""
        async with self._condition:
            await self._condition.wait_for(
                lambda: self._pending or self._closed
            )
            if not self._pending:
                return None
            job = self._pending.popleft()
            self._condition.notify_all()
            return job

    async def withdraw(self, job: "Job") -> bool:
        """Remove a still-pending job (cancel-before-start); True if removed."""
        async with self._condition:
            try:
                self._pending.remove(job)
            except ValueError:
                return False
            self._condition.notify_all()
            return True

    async def close(self) -> None:
        """Stop admissions; pending jobs still drain, then ``get`` yields None."""
        async with self._condition:
            self._closed = True
            self._condition.notify_all()
