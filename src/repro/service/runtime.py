"""Repair-as-a-service: the async job runtime over the repair pipeline.

:class:`RepairService` is a long-running asyncio runtime that accepts
repair jobs, admits them through a bounded
:class:`~repro.service.queue.JobQueue`, and executes each on a *bridge*
thread pool calling straight into :func:`repro.repair.engine.repair_database`
- so each job can itself fan out through the :mod:`repro.runtime`
thread/process executors via its ``parallel`` parameter.  The service
adds what one-shot calls lack:

* **admission control** - ``max_pending`` + the streaming layer's
  ``block``/``error`` backpressure policies;
* **per-job timeouts** with cooperative cancellation (jobs check their
  ``cancel_event`` between pipeline stages and unwind without hanging a
  worker slot);
* **retry with exponential backoff** for transient
  :class:`~repro.exceptions.WorkerCrashError` failures;
* an :class:`~repro.service.cache.ArtifactCache` shared across jobs:
  compiled plans and lint reports keyed by the PR-8 program fingerprint,
  detected violation lists additionally keyed by a content digest of the
  data - so N tenants repairing the same workload compile and detect
  once;
* per-job **trace spans** (``trace_jobs=True``): each job runs under its
  own :class:`~repro.obs.trace.Tracer`, and thread-local tracer
  activation guarantees two live jobs never interleave spans.

Determinism contract (the concurrency harness's invariant): a job's
result is byte-identical to a serial ``repair_database(instance,
constraints, **params)`` call - cached plans and violations feed the
exact code path the engine itself would take, and PR 8's planned ≡
unplanned parity carries the rest.

The synchronous entry points :func:`run_jobs` / ``repro serve`` wrap the
async API for scripts, tests and the CI stress leg.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.constraints.denial import DenialConstraint
from repro.exceptions import (
    JobCancelledError,
    JobNotFoundError,
    JobTimeoutError,
    PoisonedArtifactError,
    ReproError,
    RuntimeConfigError,
    ServiceError,
    WorkerCrashError,
)
from repro.model.instance import DatabaseInstance
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.plan.compiler import compile_program
from repro.plan.program import program_fingerprint
from repro.repair.engine import repair_database
from repro.repair.result import RepairResult
from repro.service.cache import LINT, PLAN, VIOLATIONS, ArtifactCache
from repro.service.faults import NO_FAULTS, FaultPolicy
from repro.service.jobs import (
    CANCELLED,
    FAILED,
    PENDING,
    RUNNING,
    SUCCEEDED,
    TIMED_OUT,
    Job,
    JobError,
    JobView,
    instance_digest,
)
from repro.service.queue import JobQueue

#: ``repair_database`` keyword arguments a job may carry.  ``violations``,
#: ``plan`` and ``trace`` are owned by the service; ``preflight`` is
#: subsumed by the cached lint report.
ALLOWED_PARAMS = frozenset(
    {
        "algorithm",
        "metric",
        "verify",
        "check_locality",
        "simplify",
        "parallel",
        "max_workers",
        "engine",
        "solver_engine",
    }
)


class _Cancelled(Exception):
    """Internal: the bridge thread observed the job's cancel event."""


@dataclass(frozen=True)
class JobRequest:
    """One repair submission for the batch entry points.

    ``params`` are forwarded to ``repair_database`` (validated against
    :data:`ALLOWED_PARAMS`); ``timeout`` overrides the service default
    when set (``None`` keeps the service's ``job_timeout``).
    """

    instance: DatabaseInstance
    constraints: "tuple[DenialConstraint, ...]"
    params: Mapping[str, Any] = field(default_factory=dict)
    timeout: float | None = None
    label: str = ""


class RepairService:
    """Asyncio job runtime bridging onto the repair pipeline.

    Use as an async context manager::

        async with RepairService(workers=4) as service:
            view = await service.submit(instance, constraints)
            result = await service.result(view.id)

    All coroutine methods must run on the loop that entered the service.
    """

    def __init__(
        self,
        workers: int = 2,
        max_pending: int | None = None,
        backpressure: str = "block",
        job_timeout: float | None = None,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        cache: "ArtifactCache | None" = None,
        cache_entries: int = 256,
        faults: FaultPolicy = NO_FAULTS,
        trace_jobs: bool = False,
    ) -> None:
        if workers < 1:
            raise RuntimeConfigError(f"workers must be >= 1, got {workers}")
        if max_retries < 0:
            raise RuntimeConfigError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff < 0:
            raise RuntimeConfigError(
                f"retry_backoff must be >= 0, got {retry_backoff}"
            )
        if job_timeout is not None and job_timeout <= 0:
            raise RuntimeConfigError(
                f"job_timeout must be positive or None, got {job_timeout}"
            )
        self.workers = workers
        self.job_timeout = job_timeout
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.metrics = MetricsRegistry()
        self.cache = (
            cache
            if cache is not None
            else ArtifactCache(max_entries=cache_entries, metrics=self.metrics)
        )
        self.faults = faults
        self.trace_jobs = trace_jobs
        self.queue = JobQueue(max_pending=max_pending, backpressure=backpressure)
        self._jobs: "dict[str, Job]" = {}
        self._sequence = itertools.count()
        self._worker_tasks: "list[asyncio.Task]" = []
        self._bridge: "ThreadPoolExecutor | None" = None
        self._started = False

    # -- lifecycle ----------------------------------------------------------

    async def __aenter__(self) -> "RepairService":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        await self.shutdown(wait=exc_type is None)
        return False

    async def start(self) -> None:
        """Spin up the bridge pool and the worker tasks."""
        if self._started:
            return
        self._started = True
        self._bridge = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-service"
        )
        self._worker_tasks = [
            asyncio.create_task(self._worker(), name=f"repro-service-worker-{i}")
            for i in range(self.workers)
        ]

    async def shutdown(self, wait: bool = True) -> None:
        """Stop the service.

        ``wait=True`` drains every admitted job first; ``wait=False``
        cancels pending jobs and cooperatively cancels running ones.
        Idempotent; afterwards the service accepts no submissions.
        """
        if not self._started:
            return
        await self.queue.close()
        if not wait:
            for job in list(self._jobs.values()):
                if not job.terminal:
                    await self.cancel(job.id)
        if self._worker_tasks:
            await asyncio.gather(*self._worker_tasks, return_exceptions=True)
            self._worker_tasks = []
        if self._bridge is not None:
            self._bridge.shutdown(wait=True)
            self._bridge = None
        self._started = False

    # -- public API ---------------------------------------------------------

    async def submit(
        self,
        instance: DatabaseInstance,
        constraints: "Sequence[DenialConstraint]",
        *,
        timeout: "float | None | object" = ...,
        label: str = "",
        **params: Any,
    ) -> JobView:
        """Admit one repair job; returns its (pending) view.

        Blocks (or raises :class:`~repro.exceptions.BackpressureError`,
        per the queue policy) when the queue is at its bound.  ``params``
        forward to ``repair_database``; unknown names are rejected here,
        before the job ever occupies a slot.
        """
        if not self._started:
            raise ServiceError("service is not running; use 'async with' or start()")
        unknown = set(params) - ALLOWED_PARAMS
        if unknown:
            raise ServiceError(
                f"unknown job parameter(s) {sorted(unknown)}; "
                f"allowed: {sorted(ALLOWED_PARAMS)}"
            )
        constraints = tuple(constraints)
        fingerprint = program_fingerprint(instance.schema, constraints)
        job = Job(
            sequence=next(self._sequence),
            instance=instance,
            constraints=constraints,
            params=params,
            fingerprint=fingerprint,
            data_token=instance_digest(instance),
            timeout=self.job_timeout if timeout is ... else timeout,
            max_retries=self.max_retries,
            label=label,
        )
        job.done = asyncio.Event()
        job.submitted_at = time.monotonic()
        self._jobs[job.id] = job
        try:
            await self.queue.put(job)
        except Exception:
            del self._jobs[job.id]
            raise
        self.metrics.counter("service_jobs_submitted").inc()
        return job.view()

    def status(self, job_id: str) -> JobView:
        """The current snapshot of one job."""
        return self._job(job_id).view()

    def jobs(self) -> "tuple[JobView, ...]":
        """Snapshots of every known job, in submission order."""
        ordered = sorted(self._jobs.values(), key=lambda j: j.sequence)
        return tuple(job.view() for job in ordered)

    async def result(self, job_id: str) -> RepairResult:
        """Await a job's terminal state and return its repair result.

        Raises :class:`~repro.exceptions.JobCancelledError` /
        :class:`~repro.exceptions.JobTimeoutError` for those terminal
        states, and :class:`~repro.exceptions.ServiceError` (carrying the
        structured :class:`~repro.service.jobs.JobError`) for failures.
        """
        job = self._job(job_id)
        await job.done.wait()
        if job.status == SUCCEEDED:
            assert job.result is not None
            return job.result
        if job.status == CANCELLED:
            raise JobCancelledError(f"job {job.id} was cancelled", job_id=job.id)
        if job.status == TIMED_OUT:
            raise JobTimeoutError(
                f"job {job.id} exceeded its {job.timeout}s budget",
                job_id=job.id,
                timeout=job.timeout or 0.0,
            )
        error = job.error or JobError("internal", "job failed without error record")
        exc = ServiceError(f"job {job.id} failed [{error.code}]: {error.message}")
        exc.job_error = error  # type: ignore[attr-defined]
        raise exc

    async def cancel(self, job_id: str) -> JobView:
        """Cancel one job: withdraw if pending, cooperatively if running."""
        job = self._job(job_id)
        if job.terminal:
            return job.view()
        if job.status == PENDING and await self.queue.withdraw(job):
            self._finish(job, CANCELLED, error=JobError("cancelled", "cancelled while pending"))
            return job.view()
        # Running (or being picked up): flag it; the bridge thread unwinds
        # at its next stage boundary and the worker records the state.
        job.cancel_event.set()
        return job.view()

    def trace_of(self, job_id: str):
        """The finished per-job trace (``trace_jobs=True`` runs only)."""
        return self._job(job_id).trace

    # -- internals ----------------------------------------------------------

    def _job(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(f"no job {job_id!r} in this service")
        return job

    def _finish(self, job: Job, status: str, error: "JobError | None" = None) -> None:
        job.status = status
        job.error = error
        job.finished_at = time.monotonic()
        self.metrics.counter(
            "service_jobs_finished", status=status
        ).inc()
        if job.done is not None:
            job.done.set()

    async def _worker(self) -> None:
        while True:
            job = await self.queue.get()
            if job is None:
                return
            if job.terminal:  # withdrawn between get() races — nothing to do
                continue
            if job.cancel_event.is_set():
                self._finish(
                    job, CANCELLED, error=JobError("cancelled", "cancelled before start")
                )
                continue
            job.status = RUNNING
            job.started_at = time.monotonic()
            await self._execute(job)

    async def _execute(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        assert self._bridge is not None
        attempt = 0
        while True:
            attempt += 1
            job.attempts = attempt
            timed_out = False
            future = loop.run_in_executor(self._bridge, self._run_job_sync, job)
            if job.timeout is not None:
                done, _ = await asyncio.wait({future}, timeout=job.timeout)
                if not done:
                    timed_out = True
                    job.cancel_event.set()
            try:
                result = await future
            except _Cancelled:
                if timed_out:
                    self._finish(
                        job,
                        TIMED_OUT,
                        error=JobError(
                            "timeout",
                            f"exceeded the {job.timeout}s job budget",
                            details={"timeout": job.timeout, "attempts": attempt},
                        ),
                    )
                else:
                    self._finish(
                        job,
                        CANCELLED,
                        error=JobError("cancelled", "cancelled while running"),
                    )
                return
            except WorkerCrashError as error:
                if job.cancel_event.is_set():
                    status = TIMED_OUT if timed_out else CANCELLED
                    self._finish(
                        job,
                        status,
                        error=JobError(
                            "timeout" if timed_out else "cancelled", str(error)
                        ),
                    )
                    return
                if attempt <= job.max_retries:
                    self.metrics.counter("service_job_retries").inc()
                    await asyncio.sleep(
                        self.retry_backoff * (2 ** (attempt - 1))
                    )
                    continue
                self._finish(
                    job,
                    FAILED,
                    error=JobError(
                        "worker-crash",
                        f"worker crashed on all {attempt} attempt(s): {error}",
                        details={"attempts": attempt},
                    ),
                )
                return
            except PoisonedArtifactError as error:
                self._finish(
                    job,
                    FAILED,
                    error=JobError(
                        "poisoned-artifact",
                        str(error),
                        details={
                            "kind": error.kind,
                            "expected": error.expected,
                            "actual": error.actual,
                        },
                    ),
                )
                return
            except ReproError as error:
                self._finish(
                    job,
                    FAILED,
                    error=JobError("repair-error", str(error)),
                )
                return
            except Exception as error:  # noqa: BLE001 - job boundary
                self._finish(
                    job,
                    FAILED,
                    error=JobError(
                        "internal", f"{type(error).__name__}: {error}"
                    ),
                )
                return
            else:
                if timed_out:
                    # The budget elapsed even though the attempt raced to
                    # completion — the timeout contract wins.
                    self._finish(
                        job,
                        TIMED_OUT,
                        error=JobError(
                            "timeout",
                            f"exceeded the {job.timeout}s job budget",
                            details={"timeout": job.timeout, "attempts": attempt},
                        ),
                    )
                    return
                job.result = result
                self._finish(job, SUCCEEDED)
                return

    # -- bridge-thread execution (synchronous) ------------------------------

    def _check_cancel(self, job: Job) -> None:
        if job.cancel_event.is_set():
            raise _Cancelled(job.id)

    def _run_job_sync(self, job: Job) -> RepairResult:
        """Execute one attempt of ``job`` on the bridge thread.

        Stage order (fault hooks fire at each): start → plan → detect →
        repair → finish.  Artifacts flow through the shared cache; a
        poisoned entry propagates as a structured failure, it is never
        recomputed silently.
        """
        faults = self.faults
        cache = self.cache
        faults.on_stage(job, "start")
        self._check_cancel(job)

        tracer = Tracer(job.id) if self.trace_jobs else NULL_TRACER
        with tracer.activate():
            # simplify rewrites the constraint set before detection, so the
            # cached plan/violations (keyed on the unsimplified fingerprint)
            # cannot be reused - those jobs take the plain engine path.
            simplify = bool(job.params.get("simplify"))
            engine = job.params.get("engine", "auto")
            plan = None
            if not simplify:
                plan = cache.get(PLAN, job.fingerprint)
                if plan is None:
                    plan = compile_program(job.instance.schema, job.constraints)
                    cache.put(PLAN, job.fingerprint, plan)
                    faults.on_artifact_put(job, cache, PLAN, "")
                    cache.put(LINT, job.fingerprint, plan.lint)
                    faults.on_artifact_put(job, cache, LINT, "")
            faults.on_stage(job, "plan")
            self._check_cancel(job)

            faults.on_stage(job, "detect")
            violations = None
            if not simplify:
                violations = cache.get(VIOLATIONS, job.fingerprint, job.data_token)
                if violations is not None and not _violations_valid(
                    job.instance, violations
                ):
                    cache.invalidate(VIOLATIONS, job.fingerprint, job.data_token)
                    violations = None
                if violations is None:
                    violations = self._detect(job, plan, engine)
                    cache.put(
                        VIOLATIONS, job.fingerprint, violations, job.data_token
                    )
                    faults.on_artifact_put(job, cache, VIOLATIONS, job.data_token)
            self._check_cancel(job)

            faults.on_stage(job, "repair")
            self._check_cancel(job)
            result = repair_database(
                job.instance,
                job.constraints,
                violations=violations,
                plan=plan,
                trace=tracer if tracer.enabled else False,
                **job.params,
            )
            faults.on_stage(job, "finish")
        if tracer.enabled:
            job.trace = tracer.finish()
        return result

    def _detect(self, job: Job, plan, engine: str):
        """Detect violations exactly as the engine itself would.

        ``engine="auto"`` takes the planned chains; an explicit engine
        request runs that engine over the plan's surviving constraints —
        mirroring :func:`repro.repair.engine.repair_database` so cached
        violations are byte-identical to uncached detection.
        """
        if engine == "auto":
            from repro.plan.runtime import planned_find_all_violations

            return planned_find_all_violations(job.instance, job.constraints, plan)
        from repro.violations.detector import find_all_violations

        return find_all_violations(
            job.instance, plan.executed_constraints(job.constraints), engine=engine
        )


def _violations_valid(instance: DatabaseInstance, violations) -> bool:
    """Defensive reuse check: every cached violation tuple must still
    exist (content-equal) in this instance; otherwise treat as a miss."""
    tables: "dict[str, set]" = {}
    for violation in violations:
        for tup in violation:
            name = tup.relation.name
            table = tables.get(name)
            if table is None:
                try:
                    table = tables[name] = set(instance.tuples(name))
                except Exception:
                    return False
            if tup not in table:
                return False
    return True


# ---------------------------------------------------------------------------
# synchronous batch entry point (tests, CLI, stress harness)


async def _run_jobs_async(
    requests: "Sequence[JobRequest]", **service_options: Any
) -> "tuple[tuple[JobView, ...], RepairService]":
    async with RepairService(**service_options) as service:
        views = []
        for request in requests:
            extra: "dict[str, Any]" = {}
            if request.timeout is not None:
                extra["timeout"] = request.timeout
            views.append(
                await service.submit(
                    request.instance,
                    request.constraints,
                    label=request.label,
                    **extra,
                    **dict(request.params),
                )
            )
        for view in views:
            await service._job(view.id).done.wait()
        final = tuple(service.status(view.id) for view in views)
    return final, service


def run_jobs(
    requests: "Sequence[JobRequest]", **service_options: Any
) -> "tuple[tuple[JobView, ...], RepairService]":
    """Run a batch of jobs to completion on a private event loop.

    Returns the terminal views (submission order) and the shut-down
    service - whose ``cache``, ``metrics`` and per-job results/traces
    remain readable.  This is the synchronous facade used by ``repro
    serve`` and the stress harness.
    """
    return asyncio.run(_run_jobs_async(requests, **service_options))
