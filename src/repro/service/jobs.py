"""Job model of the repair-as-a-service runtime.

A *job* is one ``repair_database`` request travelling through the
:class:`~repro.service.runtime.RepairService`: submitted, admitted into
the bounded :class:`~repro.service.queue.JobQueue`, executed on a bridge
thread over the :mod:`repro.runtime` executors, and finished in exactly
one terminal state.  The full lifecycle::

    pending -> running -> succeeded
                        | failed       (structured JobError attached)
                        | cancelled    (cooperative, queue stays consistent)
                        | timed-out    (per-job budget exceeded)

Job ids are **deterministic**: ``job-<seq>-<digest>`` where ``seq`` is
the submission sequence number and ``digest`` prefixes a SHA-256 over
the (schema, constraints) program fingerprint, the data token and the
solver parameters - resubmitting the same workload in the same order
yields the same ids, which is what lets the concurrency test harness
compare service runs byte for byte.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from repro.model.instance import DatabaseInstance

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.constraints.denial import DenialConstraint
    from repro.obs.spans import Trace
    from repro.repair.result import RepairResult

#: Job lifecycle states.
PENDING = "pending"
RUNNING = "running"
SUCCEEDED = "succeeded"
FAILED = "failed"
CANCELLED = "cancelled"
TIMED_OUT = "timed-out"

#: Every state a job can be in.
JOB_STATES = (PENDING, RUNNING, SUCCEEDED, FAILED, CANCELLED, TIMED_OUT)

#: States a job never leaves.
TERMINAL_STATES = (SUCCEEDED, FAILED, CANCELLED, TIMED_OUT)


#: Attribute carrying an instance's memoized (data versions, digest) pair.
#: Stored on the instance itself (it is unhashable by design - content
#: equality - so it cannot key an external weak mapping).
_DIGEST_MEMO_ATTR = "_service_digest_memo"


def instance_digest(instance: DatabaseInstance) -> str:
    """A content digest of an instance - the cache's *data-version* token.

    SHA-256 over every relation's name and rows in deterministic (key)
    order.  Two instances with equal content - regardless of insertion
    order or object identity - share the digest, so repeat jobs over the
    same data hit the same :class:`~repro.service.cache.ArtifactCache`
    slots.

    The full pass is O(|D|), which would tax every ``submit`` of a
    long-lived instance - so the digest is memoized per instance object
    against its per-relation :meth:`~DatabaseInstance.data_version`
    counters and recomputed only after a mutation.
    """
    versions = tuple(
        instance.data_version(relation.name) for relation in instance.schema
    )
    memo = getattr(instance, _DIGEST_MEMO_ATTR, None)
    if memo is not None and memo[0] == versions:
        return memo[1]
    hasher = hashlib.sha256()
    for relation in instance.schema:
        hasher.update(relation.name.encode("utf-8"))
        table = instance.tuples(relation.name)
        for tup in sorted(table, key=lambda t: t.ref.sort_key):
            hasher.update(repr(tup.values).encode("utf-8"))
        hasher.update(b"\x00")
    digest = hasher.hexdigest()
    setattr(instance, _DIGEST_MEMO_ATTR, (versions, digest))
    return digest


def job_id_for(
    sequence: int,
    fingerprint: str,
    data_token: str,
    params: Mapping[str, Any],
) -> str:
    """The deterministic id of the ``sequence``-th submitted job."""
    hasher = hashlib.sha256()
    hasher.update(fingerprint.encode("utf-8"))
    hasher.update(data_token.encode("utf-8"))
    hasher.update(repr(sorted(params.items())).encode("utf-8"))
    hasher.update(str(sequence).encode("utf-8"))
    return f"job-{sequence:05d}-{hasher.hexdigest()[:10]}"


@dataclass(frozen=True)
class JobError:
    """Structured failure record attached to a non-succeeded job.

    ``code`` is a stable machine-readable slug (``worker-crash``,
    ``timeout``, ``cancelled``, ``poisoned-artifact``, ``repair-error``,
    ``internal``); ``message`` the human text; ``details`` any
    error-specific payload (attempt counts, digests, timeout budgets).
    """

    code: str
    message: str
    details: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "message": self.message,
            "details": dict(self.details),
        }


class Job:
    """One repair request and its mutable lifecycle state.

    The service mutates status/result fields only under its own
    bookkeeping; readers get immutable :class:`JobView` snapshots.
    ``cancel_event`` is the cooperative cancellation token: bridge-thread
    execution checks it between pipeline stages and unwinds without
    touching the artifact cache when it fires.
    """

    __slots__ = (
        "id",
        "sequence",
        "instance",
        "constraints",
        "params",
        "fingerprint",
        "data_token",
        "timeout",
        "max_retries",
        "label",
        "status",
        "attempts",
        "error",
        "result",
        "trace",
        "cancel_event",
        "done",
        "submitted_at",
        "started_at",
        "finished_at",
    )

    def __init__(
        self,
        *,
        sequence: int,
        instance: DatabaseInstance,
        constraints: "tuple[DenialConstraint, ...]",
        params: Mapping[str, Any],
        fingerprint: str,
        data_token: str,
        timeout: float | None,
        max_retries: int,
        label: str = "",
    ) -> None:
        self.sequence = sequence
        self.instance = instance
        self.constraints = constraints
        self.params = dict(params)
        self.fingerprint = fingerprint
        self.data_token = data_token
        self.timeout = timeout
        self.max_retries = max_retries
        self.label = label
        self.id = job_id_for(sequence, fingerprint, data_token, self.params)
        self.status = PENDING
        self.attempts = 0
        self.error: JobError | None = None
        self.result: "RepairResult | None" = None
        self.trace: "Trace | None" = None
        self.cancel_event = threading.Event()
        self.done: "Any" = None  # asyncio.Event, bound by the service loop
        self.submitted_at: float | None = None
        self.started_at: float | None = None
        self.finished_at: float | None = None

    @property
    def terminal(self) -> bool:
        """True once the job reached a state it never leaves."""
        return self.status in TERMINAL_STATES

    def view(self) -> "JobView":
        """An immutable snapshot for status queries."""
        return JobView(
            id=self.id,
            sequence=self.sequence,
            status=self.status,
            attempts=self.attempts,
            label=self.label,
            fingerprint=self.fingerprint,
            data_token=self.data_token,
            error=self.error,
            submitted_at=self.submitted_at,
            started_at=self.started_at,
            finished_at=self.finished_at,
        )

    def __repr__(self) -> str:
        return f"Job({self.id!r}, {self.status})"


@dataclass(frozen=True)
class JobView:
    """Immutable status snapshot of one job (the ``status`` API's answer)."""

    id: str
    sequence: int
    status: str
    attempts: int
    label: str
    fingerprint: str
    data_token: str
    error: JobError | None
    submitted_at: float | None
    started_at: float | None
    finished_at: float | None

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATES

    @property
    def wall_seconds(self) -> float | None:
        """Submit-to-finish wall clock, once terminal."""
        if self.submitted_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def to_dict(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "sequence": self.sequence,
            "status": self.status,
            "attempts": self.attempts,
            "label": self.label,
            "error": self.error.to_dict() if self.error else None,
            "wall_seconds": self.wall_seconds,
        }
