"""Repair-as-a-service: async job runtime, artifact cache, fault harness.

Public surface:

* :class:`RepairService` / :func:`run_jobs` - the asyncio job runtime
  (submit / status / result / cancel) bridging onto the repair pipeline;
* :class:`ArtifactCache` - cross-job cache of compiled plans, lint
  reports and detected violations, fingerprint + data-token keyed;
* :class:`JobQueue` - bounded admission with the streaming layer's
  ``block``/``error`` backpressure semantics;
* :class:`FaultPolicy` / :class:`ScriptedFaults` - the deterministic
  fault-injection hooks of the concurrency test harness.
"""

from repro.service.cache import (
    COLUMNAR,
    JOIN_INDEX,
    KINDS,
    LINT,
    PLAN,
    VIOLATIONS,
    ArtifactCache,
)
from repro.service.faults import NO_FAULTS, STAGES, FaultPolicy, ScriptedFaults
from repro.service.jobs import (
    CANCELLED,
    FAILED,
    JOB_STATES,
    PENDING,
    RUNNING,
    SUCCEEDED,
    TERMINAL_STATES,
    TIMED_OUT,
    Job,
    JobError,
    JobView,
    instance_digest,
    job_id_for,
)
from repro.service.queue import JobQueue
from repro.service.runtime import ALLOWED_PARAMS, JobRequest, RepairService, run_jobs

__all__ = [
    "ALLOWED_PARAMS",
    "ArtifactCache",
    "CANCELLED",
    "COLUMNAR",
    "FAILED",
    "FaultPolicy",
    "JOB_STATES",
    "JOIN_INDEX",
    "Job",
    "JobError",
    "JobQueue",
    "JobRequest",
    "JobView",
    "KINDS",
    "LINT",
    "NO_FAULTS",
    "PENDING",
    "PLAN",
    "RUNNING",
    "RepairService",
    "STAGES",
    "SUCCEEDED",
    "ScriptedFaults",
    "TERMINAL_STATES",
    "TIMED_OUT",
    "VIOLATIONS",
    "instance_digest",
    "job_id_for",
    "run_jobs",
]
