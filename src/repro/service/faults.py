"""Deterministic fault injection for the service concurrency harness.

A :class:`FaultPolicy` is a set of hooks the
:class:`~repro.service.runtime.RepairService` consults at fixed points
of each job's execution - the *stages*::

    start -> plan -> detect -> repair -> finish

Faults are scripted **by job sequence number and stage**, never by wall
clock or randomness, so every injected failure is reproducible run over
run - which is what lets the hypothesis suite assert exact terminal
states under concurrency.  Three fault shapes cover the harness's needs:

``kill``
    Raise :class:`~repro.exceptions.WorkerCrashError` when the job
    reaches the stage - a worker dying mid-detect.  Transient: the
    runtime retries with backoff, so a kill budget smaller than the
    job's ``max_retries`` exercises recovery, a larger one exercises
    the ``worker-crash`` terminal failure.

``stall``
    Sleep at the stage in small cancel-aware increments - a solve that
    hangs past the job timeout.  The stall honours the job's
    ``cancel_event``, mirroring real cooperative code: a timed-out or
    cancelled job unwinds promptly instead of hanging a worker slot.

``poison``
    Corrupt one :class:`~repro.service.cache.ArtifactCache` entry
    (via :meth:`~repro.service.cache.ArtifactCache.poison`) right after
    the job publishes it, so the *next* job that hits the entry gets the
    structured :class:`~repro.exceptions.PoisonedArtifactError` refusal.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.exceptions import WorkerCrashError

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.service.cache import ArtifactCache
    from repro.service.jobs import Job

#: Stages at which the runtime consults the fault policy.
STAGES = ("start", "plan", "detect", "repair", "finish")

#: Granularity of cancel-event polling inside an injected stall.
_STALL_TICK = 0.02


class FaultPolicy:
    """No-fault base policy; the runtime calls these hooks unconditionally.

    Subclass (or use :class:`ScriptedFaults`) to inject failures.  Hooks
    run on the bridge thread executing the job, so raising from
    :meth:`on_stage` fails that job's current attempt exactly as a real
    worker fault would.
    """

    def on_stage(self, job: "Job", stage: str) -> None:
        """Called when ``job`` reaches ``stage``; raise to fail the attempt."""

    def on_artifact_put(
        self, job: "Job", cache: "ArtifactCache", kind: str, data_token: str
    ) -> None:
        """Called after ``job`` stores a ``kind`` artifact in ``cache``."""


#: The default, shared do-nothing policy.
NO_FAULTS = FaultPolicy()


class ScriptedFaults(FaultPolicy):
    """Faults scripted by (job sequence, stage) - fully deterministic.

    Parameters
    ----------
    kill:
        ``{(sequence, stage): n}`` - raise :class:`WorkerCrashError` the
        first ``n`` times job ``sequence`` reaches ``stage`` (so ``n``
        smaller than the retry budget tests recovery, larger tests
        terminal failure).
    stall:
        ``{(sequence, stage): seconds}`` - sleep that long at the stage,
        waking early if the job is cancelled.
    poison:
        ``{sequence: kind}`` - after job ``sequence`` stores a ``kind``
        artifact, poison that cache entry.
    """

    def __init__(
        self,
        kill: "dict[tuple[int, str], int] | None" = None,
        stall: "dict[tuple[int, str], float] | None" = None,
        poison: "dict[int, str] | None" = None,
    ) -> None:
        for key in kill or ():
            self._check_stage(key[1])
        for key in stall or ():
            self._check_stage(key[1])
        self._kill = dict(kill or {})
        self._stall = dict(stall or {})
        self._poison = dict(poison or {})
        #: (sequence, stage, fault) triples actually fired, in order.
        self.fired: "list[tuple[int, str, str]]" = []

    @staticmethod
    def _check_stage(stage: str) -> None:
        if stage not in STAGES:
            raise ValueError(f"unknown fault stage {stage!r}; choose from {STAGES}")

    def on_stage(self, job: "Job", stage: str) -> None:
        key = (job.sequence, stage)
        remaining = self._kill.get(key, 0)
        if remaining > 0:
            self._kill[key] = remaining - 1
            self.fired.append((job.sequence, stage, "kill"))
            raise WorkerCrashError(
                f"injected worker crash: job {job.id} at stage {stage!r} "
                f"({remaining - 1} kills remaining)"
            )
        duration = self._stall.pop(key, 0.0)
        if duration > 0:
            self.fired.append((job.sequence, stage, "stall"))
            deadline = time.monotonic() + duration
            while time.monotonic() < deadline:
                if job.cancel_event.wait(_STALL_TICK):
                    return

    def on_artifact_put(
        self, job: "Job", cache: "ArtifactCache", kind: str, data_token: str
    ) -> None:
        if self._poison.get(job.sequence) == kind:
            del self._poison[job.sequence]
            if cache.poison(kind, job.fingerprint, data_token):
                self.fired.append((job.sequence, kind, "poison"))
