"""Cross-job artifact cache keyed by (program fingerprint, data-version).

Every job recomputes the same expensive derived artifacts: the compiled
:class:`~repro.plan.program.CompiledProgram` and its lint report depend
only on ``(schema, constraints)`` - exactly what the PR-8 plan-cache
fingerprint (:func:`repro.plan.program.program_fingerprint`) covers -
and the detected violation list, join indexes and columnar snapshots
additionally depend on the *data*, identified here by a content token
(:func:`repro.service.jobs.instance_digest`, or a caller-provided
data-version string).  The cache key is therefore

    (artifact kind, program fingerprint, data token)

with ``data token = ""`` for data-independent kinds (plans, lint
reports), so those are shared across every instance of a configuration.

Integrity: each entry stores a SHA-256 digest of its value's canonical
form at insertion time and re-derives it on every hit.  A mismatch - a
*poisoned* artifact, injected by the fault harness or caused by real
corruption - raises :class:`~repro.exceptions.PoisonedArtifactError`
(and evicts the entry) instead of ever serving the bad value.  Kinds
whose values have no canonical form (live join indexes, columnar
stores) carry no digest and skip the check, but still honour explicit
:meth:`ArtifactCache.poison` marks.

Hits, misses and evictions surface as ``artifact_cache_hits`` /
``artifact_cache_misses`` / ``artifact_cache_evictions`` counters
(labelled by kind) on the registry passed in - the
:class:`~repro.service.runtime.RepairService` hands over its own
:class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Callable

from repro.exceptions import PoisonedArtifactError
from repro.obs.metrics import NULL_METRICS

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.obs.metrics import MetricsRegistry

#: Artifact kinds with a canonical (re-derivable) digest form.
PLAN = "plan"
LINT = "lint"
VIOLATIONS = "violations"

#: Artifact kinds cached by reference, without content digests.
COLUMNAR = "columnar"
JOIN_INDEX = "join-index"

KINDS = (PLAN, LINT, VIOLATIONS, COLUMNAR, JOIN_INDEX)

#: Kinds whose values do not depend on the data token.
DATA_INDEPENDENT = (PLAN, LINT)


def default_digest(kind: str, value: Any) -> str | None:
    """The canonical content digest for ``value``, or ``None`` for
    reference-cached kinds."""
    if kind == PLAN:
        payload = value.to_json()
    elif kind == LINT:
        payload = json.dumps(value.to_dict(), sort_keys=True)
    elif kind == VIOLATIONS:
        payload = repr(tuple(value))
    else:
        return None
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class _Entry:
    __slots__ = ("value", "digest", "poisoned")

    def __init__(self, value: Any, digest: str | None) -> None:
        self.value = value
        self.digest = digest
        self.poisoned = False


class ArtifactCache:
    """Bounded, thread-safe LRU store of derived repair artifacts."""

    def __init__(
        self,
        max_entries: int = 256,
        metrics: "MetricsRegistry | None" = None,
        digest: Callable[[str, Any], "str | None"] = default_digest,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._digest = digest
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple[str, str, str], _Entry]" = OrderedDict()

    @staticmethod
    def key_for(kind: str, fingerprint: str, data_token: str = "") -> tuple[str, str, str]:
        """The normalized cache key (data token dropped for shared kinds)."""
        if kind in DATA_INDEPENDENT:
            data_token = ""
        return (kind, fingerprint, data_token)

    # -- core operations ----------------------------------------------------

    def get(self, kind: str, fingerprint: str, data_token: str = "") -> Any:
        """The cached value, or ``None`` on a miss.

        A hit whose stored digest no longer matches the value's
        re-derived digest (or that was explicitly poisoned) raises
        :class:`~repro.exceptions.PoisonedArtifactError` and evicts the
        entry - a poisoned artifact is refused, never served.
        """
        key = self.key_for(kind, fingerprint, data_token)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
        if entry is None:
            self.metrics.counter("artifact_cache_misses", kind=kind).inc()
            return None
        actual = self._digest(kind, entry.value) if entry.digest is not None else None
        if entry.poisoned or (entry.digest is not None and actual != entry.digest):
            with self._lock:
                self._entries.pop(key, None)
            self.metrics.counter("artifact_cache_poisoned", kind=kind).inc()
            raise PoisonedArtifactError(
                f"cached {kind} artifact for fingerprint "
                f"{fingerprint[:12]}… failed its integrity check and was "
                "evicted - recompute the artifact",
                kind=kind,
                key=key,
                expected=entry.digest or "",
                actual=actual or "poisoned",
            )
        self.metrics.counter("artifact_cache_hits", kind=kind).inc()
        return entry.value

    def put(self, kind: str, fingerprint: str, value: Any, data_token: str = "") -> None:
        """Insert (or refresh) one artifact, evicting LRU past the bound."""
        key = self.key_for(kind, fingerprint, data_token)
        entry = _Entry(value, self._digest(kind, value))
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            evicted = 0
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                evicted += 1
        if evicted:
            self.metrics.counter("artifact_cache_evictions").inc(evicted)

    def invalidate(self, kind: str, fingerprint: str, data_token: str = "") -> bool:
        """Drop one entry; True when something was removed."""
        key = self.key_for(kind, fingerprint, data_token)
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        """Drop every entry (does not count as eviction)."""
        with self._lock:
            self._entries.clear()

    # -- fault-injection surface --------------------------------------------

    def poison(self, kind: str, fingerprint: str, data_token: str = "") -> bool:
        """Mark one entry as corrupted (the fault harness's hook).

        The next :meth:`get` of the entry raises
        :class:`~repro.exceptions.PoisonedArtifactError` instead of
        returning the value.  True when the entry existed.
        """
        key = self.key_for(kind, fingerprint, data_token)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            entry.poisoned = True
            return True

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple[str, str, str]) -> bool:
        return key in self._entries

    def keys(self) -> tuple[tuple[str, str, str], ...]:
        """Current keys, LRU order (oldest first)."""
        with self._lock:
            return tuple(self._entries)

    def stats(self) -> dict[str, float]:
        """Hit/miss/eviction totals read back off the metrics registry."""
        totals = {"hits": 0.0, "misses": 0.0, "evictions": 0.0, "poisoned": 0.0}
        for counter in self.metrics.counters():
            slot = counter.name.removeprefix("artifact_cache_")
            if slot in totals:
                totals[slot] += counter.value
        return totals
