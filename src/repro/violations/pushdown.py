"""SQL pushdown detection: run Algorithm 2 inside the storage backend.

The interpreted and kernel engines both materialize the instance in
Python memory (tuple objects, columnar NumPy snapshots) before joining.
The *pushdown* engine instead executes the compiled violation SQL of
:func:`repro.constraints.sql.violation_query` directly inside a SQL
backend (sqlite, DuckDB) and only materializes the witness rows - the
paper's Algorithm 2 taken literally: the DBMS evaluates the view, the
repair system reads back the violating key tuples.  Detection cost then
scales with the number of *witnesses*, not with a Python-side O(|D|)
snapshot build.

Pushdown needs a **backend-resident** instance: one returned by a SQL
backend's ``load_instance`` and unmodified since.  The backend *binds*
itself to the instance it loads (:func:`bind_backend`): the binding
captures a weak backend reference, the instance's per-relation data
versions, and the backend's write generation.  :func:`bound_backend`
re-validates all three, so a mutation on either side silently severs the
binding - ``engine="auto"`` then falls back to the in-memory engines,
``engine="pushdown"`` raises :class:`~repro.exceptions.PushdownError`.

Faithfulness: SQL comparison semantics diverge from Python's exactly
where the kernel's do (order comparisons and offset arithmetic over
non-integer data) plus on NULLs (which never join in SQL but compare
equal as Python ``None``).  The backends therefore refuse, per
constraint, data shapes they cannot execute faithfully - the runtime
analogue of :func:`pushdown_requirements` - and every witness set still
funnels through the detector's shared minimality+ordering funnel, so
pushdown results are byte-identical to the other engines.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from repro.exceptions import PushdownError
from repro.model.instance import DatabaseInstance

if TYPE_CHECKING:
    from repro.constraints.denial import DenialConstraint
    from repro.model.schema import Schema
    from repro.model.tuples import Tuple

#: Attribute slot on :class:`DatabaseInstance` holding the binding.  The
#: instance's ``__getstate__`` drops it, so bindings never travel through
#: pickle into process-pool workers (a live DB connection would not
#: survive the trip anyway).
BINDING_ATTR = "_pushdown_binding"


@dataclass
class PushdownBinding:
    """The liveness contract between a loaded instance and its backend.

    ``versions`` snapshots the instance's per-relation data versions at
    load time and ``generation`` the backend's write counter; either side
    mutating invalidates the binding.  ``cache`` memoizes the backend's
    per-column executability scans (typeof / NULL checks) for the
    binding's lifetime - exactly as long as both sides are unchanged.
    """

    backend_ref: "weakref.ReferenceType[Any]"
    versions: dict[str, int]
    generation: int
    cache: dict[Any, bool] = field(default_factory=dict)


def bind_backend(instance: DatabaseInstance, backend: Any) -> None:
    """Bind a freshly loaded instance to the backend it came from."""
    binding = PushdownBinding(
        backend_ref=weakref.ref(backend),
        versions={
            relation.name: instance.data_version(relation.name)
            for relation in instance.schema
        },
        generation=getattr(backend, "generation", 0),
    )
    setattr(instance, BINDING_ATTR, binding)


def unbind_backend(instance: DatabaseInstance) -> None:
    """Sever an instance's backend binding (idempotent)."""
    instance.__dict__.pop(BINDING_ATTR, None)


def _live_binding(instance: DatabaseInstance) -> PushdownBinding | None:
    binding = getattr(instance, BINDING_ATTR, None)
    if binding is None:
        return None
    backend = binding.backend_ref()
    if backend is None or not hasattr(backend, "pushdown_witnesses"):
        return None
    if getattr(backend, "generation", 0) != binding.generation:
        return None
    for name, version in binding.versions.items():
        if instance.data_version(name) != version:
            return None
    return binding


def bound_backend(instance: DatabaseInstance) -> Any | None:
    """The live, unmodified backend bound to ``instance``, or ``None``.

    Returns ``None`` when the instance was never loaded from a SQL
    backend, the backend was garbage-collected, either side was mutated
    since the load, or the backend lacks the pushdown API.
    """
    binding = _live_binding(instance)
    return None if binding is None else binding.backend_ref()


def pushdown_ready(instance: DatabaseInstance) -> bool:
    """True when ``engine="pushdown"`` can serve this instance."""
    return _live_binding(instance) is not None


def _require_binding(instance: DatabaseInstance) -> PushdownBinding:
    binding = _live_binding(instance)
    if binding is None:
        raise PushdownError(
            "instance is not backend-resident: pushdown detection executes "
            "the violation SQL inside a storage backend, so the instance "
            "must come from a SQL backend's load_instance() and stay "
            "unmodified since (engine='auto' falls back automatically)"
        )
    return binding


def pushdown_used_sets(
    instance: DatabaseInstance,
    constraint: "DenialConstraint",
    max_violations: int | None = None,
) -> "set[frozenset[Tuple]]":
    """Witness tuple sets of one constraint, computed inside the backend.

    Raises :class:`PushdownError` when the instance is not backend-
    resident or the constraint is not faithfully executable on the
    resident data; :class:`~repro.exceptions.ConstraintError` when the
    ``max_violations`` safety valve trips (same contract as the other
    engines).  The caller funnels the returned sets through the shared
    minimality+ordering reduction.
    """
    binding = _require_binding(instance)
    backend = binding.backend_ref()
    return backend.pushdown_witnesses(
        instance, constraint, max_violations=max_violations, cache=binding.cache
    )


def pushdown_has_witness(
    instance: DatabaseInstance, constraint: "DenialConstraint"
) -> bool:
    """``LIMIT 1`` consistency probe: does any violation witness exist?"""
    binding = _require_binding(instance)
    backend = binding.backend_ref()
    return backend.pushdown_has_witness(
        instance, constraint, cache=binding.cache
    )


def prescan_columns(instance: DatabaseInstance) -> dict[Any, bool]:
    """Per-column executability verdicts, computed from the loaded image.

    Returns ``{("int"|"null", relation, attribute): clean}`` entries for
    every column: ``"int"`` means all values are integers, ``"null"``
    means the column is NULL-free.  A backend that just loaded the
    instance can seed the binding's cache with these instead of issuing
    per-column SQL scans at detection time - the binding's version checks
    guarantee the in-memory image still mirrors the stored tables, so the
    verdicts are interchangeable.
    """
    cache: dict[Any, bool] = {}
    for relation in instance.schema:
        tuples = instance.tuples(relation.name)
        for index, attribute in enumerate(relation.attributes):
            all_int = all(type(t.values[index]) is int for t in tuples)
            no_null = all_int or all(
                t.values[index] is not None for t in tuples
            )
            cache[("int", relation.name, attribute.name)] = all_int
            cache[("null", relation.name, attribute.name)] = no_null
    return cache


def pushdown_requirements(
    constraint: "DenialConstraint",
) -> frozenset[tuple[int, int]]:
    """``(atom_index, position)`` slots needing all-integer columns.

    Identical to :func:`repro.violations.kernels.kernel_requirements` by
    design: SQL engines diverge from Python comparison semantics at
    exactly the slots the kernel cannot vectorize - order comparisons
    (sqlite orders across type classes where Python raises ``TypeError``)
    and offset arithmetic (SQL coerces text operands of ``+`` to 0).
    Equality/``≠`` filters and equality joins are type-strict in both
    worlds and impose nothing; NULL divergence is handled separately by
    the backends' runtime NULL scans over :func:`referenced_columns`.
    """
    from repro.violations.kernels import kernel_requirements

    return kernel_requirements(constraint)


def slot_columns(
    constraint: "DenialConstraint",
    schema: "Schema",
    slots: Iterable[tuple[int, int]],
) -> frozenset[tuple[str, str]]:
    """Map plan slots ``(atom_index, position)`` to ``(relation, attribute)``."""
    pairs: set[tuple[str, str]] = set()
    for atom_index, position in slots:
        atom = constraint.relation_atoms[atom_index]
        relation = schema.relation(atom.relation_name)
        pairs.add((relation.name, relation.attributes[position].name))
    return frozenset(pairs)


def referenced_columns(
    constraint: "DenialConstraint", schema: "Schema"
) -> frozenset[tuple[str, str]]:
    """``(relation, attribute)`` pairs the violation SQL compares.

    These are the columns where a NULL makes SQL and Python disagree
    (``NULL = NULL`` is not true in SQL; ``None == None`` is in Python),
    so the backends scan them for NULLs before trusting a pushdown run.
    Columns bound to variables that are never joined or compared are
    projection-only and impose nothing.
    """
    pairs: set[tuple[str, str]] = set()
    for variable in constraint.variables:
        occurrences = constraint.occurrences(variable)
        used = (
            len(occurrences) > 1
            or any(b.variable == variable for b in constraint.builtins)
            or any(
                variable in (c.left, c.right)
                for c in constraint.variable_comparisons
            )
        )
        if used:
            pairs |= slot_columns(constraint, schema, occurrences)
    return frozenset(pairs)


def comparable_column_groups(
    constraint: "DenialConstraint", schema: "Schema"
) -> tuple[frozenset[tuple[str, str]], ...]:
    """Column groups that the violation SQL compares *to each other*.

    One group per join variable (all its occurrence columns) and one per
    equality/``≠`` variable comparison without offset (both variables'
    columns).  Strictly-typed backends (DuckDB) require each group to
    live in one type class: comparing a VARCHAR column to a BIGINT one
    casts and raises where Python would just answer ``False``.
    """
    groups: list[frozenset[tuple[str, str]]] = []
    for variable in constraint.variables:
        occurrences = constraint.occurrences(variable)
        if len(occurrences) > 1:
            groups.append(slot_columns(constraint, schema, occurrences))
    for comparison in constraint.variable_comparisons:
        if not comparison.is_order and comparison.offset == 0:
            slots = [
                constraint.occurrences(comparison.left)[0],
                constraint.occurrences(comparison.right)[0],
            ]
            groups.append(slot_columns(constraint, schema, slots))
    return tuple(groups)
