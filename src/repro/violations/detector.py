"""Enumerate violation sets ``I(D, ic)`` (Definition 2.4).

A *violation set* for a constraint ``ic`` is a minimal set of tuples that
simultaneously participate in a violation: ``I ⊭ ic`` and every proper
subset satisfies ``ic``.

The detector enumerates all satisfying assignments of the denial body with
a backtracking join: atoms are matched left to right, per-atom candidates
are pre-filtered with the built-ins already decidable on that atom, and
hash indexes on the join positions avoid quadratic scans (this is the
in-memory equivalent of the SQL views of Algorithm 2 - the sqlite backend
in :mod:`repro.storage.sqlite` runs the actual SQL instead).  The used
tuple sets of the assignments are then reduced to the *minimal* ones.

Every public entry point takes an ``engine`` argument choosing between
this *interpreted* enumeration and the columnar *kernel* executor of
:mod:`repro.violations.kernels`:

* ``"interpreted"`` - the backtracking join above, always available;
* ``"kernel"`` - vectorized NumPy execution of the compiled plan; raises
  :class:`~repro.exceptions.KernelError` without NumPy or on data shapes
  with no vectorized form;
* ``"pushdown"`` - the Algorithm-2 SQL executed *inside* the storage
  backend (:mod:`repro.violations.pushdown`); needs a backend-resident
  instance and raises :class:`~repro.exceptions.PushdownError` otherwise;
* ``"auto"`` (default) - pushdown when the instance is backend-resident,
  else the kernel when NumPy is importable, falling back per constraint
  to the interpreted path on :class:`KernelError`/:class:`PushdownError`.

All engines produce byte-identical results: each computes the same
satisfying-assignment witness sets, which then flow through the same
minimality reduction and deterministic ordering
(:func:`_ordered_violation_sets`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.constraints.denial import DenialConstraint
from repro.exceptions import ConstraintError, KernelError, PushdownError
from repro.model.instance import DatabaseInstance
from repro.model.tuples import Tuple
from repro.obs import current_tracer
from repro.violations.kernels import (
    anchored_kernel_witnesses,
    kernel_available,
    kernel_witnesses,
    resolve_engine,
)
from repro.violations.pushdown import pushdown_has_witness, pushdown_used_sets


@dataclass(frozen=True)
class ViolationSet:
    """One element of ``I(D, IC)``: a minimal violating tuple set + its ic.

    Violation sets are the universe elements of the set-cover reduction
    (Definition 3.1(a)), which pairs each tuple set with the constraint it
    violates - ``({t₁}, ic₁)`` and ``({t₁}, ic₂)`` are *distinct* elements.
    """

    tuples: frozenset[Tuple]
    constraint: DenialConstraint

    def __contains__(self, tup: Tuple) -> bool:
        return tup in self.tuples

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self.tuples)

    def sorted_tuples(self) -> tuple[Tuple, ...]:
        """Tuples in a deterministic order (for stable output).

        The order is computed once and cached on the instance - repair
        tracing and greedy scoring call this repeatedly on the same
        (frozen, hence immutable) violation set.  The cache is not a
        dataclass field, so equality, hashing, and pickling are
        unaffected.
        """
        cached = self.__dict__.get("_sorted_cache")
        if cached is None:
            cached = tuple(
                sorted(self.tuples, key=lambda t: t.ref.sort_key)
            )
            object.__setattr__(self, "_sorted_cache", cached)
        return cached

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.sorted_tuples())
        return f"ViolationSet({{{inner}}}, {self.constraint.label})"


def _local_predicate(constraint: DenialConstraint, atom_index: int):
    """Predicate testing one atom's locally-decidable conditions on a tuple.

    A var/constant built-in applies when its variable occurs in this atom
    (join equality makes every occurrence carry the same value, so
    filtering any one occurrence is sound); repeated variables *within*
    the atom are intra-tuple equalities.
    """
    atom = constraint.relation_atoms[atom_index]
    local_builtins = [
        (builtin, positions)
        for builtin in constraint.builtins
        if (positions := atom.positions_of(builtin.variable))
    ]
    repeated = [
        positions
        for variable in set(atom.variables)
        if len(positions := atom.positions_of(variable)) > 1
    ]

    def passes(tup: Tuple) -> bool:
        if tup.relation.name != atom.relation_name:
            return False
        values = tup.values
        for builtin, positions in local_builtins:
            if not builtin.evaluate(values[positions[0]]):
                return False
        for positions in repeated:
            if len({values[p] for p in positions}) != 1:
                return False
        return True

    return passes


def _atom_candidates(
    instance: DatabaseInstance,
    constraint: DenialConstraint,
    atom_index: int,
    pool: Iterable[Tuple] | None = None,
) -> list[Tuple]:
    """Tuples of the atom's relation passing its locally-decidable built-ins.

    ``pool`` overrides the relation scan with an explicit candidate list
    (anchored detection).
    """
    if pool is None:
        atom = constraint.relation_atoms[atom_index]
        pool = instance.tuples(atom.relation_name)
    passes = _local_predicate(constraint, atom_index)
    return [tup for tup in pool if passes(tup)]


def _satisfying_assignments(
    instance: DatabaseInstance,
    constraint: DenialConstraint,
    restrict: dict[int, list[Tuple]] | None = None,
    raw_indexes: "Mapping[tuple[str, tuple[int, ...]], Mapping[tuple, Iterable[Tuple]]] | None" = None,
) -> Iterator[tuple[Tuple, ...]]:
    """Yield every assignment of tuples to atoms that witnesses a violation.

    ``restrict`` optionally replaces the candidate pool of specific atom
    positions (still filtered by that atom's built-ins); the incremental
    detector anchors one atom on the freshly changed tuples this way.

    ``raw_indexes`` optionally supplies persistent hash indexes keyed by
    ``(relation name, attribute positions)`` mapping join-key values to
    the relation's tuples (unfiltered).  When present, join lookups use
    them instead of scanning the relation to build throwaway indexes -
    with every atom either restricted or index-reachable, enumeration
    never touches the full instance (the incremental-repair fast path).
    """
    constraint.validate(instance.schema)
    n_atoms = len(constraint.relation_atoms)
    restrict = restrict or {}
    predicates = [_local_predicate(constraint, i) for i in range(n_atoms)]

    candidate_cache: dict[int, list[Tuple]] = {}

    def candidates_for(atom_index: int) -> list[Tuple]:
        if atom_index not in candidate_cache:
            candidate_cache[atom_index] = _atom_candidates(
                instance, constraint, atom_index, restrict.get(atom_index)
            )
        return candidate_cache[atom_index]

    # Restricted pools are small; checking them early avoids any other work.
    for atom_index in restrict:
        if not candidates_for(atom_index):
            return

    # For each atom, positions whose variable was already bound by an
    # earlier atom (used to hash-join), and variable->position for new ones.
    bound_by_earlier: list[list[tuple[int, str]]] = []
    seen_variables: set[str] = set()
    for atom in constraint.relation_atoms:
        bound = [
            (position, variable)
            for position, variable in enumerate(atom.variables)
            if variable in seen_variables
        ]
        bound_by_earlier.append(bound)
        seen_variables.update(atom.variables)

    # Variable/variable comparisons become checkable at the atom where the
    # later of their two variables first appears.
    first_atom_of_variable: dict[str, int] = {}
    for atom_index, atom in enumerate(constraint.relation_atoms):
        for variable in atom.variables:
            first_atom_of_variable.setdefault(variable, atom_index)
    comparisons_at: list[list[Any]] = [[] for _ in range(n_atoms)]
    for comparison in constraint.variable_comparisons:
        ready = max(
            first_atom_of_variable[comparison.left],
            first_atom_of_variable[comparison.right],
        )
        comparisons_at[ready].append(comparison)

    # Hash indexes, built lazily per (atom_index, join-positions signature).
    index_cache: dict[tuple[int, tuple[int, ...]], dict[tuple, list[Tuple]]] = {}

    def index_for(
        atom_index: int, positions: tuple[int, ...]
    ) -> dict[tuple, list[Tuple]]:
        cache_key = (atom_index, positions)
        index = index_cache.get(cache_key)
        if index is None:
            index = {}
            for tup in candidates_for(atom_index):
                key = tuple(tup.values[p] for p in positions)
                index.setdefault(key, []).append(tup)
            index_cache[cache_key] = index
        return index

    def matches_for(
        atom_index: int, positions: tuple[int, ...], key: tuple
    ) -> Iterable[Tuple]:
        if raw_indexes is not None and atom_index not in restrict:
            atom = constraint.relation_atoms[atom_index]
            raw = raw_indexes.get((atom.relation_name, positions))
            if raw is not None:
                passes = predicates[atom_index]
                return [t for t in raw.get(key, ()) if passes(t)]
        return index_for(atom_index, positions).get(key, ())

    bindings: dict[str, Any] = {}
    assignment: list[Tuple] = []

    def extend(atom_index: int) -> Iterator[tuple[Tuple, ...]]:
        if atom_index == n_atoms:
            yield tuple(assignment)
            return
        atom = constraint.relation_atoms[atom_index]
        bound = bound_by_earlier[atom_index]
        if bound:
            positions = tuple(p for p, _ in bound)
            key = tuple(bindings[v] for _, v in bound)
            matches = matches_for(atom_index, positions, key)
        else:
            matches = candidates_for(atom_index)
        for tup in matches:
            new_variables: list[str] = []
            ok = True
            for position, variable in enumerate(atom.variables):
                value = tup.values[position]
                if variable in bindings:
                    if bindings[variable] != value:
                        ok = False
                        break
                else:
                    bindings[variable] = value
                    new_variables.append(variable)
            if ok:
                for comparison in comparisons_at[atom_index]:
                    if not comparison.evaluate(
                        bindings[comparison.left], bindings[comparison.right]
                    ):
                        ok = False
                        break
            if ok:
                assignment.append(tup)
                yield from extend(atom_index + 1)
                assignment.pop()
            for variable in new_variables:
                del bindings[variable]

    yield from extend(0)


def _minimal_sets(used_sets: set[frozenset[Tuple]]) -> list[frozenset[Tuple]]:
    """Keep only sets with no proper subset among ``used_sets``.

    A set ``I`` violates the constraint iff some used-set is contained in
    it, so minimality (Definition 2.4) is exactly "no proper subset is a
    used-set".  Candidate sets have at most as many tuples as the denial
    has atoms (2-4 in practice), so the powerset walk is constant work —
    but it runs once per witness of the constraint, so the constants
    matter on hot detection loops.  Two pre-passes cut the allocation
    churn:

    * singleton used-sets are collapsed into one plain membership set, so
      the overwhelmingly common "a 1-tuple witness kills the pair" case
      is an intersection test instead of a frozenset build per mask;
    * only subset sizes that actually occur among ``used_sets`` are
      enumerated (a mask whose popcount matches no witness size cannot
      hit), which skips the whole powerset walk for uniform-size witness
      populations — the usual shape, since every witness of one denial
      has one tuple per atom unless self-joins collapse.

    Micro-benchmark (Client/Buy, 50k clients / ~150k tuples, ~31k
    witnesses): the isolated ``_minimal_sets`` pass drops from ~65ms to
    ~31ms (~2.1x), shrinking its share of the ~1.0s detection run from
    ~6.5% to ~3%.  At 2000 clients the isolated ratio is ~2.5x.
    """
    if not used_sets:
        return []
    sizes_present = {len(used) for used in used_sets}
    if len(sizes_present) == 1:
        # Uniform-size witnesses (the usual shape: one tuple per atom, no
        # self-join collapse): a proper subset would be a strictly smaller
        # witness, and none exists.  Skip the per-set checks entirely.
        return list(used_sets)
    singleton_members: set[Tuple] = (
        {member for used in used_sets if len(used) == 1 for member in used}
        if 1 in sizes_present
        else set()
    )
    proper_sizes = sizes_present - {1}
    minimal: list[frozenset[Tuple]] = []
    for used in used_sets:
        if len(used) > 1:
            if singleton_members and not singleton_members.isdisjoint(used):
                continue
            if _has_proper_subset(used, used_sets, proper_sizes):
                continue
        minimal.append(used)
    return minimal


def _has_proper_subset(
    candidate: frozenset[Tuple],
    used_sets: set[frozenset[Tuple]],
    sizes_present: set[int] | None = None,
) -> bool:
    """True when some proper, non-singleton subset of ``candidate`` is used.

    ``sizes_present`` restricts the enumeration to subset sizes that occur
    in ``used_sets`` (singletons are pre-checked by the caller via plain
    membership; passing ``None`` enumerates every proper subset).
    """
    members = tuple(candidate)
    n = len(members)
    if sizes_present is not None and not any(1 < k < n for k in sizes_present):
        return False
    for mask in range(1, (1 << n) - 1):
        if sizes_present is not None:
            size = mask.bit_count()
            if size not in sizes_present or size == 1:
                continue
        subset = frozenset(
            members[i] for i in range(n) if mask & (1 << i)
        )
        if subset in used_sets:
            return True
    return False


def _ordered_violation_sets(
    used_sets: set[frozenset[Tuple]], constraint: DenialConstraint
) -> tuple[ViolationSet, ...]:
    """Minimality reduction + the deterministic output order.

    All engines (interpreted, kernel, pushdown) funnel their witness sets
    through here, which is what makes their results byte-identical.

    The canonical order is by the sorted list of member ``sort_key``\\ s.
    The hot path compares :attr:`TupleRef.flat_sort_key` instead - a flat
    string with the identical order - so the sort runs on C string
    comparisons rather than nested-tuple walks; key tuples of different
    lengths follow the same prefix rule as the key lists they replace, and
    the trailing index is never compared because distinct sets have
    distinct key tuples.  Any ref without a flat form (NUL in a rendered
    key value) falls back to comparing ``sort_key`` directly.
    """
    minimal = _minimal_sets(used_sets)
    keyed: list[tuple[tuple[str, ...], int]] = []
    flat_ok = True
    for index, used in enumerate(minimal):
        keys = []
        for tup in used:
            flat = tup.ref.flat_sort_key
            if flat is None:
                flat_ok = False
                break
            keys.append(flat)
        if not flat_ok:
            break
        keys.sort()
        keyed.append((tuple(keys), index))
    if flat_ok:
        keyed.sort()
        ordered = [minimal[index] for _, index in keyed]
    else:
        ordered = sorted(minimal, key=lambda s: sorted(t.ref.sort_key for t in s))
    return tuple(ViolationSet(s, constraint) for s in ordered)


def _kernel_used_sets(
    instance: DatabaseInstance,
    constraint: DenialConstraint,
    max_violations: int | None,
) -> set[frozenset[Tuple]]:
    """Kernel witness retrieval with the ``max_violations`` safety valve."""
    used_sets, count = kernel_witnesses(instance, constraint)
    if max_violations is not None and count > max_violations:
        raise ConstraintError(
            f"{constraint.label}: more than {max_violations} violation "
            "witnesses; refusing to enumerate further"
        )
    return used_sets


def find_violations(
    instance: DatabaseInstance,
    constraint: DenialConstraint,
    max_violations: int | None = None,
    engine: str = "auto",
) -> tuple[ViolationSet, ...]:
    """Compute ``I(D, ic)``: all minimal violation sets of one constraint.

    ``max_violations`` bounds the number of satisfying assignments explored
    (a safety valve against accidentally cartesian constraints); exceeding
    it raises :class:`ConstraintError`.  ``engine`` selects the columnar
    kernel or the interpreted enumeration (see the module docstring).

    Under an active tracer each call records a ``detect:<label>`` span
    tagged with the engine and the violation count, and bumps the
    ``violations_found{constraint=<label>}`` counter - on pool threads
    the span lands under the engine's ``detect`` stage anchor, in process
    workers it is exported and merged by the runtime.
    """
    tracer = current_tracer()
    if not tracer.enabled:
        return _find_violations(instance, constraint, max_violations, engine)
    with tracer.span(
        f"detect:{constraint.label}",
        category="detect",
        engine=resolve_engine(engine, instance),
    ) as span:
        violations = _find_violations(instance, constraint, max_violations, engine)
        span.tag(violations=len(violations))
        tracer.metrics.counter(
            "violations_found", constraint=constraint.label
        ).inc(len(violations))
        return violations


def _find_violations(
    instance: DatabaseInstance,
    constraint: DenialConstraint,
    max_violations: int | None,
    engine: str,
) -> tuple[ViolationSet, ...]:
    resolved = resolve_engine(engine, instance)
    if resolved == "pushdown":
        try:
            used_sets = pushdown_used_sets(instance, constraint, max_violations)
        except PushdownError:
            if engine == "pushdown":
                raise
            # auto: this constraint is not faithfully executable in the
            # backend - fall back to the in-memory engines per constraint.
            resolved = "kernel" if kernel_available() else "interpreted"
        else:
            return _ordered_violation_sets(used_sets, constraint)
    if resolved == "kernel":
        try:
            used_sets = _kernel_used_sets(instance, constraint, max_violations)
        except KernelError:
            if engine == "kernel":
                raise
        else:
            return _ordered_violation_sets(used_sets, constraint)
    used_sets = set()
    for count, assignment in enumerate(
        _satisfying_assignments(instance, constraint), start=1
    ):
        if max_violations is not None and count > max_violations:
            raise ConstraintError(
                f"{constraint.label}: more than {max_violations} violation "
                "witnesses; refusing to enumerate further"
            )
        used_sets.add(frozenset(assignment))
    return _ordered_violation_sets(used_sets, constraint)


def find_all_violations(
    instance: DatabaseInstance,
    constraints: Iterable[DenialConstraint],
    max_violations: int | None = None,
    executor=None,
    engine: str = "auto",
) -> tuple[ViolationSet, ...]:
    """Compute ``I(D, IC)`` across all constraints, in constraint order.

    ``executor`` (anything :func:`repro.runtime.as_executor` accepts) fans
    detection out with one work item per constraint — constraints never
    share violation sets, so the fan-out is shared-nothing.  Constraints
    are batched by estimated join cost so the instance is serialized once
    per batch (process backend), and results are concatenated in
    constraint order: the output is identical to the serial loop.  The
    ``max_violations`` safety valve keeps working; a tripped valve in any
    worker raises :class:`~repro.exceptions.ConstraintError` here.

    ``engine`` composes with the fan-out: each worker runs the requested
    engine on its constraint batch (process workers rebuild their own
    columnar snapshots from the shipped instance).  When the pushdown
    engine is selected the fan-out is skipped and the per-constraint
    loop stays serial: the backend connection is not shareable across
    workers (and the database parallelizes each violation query
    internally), while a shipped instance would arrive unbound and
    silently detect with a different engine.
    """
    constraints = tuple(constraints)
    if executor is not None and resolve_engine(engine, instance) == "pushdown":
        executor = None
    per_constraint = _detect_parallel(
        instance, constraints, max_violations, executor, engine
    )
    if per_constraint is None:
        per_constraint = [
            find_violations(instance, constraint, max_violations, engine)
            for constraint in constraints
        ]
    result: list[ViolationSet] = []
    for violations in per_constraint:
        result.extend(violations)
    return tuple(result)


def _detect_parallel(
    instance: DatabaseInstance,
    constraints: tuple[DenialConstraint, ...],
    max_violations: int | None,
    executor,
    engine: str = "auto",
) -> list[tuple[ViolationSet, ...]] | None:
    """Per-constraint fan-out of ``find_violations``; ``None`` = stay serial."""
    if executor is None:
        return None
    from repro.runtime.executor import as_executor, balanced_chunks
    from repro.runtime.workers import detect_constraint_batch, detection_cost

    ex = as_executor(executor)
    if not ex.is_parallel or len(constraints) <= 1:
        return None
    # Thread workers see the active tracer directly (spans land under the
    # detect anchor); process workers cannot, so ship a trace flag and
    # merge the exported spans/metrics on the way back.
    tracer = current_tracer()
    trace_remote = tracer.enabled and ex.backend == "process"
    costs = [detection_cost(constraint) for constraint in constraints]
    chunks = balanced_chunks(costs, ex.n_chunks(len(constraints)))
    payloads = [
        (
            instance,
            [constraints[i] for i in chunk],
            max_violations,
            engine,
            trace_remote,
        )
        for chunk in chunks
    ]
    results: list[tuple[ViolationSet, ...] | None] = [None] * len(constraints)
    for chunk, outcome in zip(chunks, ex.map(detect_constraint_batch, payloads)):
        if trace_remote:
            batch, remote = outcome
            tracer.attach_remote(remote)
        else:
            batch = outcome
        for index, violations in zip(chunk, batch):
            results[index] = _reintern_constraint(violations, constraints[index])
    return results  # type: ignore[return-value]


def _reintern_constraint(
    violations: tuple[ViolationSet, ...], constraint: DenialConstraint
) -> tuple[ViolationSet, ...]:
    """Swap unpickled constraint copies for the caller's original objects.

    The process backend round-trips work through pickle, so the returned
    violation sets would otherwise reference equal-but-distinct constraint
    copies; downstream consumers are equality-based, but keeping identity
    stable makes the parallel path indistinguishable from the serial one.
    """
    return tuple(
        v
        if v.constraint is constraint
        else ViolationSet(v.tuples, constraint)
        for v in violations
    )


def violations_of_tuple(
    violations: Iterable[ViolationSet], tup: Tuple
) -> tuple[ViolationSet, ...]:
    """Filter ``I(D, IC)`` down to ``I(D, ic, t)`` for every ic: sets containing ``t``."""
    return tuple(v for v in violations if tup in v)


def _anchored_first(constraint: DenialConstraint, atom_index: int) -> DenialConstraint:
    """The same denial with one atom moved to the front.

    Violation witnesses are order-independent (the used tuple *set* is
    what matters), but putting the anchored atom first lets the join start
    from the small changed set and reach the rest through hash lookups.
    """
    if atom_index == 0:
        return constraint
    atoms = list(constraint.relation_atoms)
    atoms.insert(0, atoms.pop(atom_index))
    return DenialConstraint(
        atoms,
        constraint.builtins,
        constraint.variable_comparisons,
        name=constraint.name,
    )


def violations_involving_constraint(
    instance: DatabaseInstance,
    constraint: DenialConstraint,
    anchors: Sequence[Tuple],
    raw_indexes: Mapping | None = None,
    engine: str = "auto",
) -> tuple[ViolationSet, ...]:
    """One constraint's share of :func:`find_violations_involving`.

    Exposed as a top-level function so the parallel runtime can dispatch
    it per constraint (see :mod:`repro.runtime.workers`).  The kernel
    engine pins the anchored atom first in its join order and restricts
    that atom's candidates to the anchors; ``raw_indexes`` only applies
    to the interpreted path (the kernel has its own columnar snapshots).
    Under ``"auto"``, supplying ``raw_indexes`` therefore selects the
    interpreted path: persistent join indexes make anchored work
    proportional to the change set, while the kernel would rebuild
    whole-relation snapshots on every call - pass ``engine="kernel"``
    to force the kernel anyway.
    """
    tracer = current_tracer()
    if not tracer.enabled:
        return _violations_involving_constraint(
            instance, constraint, anchors, raw_indexes, engine
        )
    with tracer.span(
        f"detect:{constraint.label}",
        category="detect",
        anchors=len(anchors),
    ) as span:
        violations = _violations_involving_constraint(
            instance, constraint, anchors, raw_indexes, engine
        )
        span.tag(violations=len(violations))
        tracer.metrics.counter(
            "violations_found", constraint=constraint.label
        ).inc(len(violations))
        return violations


def _violations_involving_constraint(
    instance: DatabaseInstance,
    constraint: DenialConstraint,
    anchors: Sequence[Tuple],
    raw_indexes: Mapping | None,
    engine: str,
) -> tuple[ViolationSet, ...]:
    resolved = resolve_engine(engine)
    if engine == "auto" and raw_indexes is not None:
        resolved = "interpreted"
    if resolved == "pushdown":
        # Anchored detection is Δ-proportional work; a pushdown query
        # would re-scan the whole backend (and incremental mutations
        # sever the binding anyway), so anchored calls always use the
        # in-memory engines - mirroring the raw_indexes rule above.
        resolved = "kernel" if kernel_available() else "interpreted"
    if resolved == "kernel":
        try:
            used_sets = anchored_kernel_witnesses(instance, constraint, anchors)
        except KernelError:
            if engine == "kernel":
                raise
        else:
            return _ordered_violation_sets(used_sets, constraint)
    used_sets = anchored_used_sets(instance, constraint, anchors, raw_indexes)
    return _ordered_violation_sets(used_sets, constraint)


def anchored_used_sets(
    instance: DatabaseInstance,
    constraint: DenialConstraint,
    anchors: Sequence[Tuple],
    raw_indexes: Mapping | None = None,
) -> set[frozenset[Tuple]]:
    """Raw anchored witness sets of one constraint (pre-minimality).

    The interpreted anchored enumeration *without* the
    :func:`_ordered_violation_sets` funnel: the anchored atom is rotated
    to the front, one pass per atom position, and every satisfying
    assignment's used tuple set is collected.  Exposed so sharded
    detection can split ``anchors`` across workers and union the per-shard
    witness sets *before* minimality reduction - the union over any
    partition of the anchors equals the unsharded witness set, which is
    what keeps sharded results byte-identical.
    """
    used_sets: set[frozenset[Tuple]] = set()
    for atom_index in range(len(constraint.relation_atoms)):
        relevant = [
            t
            for t in anchors
            if t.relation.name
            == constraint.relation_atoms[atom_index].relation_name
        ]
        if not relevant:
            continue
        reordered = _anchored_first(constraint, atom_index)
        for assignment in _satisfying_assignments(
            instance,
            reordered,
            restrict={0: relevant},
            raw_indexes=raw_indexes,
        ):
            used_sets.add(frozenset(assignment))
    return used_sets


def find_violations_involving(
    instance: DatabaseInstance,
    constraints: Iterable[DenialConstraint],
    anchors: Iterable[Tuple],
    raw_indexes: Mapping | None = None,
    executor=None,
    engine: str = "auto",
    shards: int | None = None,
) -> tuple[ViolationSet, ...]:
    """Violation sets that involve at least one of the ``anchors``.

    Used for *incremental* repair: when a consistent database receives a
    batch of inserts/updates, every new violation must involve a changed
    tuple (old tuples alone were consistent), so detection anchors one
    atom at a time on the changed set instead of re-joining the whole
    database.  The anchored atom is moved to the front of the join order;
    with ``raw_indexes`` (see :class:`repro.violations.indexes.JoinIndexCache`)
    the remaining atoms are reached by hash lookups and the full instance
    is never scanned.

    ``executor`` fans the per-constraint anchored joins out exactly like
    :func:`find_all_violations`; output order (constraint order, then the
    deterministic within-constraint order) is preserved.  The process
    backend drops ``raw_indexes`` from the shipped payload — pickling a
    whole join-index cache would cost more than rebuilding the throwaway
    indexes — so hand it threads (or run serial) when the cache is the
    point.

    Minimality is computed within the returned candidates, which is exact
    under the stated precondition (the instance minus the anchors is
    consistent); with an inconsistent base instance the result still lists
    violating sets but may include sets whose minimal core avoids the
    anchors.

    ``shards`` additionally splits each constraint's *anchors* into that
    many contiguous chunks, turning the fan-out unit from "one
    constraint" into "one (constraint, anchor shard)" - the knob that
    lets a commit round with few constraints but a large Δ keep every
    worker busy.  The per-shard witness sets are unioned before the
    minimality/ordering funnel, so the output is byte-identical to the
    unsharded path (the union over any partition of the anchors is the
    full witness set).  Sharding applies to the interpreted anchored
    enumeration; an explicit ``engine="kernel"`` request falls back to
    the per-constraint fan-out.
    """
    anchor_list = list(anchors)
    constraints = tuple(constraints)
    per_constraint = None
    if shards is not None and shards > 1 and engine != "kernel":
        per_constraint = _detect_anchored_sharded(
            instance, constraints, anchor_list, raw_indexes, executor, shards
        )
    if per_constraint is None:
        per_constraint = _detect_anchored_parallel(
            instance, constraints, anchor_list, raw_indexes, executor, engine
        )
    if per_constraint is None:
        per_constraint = [
            violations_involving_constraint(
                instance, constraint, anchor_list, raw_indexes, engine
            )
            for constraint in constraints
        ]
    results: list[ViolationSet] = []
    for violations in per_constraint:
        results.extend(violations)
    return tuple(results)


def _detect_anchored_parallel(
    instance: DatabaseInstance,
    constraints: tuple[DenialConstraint, ...],
    anchors: list[Tuple],
    raw_indexes: Mapping | None,
    executor,
    engine: str = "auto",
) -> list[tuple[ViolationSet, ...]] | None:
    """Anchored per-constraint fan-out; ``None`` = stay serial."""
    if executor is None:
        return None
    from repro.runtime.executor import as_executor, balanced_chunks
    from repro.runtime.workers import detect_anchored_batch, detection_cost

    ex = as_executor(executor)
    if not ex.is_parallel or len(constraints) <= 1:
        return None
    tracer = current_tracer()
    trace_remote = tracer.enabled and ex.backend == "process"
    shipped_indexes = raw_indexes if ex.backend == "thread" else None
    costs = [detection_cost(constraint) for constraint in constraints]
    chunks = balanced_chunks(costs, ex.n_chunks(len(constraints)))
    payloads = [
        (
            instance,
            [constraints[i] for i in chunk],
            anchors,
            shipped_indexes,
            engine,
            trace_remote,
        )
        for chunk in chunks
    ]
    results: list[tuple[ViolationSet, ...] | None] = [None] * len(constraints)
    for chunk, outcome in zip(chunks, ex.map(detect_anchored_batch, payloads)):
        if trace_remote:
            batch, remote = outcome
            tracer.attach_remote(remote)
        else:
            batch = outcome
        for index, violations in zip(chunk, batch):
            results[index] = _reintern_constraint(violations, constraints[index])
    return results  # type: ignore[return-value]


def _detect_anchored_sharded(
    instance: DatabaseInstance,
    constraints: tuple[DenialConstraint, ...],
    anchors: list[Tuple],
    raw_indexes: Mapping | None,
    executor,
    shards: int,
) -> list[tuple[ViolationSet, ...]] | None:
    """(constraint x anchor-shard) fan-out; ``None`` = stay serial.

    Anchors are split into ``shards`` contiguous chunks; every
    ``(constraint, chunk)`` pair becomes one work unit, LPT-balanced by
    estimated join cost.  Workers return *raw* witness sets
    (:func:`anchored_used_sets`); the union per constraint then runs
    through :func:`_ordered_violation_sets` here, so minimality and
    ordering are computed over exactly the same witness population as the
    serial path.  Thread workers share ``raw_indexes`` and the live
    instance; process workers receive pickled copies and rebuild
    throwaway indexes (ship the cache to threads when it is the point).
    """
    if executor is None or not anchors:
        return None
    from repro.runtime.executor import as_executor, balanced_chunks
    from repro.runtime.workers import detect_anchored_shard_batch, detection_cost

    ex = as_executor(executor)
    if not ex.is_parallel:
        return None
    n_shards = min(shards, len(anchors))
    if n_shards <= 1 and len(constraints) <= 1:
        return None
    step = -(-len(anchors) // n_shards)  # ceil division, contiguous chunks
    anchor_chunks = [
        anchors[start:start + step] for start in range(0, len(anchors), step)
    ]
    units = [
        (c_index, s_index)
        for c_index in range(len(constraints))
        for s_index in range(len(anchor_chunks))
    ]
    if len(units) <= 1:
        return None
    costs = [
        detection_cost(constraints[c_index]) * len(anchor_chunks[s_index])
        for c_index, s_index in units
    ]
    unit_chunks = balanced_chunks(costs, ex.n_chunks(len(units)))
    shipped_indexes = raw_indexes if ex.backend == "thread" else None
    payloads = [
        (
            instance,
            [
                (constraints[units[u][0]], anchor_chunks[units[u][1]])
                for u in chunk
            ],
            shipped_indexes,
        )
        for chunk in unit_chunks
    ]
    merged: list[set[frozenset[Tuple]]] = [set() for _ in constraints]
    for chunk, batch in zip(unit_chunks, ex.map(detect_anchored_shard_batch, payloads)):
        for u, used_sets in zip(chunk, batch):
            merged[units[u][0]].update(used_sets)
    tracer = current_tracer()
    results: list[tuple[ViolationSet, ...]] = []
    for constraint, used_sets in zip(constraints, merged):
        if tracer.enabled:
            with tracer.span(
                f"detect:{constraint.label}",
                category="detect",
                anchors=len(anchors),
                shards=len(anchor_chunks),
            ) as span:
                violations = _ordered_violation_sets(used_sets, constraint)
                span.tag(violations=len(violations))
                tracer.metrics.counter(
                    "violations_found", constraint=constraint.label
                ).inc(len(violations))
        else:
            violations = _ordered_violation_sets(used_sets, constraint)
        results.append(violations)
    return results


def is_consistent(
    instance: DatabaseInstance,
    constraints: Iterable[DenialConstraint],
    engine: str = "auto",
) -> bool:
    """True when ``D |= IC`` (no satisfying assignment for any denial body).

    The pushdown engine answers this with a ``LIMIT 1`` probe per
    constraint - the backend stops at the first witness row, so a
    consistent backend-resident database is verified without
    materializing anything in Python.
    """
    for constraint in constraints:
        resolved = resolve_engine(engine, instance)
        if resolved == "pushdown":
            try:
                if pushdown_has_witness(instance, constraint):
                    return False
                continue
            except PushdownError:
                if engine == "pushdown":
                    raise
                resolved = "kernel" if kernel_available() else "interpreted"
        if resolved == "kernel":
            try:
                _used, count = kernel_witnesses(instance, constraint)
            except KernelError:
                if engine == "kernel":
                    raise
            else:
                if count:
                    return False
                continue
        for _ in _satisfying_assignments(instance, constraint):
            return False
    return True
