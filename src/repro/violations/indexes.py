"""Persistent join indexes for incremental violation detection.

Anchored detection (:func:`repro.violations.detector.find_violations_involving`)
reaches the unanchored atoms of a denial through hash joins.  Building
those hash indexes from scratch costs a relation scan per commit - which
defeats incrementality - so :class:`JoinIndexCache` keeps them alive
across commits: indexes are built lazily on first use and maintained
under inserts, deletes, and tuple replacements in O(1)-ish per change.

The cache exposes the mapping interface the detector expects:
``cache.get((relation_name, positions))`` returns ``{join key: [tuples]}``
over the *current* instance (unfiltered; the detector applies per-atom
built-in predicates on the matches).
"""

from __future__ import annotations

import threading
from typing import Iterable

from repro.model.instance import DatabaseInstance
from repro.model.tuples import Tuple


class JoinIndexCache:
    """Lazily-built, incrementally-maintained hash indexes per join signature.

    Lazy builds are guarded by a lock so concurrent anchor-shard workers
    (thread backend) can share one warm cache: the first thread to miss a
    signature builds it, later threads reuse the finished index, and a
    half-built index is never observable.  Maintenance (``notify_*``)
    stays single-threaded by contract - it runs between commit rounds,
    never concurrently with detection.
    """

    def __init__(self, instance: DatabaseInstance) -> None:
        self._instance = instance
        self._indexes: dict[
            tuple[str, tuple[int, ...]], dict[tuple, list[Tuple]]
        ] = {}
        self._build_lock = threading.Lock()

    # -- mapping interface used by the detector ---------------------------------

    def get(
        self, key: tuple[str, tuple[int, ...]], default=None
    ) -> dict[tuple, list[Tuple]]:
        """Index for ``(relation name, positions)``; built on first use."""
        index = self._indexes.get(key)
        if index is None:
            with self._build_lock:
                index = self._indexes.get(key)
                if index is not None:
                    return index
                relation_name, positions = key
                if relation_name not in self._instance.schema:
                    return default
                index = {}
                for tup in self._instance.tuples(relation_name):
                    values = tuple(tup.values[p] for p in positions)
                    index.setdefault(values, []).append(tup)
                self._indexes[key] = index
        return index

    def __getitem__(self, key: tuple[str, tuple[int, ...]]):
        result = self.get(key)
        if result is None:
            raise KeyError(key)
        return result

    # -- maintenance ---------------------------------------------------------------

    def rebind(self, instance: DatabaseInstance) -> None:
        """Point the cache at a new instance object *with identical content*.

        The incremental repairer swaps instance objects when applying a
        repair; it notifies the per-tuple changes separately, so the
        built indexes stay valid.
        """
        self._instance = instance

    def notify_insert(self, tup: Tuple) -> None:
        """Maintain built indexes after a tuple insertion."""
        for (relation_name, positions), index in self._indexes.items():
            if relation_name != tup.relation.name:
                continue
            key = tuple(tup.values[p] for p in positions)
            index.setdefault(key, []).append(tup)

    def notify_remove(self, tup: Tuple) -> None:
        """Maintain built indexes after a tuple deletion."""
        for (relation_name, positions), index in self._indexes.items():
            if relation_name != tup.relation.name:
                continue
            key = tuple(tup.values[p] for p in positions)
            bucket = index.get(key)
            if bucket is None:
                continue
            try:
                bucket.remove(tup)
            except ValueError:
                pass
            if not bucket:
                del index[key]

    def notify_replace(self, old: Tuple, new: Tuple) -> None:
        """Maintain built indexes after an in-place tuple update."""
        self.notify_remove(old)
        self.notify_insert(new)

    def notify_replacements(
        self, pairs: Iterable[tuple[Tuple, Tuple]]
    ) -> None:
        """Batch form of :meth:`notify_replace`."""
        for old, new in pairs:
            self.notify_replace(old, new)

    @property
    def built_signatures(self) -> tuple[tuple[str, tuple[int, ...]], ...]:
        """Which indexes exist (diagnostics/tests)."""
        return tuple(self._indexes)

    def check_consistent(self) -> None:
        """Assert every built index matches the bound instance (tests)."""
        for (relation_name, positions), index in self._indexes.items():
            expected: dict[tuple, list[Tuple]] = {}
            for tup in self._instance.tuples(relation_name):
                key = tuple(tup.values[p] for p in positions)
                expected.setdefault(key, []).append(tup)
            actual = {k: sorted(v, key=lambda t: t.ref.sort_key) for k, v in index.items()}
            wanted = {k: sorted(v, key=lambda t: t.ref.sort_key) for k, v in expected.items()}
            if actual != wanted:
                raise AssertionError(
                    f"index {(relation_name, positions)} diverged from instance"
                )
