"""Violation-set detection and inconsistency measures (Definition 2.4)."""

from repro.violations.detector import (
    ViolationSet,
    find_all_violations,
    find_violations,
    find_violations_involving,
    is_consistent,
    violations_of_tuple,
)
from repro.violations.degree import (
    InconsistencyProfile,
    degree_of_database,
    degree_of_tuple,
    inconsistency_profile,
)
from repro.violations.kernels import ENGINES, kernel_witnesses, resolve_engine
from repro.violations.pushdown import (
    bind_backend,
    bound_backend,
    pushdown_ready,
    pushdown_requirements,
    unbind_backend,
)

__all__ = [
    "ENGINES",
    "bind_backend",
    "bound_backend",
    "kernel_witnesses",
    "pushdown_ready",
    "pushdown_requirements",
    "resolve_engine",
    "unbind_backend",
    "ViolationSet",
    "find_all_violations",
    "find_violations",
    "find_violations_involving",
    "is_consistent",
    "violations_of_tuple",
    "InconsistencyProfile",
    "degree_of_database",
    "degree_of_tuple",
    "inconsistency_profile",
]
