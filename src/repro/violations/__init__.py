"""Violation-set detection and inconsistency measures (Definition 2.4)."""

from repro.violations.detector import (
    ViolationSet,
    find_all_violations,
    find_violations,
    find_violations_involving,
    is_consistent,
    violations_of_tuple,
)
from repro.violations.degree import (
    InconsistencyProfile,
    degree_of_database,
    degree_of_tuple,
    inconsistency_profile,
)
from repro.violations.kernels import ENGINES, kernel_witnesses, resolve_engine

__all__ = [
    "ENGINES",
    "kernel_witnesses",
    "resolve_engine",
    "ViolationSet",
    "find_all_violations",
    "find_violations",
    "find_violations_involving",
    "is_consistent",
    "violations_of_tuple",
    "InconsistencyProfile",
    "degree_of_database",
    "degree_of_tuple",
    "inconsistency_profile",
]
