"""Columnar detection kernels: vectorized violation-witness retrieval.

The interpreted detector walks a denial's join tree tuple-by-tuple through
Python closures; these kernels execute the *compiled* plan
(:func:`repro.constraints.plan.compile_plan`) over the columnar snapshots
of :mod:`repro.model.columnar` instead:

* local built-ins and intra-atom equalities become **vectorized masks**
  over int64 (or object) column arrays;
* equality joins run as **array sort joins** (argsort + searchsorted +
  range expansion) over factorized key codes;
* cross-atom order comparisons ``x θ y + c`` use **sorted interval
  lookups**: the new atom's column is sorted once and every bound value
  selects a contiguous prefix/suffix of it - no candidate-list scan;
* atoms are joined in the **selectivity-driven order** of
  :func:`repro.constraints.plan.order_atoms`, measured on the actual
  post-filter candidate counts.

The kernels return exactly the witness sets the interpreted enumeration
yields (same assignments, same counts), so downstream minimality
reduction and ordering produce byte-identical ``I(D, ic)``.

Data shapes without a vectorized form (an order comparison over a column
holding non-integers, an offset over non-numeric data) raise
:class:`~repro.exceptions.KernelError`; the detector's ``auto`` engine
catches it and falls back to the interpreted path per constraint.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.constraints.atoms import Comparator
from repro.constraints.denial import DenialConstraint
from repro.constraints.plan import (
    ConstraintPlan,
    ResolvedComparison,
    compile_plan,
    order_atoms,
)
from repro.exceptions import ConfigError, ConstraintError, KernelError
from repro.model.columnar import (
    ColumnarRelation,
    kernel_available,
    require_numpy,
    store_for,
)
from repro.model.instance import DatabaseInstance
from repro.model.tuples import Tuple

ENGINES = ("auto", "kernel", "interpreted", "pushdown")

#: Largest single-key code the mixed-radix combiner lets through before
#: re-factorizing (keeps multi-column join keys inside int64).
_RADIX_LIMIT = 1 << 31


def resolve_engine(engine: str, instance: DatabaseInstance | None = None) -> str:
    """Normalize an engine request to a concrete engine name.

    An unknown name raises :class:`~repro.exceptions.ConfigError` listing
    the valid choices.  ``auto`` resolves to ``"pushdown"`` when an
    ``instance`` is supplied and is backend-resident (loaded from a SQL
    backend and unmodified since, see
    :mod:`repro.violations.pushdown`); otherwise to the kernel engine
    exactly when NumPy is importable.  An explicit ``kernel`` request
    without NumPy raises :class:`KernelError` (NumPy is the optional
    ``repro[kernel]`` extra, never a hard dependency); an explicit
    ``pushdown`` request resolves statically here - the binding check
    happens at execution time, where a missing backend raises
    :class:`~repro.exceptions.PushdownError`.
    """
    if engine not in ENGINES:
        raise ConfigError(
            f"unknown detection engine {engine!r}; "
            f"choose from {'|'.join(ENGINES)}"
        )
    if engine == "auto":
        if instance is not None:
            from repro.violations.pushdown import pushdown_ready

            if pushdown_ready(instance):
                return "pushdown"
        return "kernel" if kernel_available() else "interpreted"
    if engine == "kernel" and not kernel_available():
        require_numpy()  # raises KernelError with the install hint
    return engine


def kernel_requirements(
    constraint: DenialConstraint,
) -> frozenset[tuple[int, int]]:
    """``(atom_index, position)`` slots that must hold all-integer columns.

    The static form of this module's :class:`KernelError` raise sites:
    the compiled plan executes unconditionally on the kernel engine
    exactly when every returned slot's column is all-integer at runtime.
    Slots are required by

    * **order local filters** (``x θ c`` with an order comparator) - the
      vectorized mask needs a numeric column (``_candidate_rows``);
    * **order variable comparisons and offset forms** (``x θ y + c``
      with an order comparator or ``c ≠ 0``) - interval joins, offset
      shifts and order residuals need int64 on both sides (``_shift``,
      ``_interval_join``, ``_compare_arrays``); every slot of both
      variables is required because the side gathered first depends on
      the runtime join order.

    Equality/``≠`` filters, intra-atom equalities and equality joins run
    on object columns and impose nothing.  Used by
    :mod:`repro.lint.compilability` to classify constraints statically.
    """
    plan = compile_plan(constraint)
    required: set[tuple[int, int]] = set()
    for atom_plan in plan.atoms:
        for filt in atom_plan.filters:
            if filt.comparator not in (Comparator.EQ, Comparator.NE):
                required.add((atom_plan.atom_index, filt.position))
    for comparison in plan.comparisons:
        if comparison.is_order or comparison.offset != 0:
            for variable in (comparison.left, comparison.right):
                required.update(plan.var_slots[variable])
    return frozenset(required)


# ---------------------------------------------------------------------------
# candidate masks


def _compare_const(np, column, comparator: Comparator, constant: int):
    if comparator is Comparator.EQ:
        return column == constant
    if comparator is Comparator.NE:
        return column != constant
    if comparator is Comparator.LT:
        return column < constant
    if comparator is Comparator.GT:
        return column > constant
    if comparator is Comparator.LE:
        return column <= constant
    return column >= constant


def _candidate_rows(snapshot: ColumnarRelation, atom_plan):
    """Row indices of one atom's relation passing its local conditions."""
    np = require_numpy()
    n = len(snapshot)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    mask = np.ones(n, dtype=bool)
    for filt in atom_plan.filters:
        numeric = snapshot.numeric(filt.position)
        if numeric is not None:
            mask &= _compare_const(np, numeric, filt.comparator, filt.constant)
        elif filt.comparator in (Comparator.EQ, Comparator.NE):
            column = snapshot.column(filt.position)
            mask &= _compare_const(
                np, column, filt.comparator, filt.constant
            ).astype(bool)
        else:
            raise KernelError(
                f"order built-in at position {filt.position} of "
                f"{snapshot.relation_name!r} needs an all-integer column"
            )
    for positions in atom_plan.intra_equalities:
        base = positions[0]
        base_numeric = snapshot.numeric(base)
        for position in positions[1:]:
            other_numeric = snapshot.numeric(position)
            if base_numeric is not None and other_numeric is not None:
                mask &= base_numeric == other_numeric
            else:
                mask &= (
                    snapshot.column(base) == snapshot.column(position)
                ).astype(bool)
    return np.nonzero(mask)[0].astype(np.int64)


# ---------------------------------------------------------------------------
# join machinery


def _shift(np, values, offset: int):
    """``values + offset`` on the int64 fast path, KernelError otherwise."""
    if offset == 0:
        return values
    if values.dtype == np.int64:
        return values + np.int64(offset)
    raise KernelError("comparison offsets need all-integer columns")


def _encode_pair(np, left, right):
    """Factorize one (left, right) value-array pair into joinable codes.

    Both int64: the values themselves are the codes.  Otherwise a shared
    dict assigns dense codes with Python ``==``/``hash`` semantics (so
    ``1 == 1.0 == True`` exactly as the interpreted join sees it);
    right-side values unseen on the left get ``-1``, which matches no
    left code.
    """
    if left.dtype == np.int64 and right.dtype == np.int64:
        return left, right
    codes: dict = {}
    left_codes = np.empty(len(left), dtype=np.int64)
    for i, value in enumerate(left.tolist()):
        left_codes[i] = codes.setdefault(value, len(codes))
    right_codes = np.empty(len(right), dtype=np.int64)
    for i, value in enumerate(right.tolist()):
        right_codes[i] = codes.get(value, -1)
    return left_codes, right_codes


def _compact(np, left, right):
    """Re-factorize a code pair into dense non-negative codes."""
    merged = np.concatenate([left, right])
    _, inverse = np.unique(merged, return_inverse=True)
    inverse = inverse.astype(np.int64)
    return inverse[: len(left)], inverse[len(left):]


def _combine_keys(np, pairs):
    """Collapse multi-column join keys into one int64 key per side."""
    left, right = _encode_pair(np, *pairs[0])
    for raw_left, raw_right in pairs[1:]:
        next_left, next_right = _encode_pair(np, raw_left, raw_right)
        left, right = _compact(np, left, right)
        next_left, next_right = _compact(np, next_left, next_right)
        radix = np.int64(
            max(
                int(next_left.max()) if len(next_left) else 0,
                int(next_right.max()) if len(next_right) else 0,
            )
            + 2
        )
        high = max(
            int(left.max()) if len(left) else 0,
            int(right.max()) if len(right) else 0,
        )
        if high >= _RADIX_LIMIT:  # pragma: no cover - needs ~2^31 keys
            raise KernelError("join key cardinality exceeds the kernel radix")
        left = left * radix + next_left
        right = right * radix + next_right
    return left, right


def _expand_ranges(np, lo, counts, order):
    """Expand per-left-row match ranges of a sorted right side into pairs."""
    total = int(counts.sum())
    left_idx = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    if total == 0:
        return left_idx, np.empty(0, dtype=np.int64)
    prefix = np.zeros(len(counts), dtype=np.int64)
    np.cumsum(counts[:-1], out=prefix[1:])
    within = np.arange(total, dtype=np.int64) - np.repeat(prefix, counts)
    right_pos = order[np.repeat(lo, counts) + within]
    return left_idx, right_pos


def _sort_join(np, left_key, right_key):
    """All (left, right) index pairs with equal keys (array sort join)."""
    order = np.argsort(right_key, kind="stable")
    sorted_right = right_key[order]
    lo = np.searchsorted(sorted_right, left_key, side="left")
    hi = np.searchsorted(sorted_right, left_key, side="right")
    return _expand_ranges(np, lo, hi - lo, order)


def _interval_join(np, thresholds, new_values, comparator, bound_on_left):
    """Sorted-interval join for one order comparison.

    ``thresholds`` are the bound side's values with the offset already
    folded in; ``new_values`` is the new atom's (int64) column over its
    candidate rows.  Each bound row matches a contiguous prefix or suffix
    of the sorted new column - the "sorted interval index" replacing the
    interpreted candidate-list scan.
    """
    order = np.argsort(new_values, kind="stable")
    sorted_new = new_values[order]
    n = len(sorted_new)
    if bound_on_left:
        # B θ N: rewrite onto N.
        suffix = comparator in (Comparator.LT, Comparator.LE)
        side = (
            "right" if comparator in (Comparator.LT, Comparator.GE) else "left"
        )
    else:
        # N θ B: the new side carries the comparator directly.
        suffix = comparator in (Comparator.GT, Comparator.GE)
        side = (
            "right" if comparator in (Comparator.GT, Comparator.LE) else "left"
        )
    split = np.searchsorted(sorted_new, thresholds, side=side)
    if suffix:
        lo, counts = split, n - split
    else:
        lo, counts = np.zeros(len(split), dtype=np.int64), split
    return _expand_ranges(np, lo, counts, order)


def _compare_arrays(np, left, comparator: Comparator, right, offset: int):
    """Vectorized ``left θ (right + offset)`` over two gathered sides."""
    right = _shift(np, right, offset)
    if left.dtype != np.int64 or right.dtype != np.int64:
        if comparator not in (Comparator.EQ, Comparator.NE):
            raise KernelError(
                "order comparison needs all-integer columns on both sides"
            )
        if left.dtype != right.dtype:
            left = left.astype(object)
            right = right.astype(object)
    if comparator is Comparator.EQ:
        return (left == right).astype(bool)
    if comparator is Comparator.NE:
        return (left != right).astype(bool)
    if comparator is Comparator.LT:
        return left < right
    if comparator is Comparator.GT:
        return left > right
    if comparator is Comparator.LE:
        return left <= right
    return left >= right


# ---------------------------------------------------------------------------
# plan execution


class _JoinState:
    """Aligned per-atom row arrays of the partial join results."""

    def __init__(self, np, plan: ConstraintPlan, snapshots) -> None:
        self._np = np
        self._plan = plan
        self._snapshots = snapshots
        self.rows: dict[int, object] = {}
        self.join_order: list[int] = []

    def start(self, atom_index: int, candidate_rows) -> None:
        self.rows[atom_index] = candidate_rows
        self.join_order.append(atom_index)

    @property
    def size(self) -> int:
        return len(self.rows[self.join_order[0]])

    def bound_slot(self, variable: str) -> tuple[int, int]:
        """The earliest-joined ``(atom, position)`` slot of a bound variable."""
        slots = self._plan.var_slots[variable]
        for atom_index in self.join_order:
            for slot_atom, position in slots:
                if slot_atom == atom_index:
                    return slot_atom, position
        raise KeyError(variable)

    def values(self, variable: str):
        """Value array of a bound variable, aligned with the result rows."""
        atom_index, position = self.bound_slot(variable)
        snapshot = self._snapshots[atom_index]
        numeric = snapshot.numeric(position)
        column = numeric if numeric is not None else snapshot.column(position)
        return column[self.rows[atom_index]]

    def is_bound(self, variable: str) -> bool:
        bound = set(self.join_order)
        return any(a in bound for a, _ in self._plan.var_slots[variable])

    def select(self, keep) -> None:
        """Apply a boolean mask or index array to every aligned column."""
        for atom_index in self.join_order:
            self.rows[atom_index] = self.rows[atom_index][keep]

    def extend(self, atom_index: int, left_idx, right_rows) -> None:
        """Append one joined atom: reindex the result and add its rows."""
        for bound_atom in self.join_order:
            self.rows[bound_atom] = self.rows[bound_atom][left_idx]
        self.rows[atom_index] = right_rows
        self.join_order.append(atom_index)


def _new_atom_values(snapshot, position, rows, np):
    numeric = snapshot.numeric(position)
    column = numeric if numeric is not None else snapshot.column(position)
    return column[rows]


def _gather_side(state: _JoinState, snapshot, plan, variable, atom_index, rows, np):
    """Values of one comparison side: bound result column or new-atom column."""
    if state.is_bound(variable):
        return state.values(variable), True
    position = next(p for a, p in plan.var_slots[variable] if a == atom_index)
    return _new_atom_values(snapshot, position, rows, np), False


def _apply_residuals(
    np,
    state: _JoinState,
    plan: ConstraintPlan,
    snapshot,
    atom_index: int,
    left_idx,
    right_rows,
    residuals: Sequence[ResolvedComparison],
):
    """Filter freshly joined pairs by the remaining ready comparisons."""
    if len(left_idx) == 0 or not residuals:
        return left_idx, right_rows
    mask = np.ones(len(left_idx), dtype=bool)
    for comparison in residuals:
        left_values, left_bound = _gather_side(
            state, snapshot, plan, comparison.left, atom_index, right_rows, np
        )
        if left_bound:
            left_values = left_values[left_idx]
        right_values, right_bound = _gather_side(
            state, snapshot, plan, comparison.right, atom_index, right_rows, np
        )
        if right_bound:
            right_values = right_values[left_idx]
        mask &= _compare_arrays(
            np, left_values, comparison.comparator, right_values, comparison.offset
        )
    return left_idx[mask], right_rows[mask]


def kernel_witnesses(
    instance: DatabaseInstance,
    constraint: DenialConstraint,
    restrict: "dict[int, list[Tuple]] | None" = None,
    forced_first: int | None = None,
) -> tuple[set[frozenset[Tuple]], int]:
    """All violation witnesses of one denial, columnar execution.

    Returns ``(used_sets, n_assignments)``: the distinct used tuple sets
    and the total number of satisfying assignments (the quantity the
    ``max_violations`` safety valve counts).  ``restrict`` overrides the
    candidate pool of specific atom positions exactly like the
    interpreted ``_satisfying_assignments``; ``forced_first`` pins the
    join order's first atom (anchored detection).
    """
    np = require_numpy()
    constraint.validate(instance.schema)
    plan = compile_plan(constraint)
    store = store_for(instance)
    restrict = restrict or {}

    snapshots: list[ColumnarRelation] = []
    for atom_plan in plan.atoms:
        pool = restrict.get(atom_plan.atom_index)
        if pool is None:
            snapshots.append(store.relation(instance, atom_plan.relation_name))
        else:
            snapshots.append(
                ColumnarRelation(
                    atom_plan.relation_name,
                    tuple(
                        t for t in pool
                        if t.relation.name == atom_plan.relation_name
                    ),
                )
            )

    candidates = [
        _candidate_rows(snapshot, atom_plan)
        for snapshot, atom_plan in zip(snapshots, plan.atoms)
    ]
    if any(len(c) == 0 for c in candidates):
        return set(), 0

    order = order_atoms(plan, [len(c) for c in candidates], forced_first)
    state = _JoinState(np, plan, snapshots)

    first = order[0]
    state.start(first, candidates[first])
    ready = plan.comparisons_ready_at(set(), first)
    if ready:
        mask = np.ones(state.size, dtype=bool)
        for comparison in ready:
            mask &= _compare_arrays(
                np,
                state.values(comparison.left),
                comparison.comparator,
                state.values(comparison.right),
                comparison.offset,
            )
        state.select(mask)

    for atom_index in order[1:]:
        if state.size == 0:
            return set(), 0
        bound = set(state.join_order)
        snapshot = snapshots[atom_index]
        cand = candidates[atom_index]
        ready = list(plan.comparisons_ready_at(bound, atom_index))

        key_pairs = []
        for variable, _slot, position in plan.join_variables_with(
            bound, atom_index
        ):
            key_pairs.append(
                (
                    state.values(variable),
                    _new_atom_values(snapshot, position, cand, np),
                )
            )
        for comparison in list(ready):
            if not comparison.is_equality:
                continue
            left_bound = state.is_bound(comparison.left)
            if left_bound == state.is_bound(comparison.right):
                # Both variables live in the new atom: a residual mask,
                # not a join key.
                continue
            if left_bound:
                left_values = state.values(comparison.left)
                position = next(
                    p for a, p in plan.var_slots[comparison.right]
                    if a == atom_index
                )
                right_values = _shift(
                    np,
                    _new_atom_values(snapshot, position, cand, np),
                    comparison.offset,
                )
            else:
                left_values = _shift(
                    np, state.values(comparison.right), comparison.offset
                )
                position = next(
                    p for a, p in plan.var_slots[comparison.left]
                    if a == atom_index
                )
                right_values = _new_atom_values(snapshot, position, cand, np)
            key_pairs.append((left_values, right_values))
            ready.remove(comparison)

        if key_pairs:
            left_key, right_key = _combine_keys(np, key_pairs)
            left_idx, right_pos = _sort_join(np, left_key, right_key)
        else:
            driver = next(
                (
                    c
                    for c in ready
                    if c.is_order
                    and state.is_bound(c.left) != state.is_bound(c.right)
                ),
                None,
            )
            if driver is not None:
                ready.remove(driver)
                bound_on_left = state.is_bound(driver.left)
                if bound_on_left:
                    bound_var, new_var = driver.left, driver.right
                else:
                    bound_var, new_var = driver.right, driver.left
                position = next(
                    p for a, p in plan.var_slots[new_var] if a == atom_index
                )
                new_values = _new_atom_values(snapshot, position, cand, np)
                bound_values = state.values(bound_var)
                if (
                    new_values.dtype != np.int64
                    or bound_values.dtype != np.int64
                ):
                    raise KernelError(
                        "order comparison needs all-integer columns on "
                        "both sides"
                    )
                if bound_on_left:
                    # B θ (N + c)  ⇔  B - c θ N
                    thresholds = _shift(np, bound_values, -driver.offset)
                else:
                    # N θ (B + c): threshold is B + c directly.
                    thresholds = _shift(np, bound_values, driver.offset)
                left_idx, right_pos = _interval_join(
                    np, thresholds, new_values, driver.comparator, bound_on_left
                )
            else:
                left_idx = np.repeat(
                    np.arange(state.size, dtype=np.int64), len(cand)
                )
                right_pos = np.tile(
                    np.arange(len(cand), dtype=np.int64), state.size
                )
        right_rows = cand[right_pos]
        left_idx, right_rows = _apply_residuals(
            np, state, plan, snapshot, atom_index, left_idx, right_rows, ready
        )
        state.extend(atom_index, left_idx, right_rows)

    n_assignments = state.size
    # Gather per-atom tuple columns first, then build the witness sets with
    # map/zip so the per-assignment work stays in C.
    tuple_columns = []
    for i in range(plan.n_atoms):
        atom_tuples = snapshots[i].tuples
        tuple_columns.append([atom_tuples[row] for row in state.rows[i].tolist()])
    used_sets: set[frozenset[Tuple]] = set(map(frozenset, zip(*tuple_columns)))
    return used_sets, n_assignments


def anchored_kernel_witnesses(
    instance: DatabaseInstance,
    constraint: DenialConstraint,
    anchors: Iterable[Tuple],
) -> set[frozenset[Tuple]]:
    """Witnesses involving at least one anchor tuple (kernel execution).

    Mirrors the interpreted anchored loop: one kernel run per atom with
    that atom's candidates restricted to the anchors of its relation and
    the join order forced to start there; the union of witnesses is what
    :func:`~repro.violations.detector.find_violations_involving` reduces
    to minimal sets.
    """
    anchor_list = list(anchors)
    used_sets: set[frozenset[Tuple]] = set()
    for atom_index, atom in enumerate(constraint.relation_atoms):
        relevant = [
            t for t in anchor_list if t.relation.name == atom.relation_name
        ]
        if not relevant:
            continue
        witnesses, _count = kernel_witnesses(
            instance,
            constraint,
            restrict={atom_index: relevant},
            forced_first=atom_index,
        )
        used_sets |= witnesses
    return used_sets
