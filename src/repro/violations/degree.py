"""Degree of inconsistency (Definition 2.4) and inconsistency profiling.

``Deg(t, IC)`` counts the violation sets containing a tuple; ``Deg(D, IC)``
is the maximum over all tuples.  The paper's complexity results hinge on
this quantity: with ``Deg(D, IC)`` bounded by a constant the greedy
algorithm runs in O(n²) and the modified greedy in O(n log n)
(Propositions 3.5 and 3.7), which the census-style workloads exhibit.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.constraints.denial import DenialConstraint
from repro.model.instance import DatabaseInstance
from repro.model.tuples import Tuple, TupleRef
from repro.violations.detector import ViolationSet, find_all_violations


def degree_of_tuple(violations: Iterable[ViolationSet], tup: Tuple) -> int:
    """``Deg(t, IC)``: number of violation sets containing ``t``."""
    return sum(1 for v in violations if tup in v)


def degree_of_database(violations: Iterable[ViolationSet]) -> int:
    """``Deg(D, IC)``: the maximum tuple degree (0 for a consistent D)."""
    counts: Counter[Tuple] = Counter()
    for violation in violations:
        counts.update(violation.tuples)
    if not counts:
        return 0
    return max(counts.values())


@dataclass(frozen=True)
class InconsistencyProfile:
    """Summary statistics of how inconsistent an instance is.

    ``inconsistent_ratio`` is the paper's "percentage of tuples involved in
    inconsistencies" knob (the experiments use ~30%).
    """

    total_tuples: int
    violation_count: int
    per_constraint: Mapping[str, int]
    inconsistent_tuples: int
    max_degree: int
    degree_histogram: Mapping[int, int] = field(default_factory=dict)

    @property
    def inconsistent_ratio(self) -> float:
        """Fraction of tuples participating in at least one violation."""
        if self.total_tuples == 0:
            return 0.0
        return self.inconsistent_tuples / self.total_tuples

    @property
    def is_consistent(self) -> bool:
        """True when no violation set exists."""
        return self.violation_count == 0

    def __str__(self) -> str:
        per_ic = ", ".join(f"{k}:{v}" for k, v in self.per_constraint.items())
        return (
            f"InconsistencyProfile(tuples={self.total_tuples}, "
            f"violations={self.violation_count} [{per_ic}], "
            f"inconsistent={self.inconsistent_tuples} "
            f"({self.inconsistent_ratio:.1%}), max_degree={self.max_degree})"
        )


def inconsistency_profile(
    instance: DatabaseInstance,
    constraints: Iterable[DenialConstraint],
    violations: Iterable[ViolationSet] | None = None,
) -> InconsistencyProfile:
    """Profile the inconsistency of ``instance`` wrt ``constraints``.

    Pass precomputed ``violations`` to avoid re-running detection.
    """
    constraints = list(constraints)
    if violations is None:
        violations = find_all_violations(instance, constraints)
    violations = list(violations)

    per_constraint: Counter[str] = Counter()
    tuple_degree: Counter[TupleRef] = Counter()
    for violation in violations:
        per_constraint[violation.constraint.label] += 1
        for tup in violation.tuples:
            tuple_degree[tup.ref] += 1

    histogram: Counter[int] = Counter(tuple_degree.values())
    return InconsistencyProfile(
        total_tuples=len(instance),
        violation_count=len(violations),
        per_constraint=dict(per_constraint),
        inconsistent_tuples=len(tuple_degree),
        max_degree=max(tuple_degree.values(), default=0),
        degree_histogram=dict(sorted(histogram.items())),
    )
