"""Turn a set cover into a repaired database (Definition 3.2).

Given a cover ``C`` of ``(U, S, w)^{(D,IC)}``:

* ``C*`` merges the fixes per tuple: when a tuple has several selected
  mono-local fixes on *different* attributes they combine into a single
  local fix ``t*`` applying all the updates (Definition 3.2(a));
* when a non-optimal cover holds two fixes for the same tuple *and* the
  same attribute (possible for fixes induced by different constraints),
  the higher-weight fix subsumes the other - locality gives every flexible
  attribute one fix direction, so the farther value satisfies everything
  the nearer one did (Section 3, remark after Algorithm 1);
* ``D(C)`` replaces each affected tuple by its combined fix
  (Definition 3.2(b)).
"""

from __future__ import annotations

from typing import Iterable

from repro.fixes.distance import tuple_delta
from repro.fixes.mlf import FixCandidate
from repro.model.instance import DatabaseInstance
from repro.model.tuples import TupleRef
from repro.repair.builder import RepairProblem
from repro.repair.result import CellChange
from repro.setcover.result import Cover


def merge_cover_fixes(
    problem: RepairProblem, selected: Iterable[int]
) -> dict[TupleRef, dict[str, CellChange]]:
    """Compute ``C*``: per-tuple, per-attribute winning updates.

    Returns ``{tuple ref: {attribute: change}}`` after subsumption.
    """
    merged: dict[TupleRef, dict[str, CellChange]] = {}
    for set_id in selected:
        candidate: FixCandidate = problem.candidate(set_id)
        per_attribute = merged.setdefault(candidate.ref, {})
        change = CellChange(
            ref=candidate.ref,
            attribute=candidate.attribute,
            old_value=candidate.old[candidate.attribute],
            new_value=candidate.new_value,
            weight=candidate.weight,
        )
        incumbent = per_attribute.get(candidate.attribute)
        if incumbent is None or _subsumes(change, incumbent):
            per_attribute[candidate.attribute] = change
    return merged


def _subsumes(challenger: CellChange, incumbent: CellChange) -> bool:
    """True when ``challenger`` replaces ``incumbent`` (same tuple+attribute).

    The farther move (higher weight) subsumes the nearer one; ties break on
    the new value to stay deterministic.
    """
    if challenger.weight != incumbent.weight:
        return challenger.weight > incumbent.weight
    return challenger.new_value > incumbent.new_value


def apply_cover(
    problem: RepairProblem, cover: Cover, in_place: bool = False
) -> tuple[DatabaseInstance, tuple[CellChange, ...], float]:
    """Build ``D(C)`` from a cover.

    Returns ``(repaired instance, applied changes, Δ(D, D(C)))``.  The
    distance is recomputed from the actually-applied combined fixes, so it
    accounts for subsumption (it can be below the cover weight).

    ``in_place=True`` mutates ``problem.instance`` directly instead of
    copying it first - the streaming commit path owns a private instance
    and pays O(|D|) per round for the copy otherwise.  The applied
    replacements are identical either way, so the resulting content is
    byte-equal to the copying path.
    """
    merged = merge_cover_fixes(problem, cover.selected)
    repaired = problem.instance if in_place else problem.instance.copy()
    changes: list[CellChange] = []
    total_distance = 0.0
    for ref in sorted(merged):
        per_attribute = merged[ref]
        old = repaired.resolve(ref)
        updates = {
            change.attribute: change.new_value
            for change in per_attribute.values()
        }
        new = old.replace(updates)
        repaired.replace_tuple(new)
        total_distance += tuple_delta(old, new, problem.metric)
        for attribute in sorted(per_attribute):
            changes.append(per_attribute[attribute])
    return repaired, tuple(changes), total_distance
