"""Result types for attribute-update repairs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.model.instance import DatabaseInstance
from repro.model.tuples import TupleRef


@dataclass(frozen=True)
class CellChange:
    """One attribute update applied by a repair."""

    ref: TupleRef
    attribute: str
    old_value: int
    new_value: int
    weight: float

    def __str__(self) -> str:
        keys = ", ".join(str(v) for v in self.ref.key_values)
        return (
            f"{self.ref.relation_name}[{keys}].{self.attribute}: "
            f"{self.old_value} -> {self.new_value}"
        )


@dataclass(frozen=True)
class RepairResult:
    """Outcome of a repair computation.

    Attributes
    ----------
    repaired:
        The repaired database instance ``D(C)`` (Definition 3.2).
        ``None`` for snapshot-free streaming commits
        (``IncrementalRepairer.commit(snapshot=False)``), where the
        caller reads the live working instance instead of paying an
        O(|D|) copy per round.
    algorithm:
        Name of the set-cover solver used.
    cover_weight:
        Weight of the approximate cover - the solver's objective value.
    distance:
        The actual ``Δ(D, D(C))``; at most ``cover_weight`` (merging fixes
        of one tuple/attribute via subsumption can only lose weight).
    changes:
        Cell-level updates, deterministic order.
    violations_before:
        ``|I(D, IC)|`` of the input.
    verified:
        True when the engine re-checked ``D(C) |= IC``.
    metric:
        Name of the distance metric used.
    solver_iterations / solver_stats:
        Bookkeeping from the set-cover solver.
    elapsed_seconds:
        Wall-clock split per phase: ``detect``, ``build``, ``solve``,
        ``apply`` (the paper's Figure 3 reports the ``solve`` component).
        On a traced run these values are read off the stage spans, so
        the dict and the trace always agree.
    trace:
        The :class:`~repro.obs.spans.Trace` of a ``trace=True`` run
        (``None`` otherwise, and ``None`` when the caller supplied its
        own :class:`~repro.obs.Tracer` - the caller finishes that one).
    """

    repaired: DatabaseInstance | None
    algorithm: str
    cover_weight: float
    distance: float
    changes: tuple[CellChange, ...]
    violations_before: int
    verified: bool
    metric: str
    solver_iterations: int = 0
    solver_stats: Mapping[str, Any] = field(default_factory=dict)
    elapsed_seconds: Mapping[str, float] = field(default_factory=dict)
    trace: Any = None

    @property
    def tuples_changed(self) -> int:
        """Number of distinct tuples the repair updated."""
        return len({change.ref for change in self.changes})

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"algorithm        : {self.algorithm}",
            f"metric           : {self.metric}",
            f"violations before: {self.violations_before}",
            f"cover weight     : {self.cover_weight:g}",
            f"distance Δ(D,D') : {self.distance:g}",
            f"cells changed    : {len(self.changes)}",
            f"tuples changed   : {self.tuples_changed}",
            f"verified D'|=IC  : {self.verified}",
        ]
        if self.elapsed_seconds:
            timing = ", ".join(
                f"{phase}={seconds * 1000:.1f}ms"
                for phase, seconds in self.elapsed_seconds.items()
            )
            lines.append(f"timing           : {timing}")
        return "\n".join(lines)
