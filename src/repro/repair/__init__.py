"""Attribute-update repairs: the Definition 3.1 reduction and the engine.

This package ties the substrates together: it maps a database plus a set of
local denial constraints to an MWSCP instance (:mod:`repro.repair.builder`),
turns an (approximate) cover back into a repaired database
(:mod:`repro.repair.apply`), and exposes the one-call facade
:func:`repro.repair.engine.repair_database`.
"""

from repro.repair.builder import RepairProblem, build_repair_problem
from repro.repair.apply import apply_cover
from repro.repair.engine import repair_database
from repro.repair.incremental import IncrementalRepairer
from repro.repair.result import CellChange, RepairResult
from repro.repair.streaming import StreamingRepairer, StreamStats

__all__ = [
    "RepairProblem",
    "build_repair_problem",
    "apply_cover",
    "repair_database",
    "IncrementalRepairer",
    "StreamingRepairer",
    "StreamStats",
    "CellChange",
    "RepairResult",
]
