"""JSON serialization of repair outcomes (audit trails).

Production cleaning pipelines keep an audit record of every automated
change.  :func:`result_to_dict` / :func:`result_to_json` render a
:class:`RepairResult` as plain data (no instance payload - the changes
*are* the record); :func:`changes_from_dict` parses the change list back,
e.g. to re-apply an audited repair to another copy of the data.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.exceptions import ReproError
from repro.model.instance import DatabaseInstance
from repro.model.tuples import TupleRef
from repro.repair.result import CellChange, RepairResult


def change_to_dict(change: CellChange) -> dict[str, Any]:
    """One change as plain data."""
    return {
        "relation": change.ref.relation_name,
        "key": list(change.ref.key_values),
        "attribute": change.attribute,
        "old_value": change.old_value,
        "new_value": change.new_value,
        "weight": change.weight,
    }


def result_to_dict(result: RepairResult) -> dict[str, Any]:
    """A JSON-ready summary of a repair (changes, stats, no data payload)."""
    return {
        "algorithm": result.algorithm,
        "metric": result.metric,
        "violations_before": result.violations_before,
        "cover_weight": result.cover_weight,
        "distance": result.distance,
        "verified": result.verified,
        "tuples_changed": result.tuples_changed,
        "solver_iterations": result.solver_iterations,
        "solver_stats": dict(result.solver_stats),
        "elapsed_seconds": dict(result.elapsed_seconds),
        "changes": [change_to_dict(c) for c in result.changes],
    }


def result_to_json(result: RepairResult, indent: int | None = 2) -> str:
    """Serialize a repair result to a JSON string."""
    return json.dumps(result_to_dict(result), indent=indent, sort_keys=True)


def changes_from_dict(data: Mapping[str, Any]) -> tuple[CellChange, ...]:
    """Parse the ``changes`` list of a serialized result."""
    if "changes" not in data or not isinstance(data["changes"], list):
        raise ReproError("serialized result has no 'changes' list")
    changes = []
    for entry in data["changes"]:
        try:
            changes.append(
                CellChange(
                    ref=TupleRef(entry["relation"], tuple(entry["key"])),
                    attribute=entry["attribute"],
                    old_value=entry["old_value"],
                    new_value=entry["new_value"],
                    weight=float(entry.get("weight", 0.0)),
                )
            )
        except (KeyError, TypeError) as error:
            raise ReproError(f"malformed change entry {entry!r}: {error}")
    return tuple(changes)


def apply_changes(
    instance: DatabaseInstance, changes: tuple[CellChange, ...]
) -> DatabaseInstance:
    """Re-apply an audited change list to a copy of an instance.

    Each change's ``old_value`` is checked against the target cell; a
    mismatch means the instance diverged from the audited source and the
    replay refuses to proceed.
    """
    repaired = instance.copy()
    for change in changes:
        current = repaired.resolve(change.ref)
        if current[change.attribute] != change.old_value:
            raise ReproError(
                f"replay conflict at {change.ref}: expected "
                f"{change.attribute}={change.old_value!r}, found "
                f"{current[change.attribute]!r}"
            )
        repaired.replace_tuple(
            current.replace({change.attribute: change.new_value})
        )
    return repaired
