"""Incremental repair: keep a database consistent across update batches.

The repair algorithms of Section 3 are batch algorithms; in a data-exchange
or ETL setting the natural loop is *load → repair → keep loading*.  For a
consistent instance ``D |= IC`` and a batch of inserts/updates ``Δ``, every
new violation involves at least one changed tuple, so detection can anchor
on ``Δ`` (see :func:`repro.violations.detector.find_violations_involving`)
and the MWSCP instance only covers the new violations - work proportional
to ``|Δ|`` and its join neighbourhood instead of ``|D|``.

Locality gives the correctness argument: the computed local fixes never
introduce fresh inconsistencies (Section 2), so repairing just the
Δ-anchored violations restores global consistency.  This realizes the
incremental repair semantics the paper points to via reference [15]
(Lopatenko & Bertossi, ICDT'07).

Usage::

    repairer = IncrementalRepairer(instance, constraints)
    repairer.insert("Client", (41, 15, 80))
    repairer.update("Buy", key=(12, 0), p=90)
    result = repairer.commit()         # repairs only what the batch broke
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import replace
from typing import TYPE_CHECKING, Any, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.plan.program import CompiledProgram

from repro.constraints.denial import DenialConstraint
from repro.constraints.locality import check_local_set
from repro.exceptions import RepairError, RuntimeConfigError
from repro.fixes.distance import CITY_DISTANCE, DistanceMetric, get_metric
from repro.model.columnar import transfer_store
from repro.model.instance import DatabaseInstance
from repro.model.tuples import Tuple
from repro.obs import Tracer, as_tracer, normalize_solver_stats
from repro.repair.builder import build_repair_problem
from repro.repair.apply import apply_cover
from repro.repair.result import RepairResult
from repro.runtime.executor import ExecutionPolicy, Executor
from repro.setcover.decompose import solve_by_components
from repro.setcover.solvers import (
    DEFAULT_SOLVER,
    component_solver,
    get_solver,
    resolve_solver_engine,
)
from repro.violations.detector import (
    find_all_violations,
    find_violations_involving,
    is_consistent,
)
from repro.violations.indexes import JoinIndexCache
from repro.violations.kernels import resolve_engine


class IncrementalRepairer:
    """Maintains a consistent instance under staged inserts and updates.

    The held instance is private; read it via :attr:`instance` (a copy) or
    act on the :class:`RepairResult` returned by :meth:`commit`.
    """

    def __init__(
        self,
        instance: DatabaseInstance,
        constraints: Iterable[DenialConstraint],
        algorithm: str = DEFAULT_SOLVER,
        metric: str | DistanceMetric = CITY_DISTANCE,
        repair_initial: bool = True,
        parallel: "bool | str | ExecutionPolicy | None" = None,
        max_workers: int | None = None,
        engine: str = "auto",
        solver_engine: str = "auto",
        trace: "bool | Tracer" = False,
        shards: int | None = None,
        plan: "CompiledProgram | None" = None,
    ) -> None:
        # One tracer observes the repairer's whole lifetime: every commit
        # adds a ``commit`` span (tagged with its delta-round number), so
        # the finished trace shows the incremental cost profile across
        # batches.  Read it with :meth:`finish_trace`.
        self._tracer = as_tracer(trace)
        self._rounds = 0
        self._constraints = tuple(constraints)
        # A precompiled plan is validated once for the repairer's whole
        # lifetime: every commit round then reuses its static analysis
        # (locality proof, solver pre-selection, dead-constraint
        # elimination) instead of re-deriving it.  A stale plan raises
        # StalePlanError here, before any state is built.
        self._plan = plan
        if plan is not None:
            plan.require_match(instance.schema, self._constraints)
            if solver_engine == "auto":
                solver_engine = plan.solver.engine
        # Statically dead constraints have empty violation sets on every
        # instance, so all detection (initial, anchored, verify) runs on
        # the executed subset - byte-identical, less work per round.
        self._active_constraints = (
            plan.executed_constraints(self._constraints)
            if plan is not None
            else self._constraints
        )
        self._algorithm = algorithm
        self._metric = get_metric(metric)
        # Whole-instance passes (initial repair, verify) honour ``engine``
        # as-is; anchored commit detection hands the detector its join
        # indexes, so ``auto`` resolves to the interpreted Δ-proportional
        # path there (a per-commit columnar snapshot rebuild would cost
        # O(|D|)).  ``engine="kernel"`` forces the kernel everywhere.
        # The repairer works on private copies that are never backend-
        # resident, so a strict ``pushdown`` request downgrades to ``auto``
        # (after name validation) rather than failing every commit.
        resolve_engine(engine)
        self._engine = "auto" if engine == "pushdown" else engine
        self._solver_engine = resolve_solver_engine(solver_engine)
        # Anchored detection is dominated by hash lookups against the
        # shared join-index cache, which a process pool cannot see - so
        # ``parallel=True`` resolves to threads here, keeping the cache
        # hot while still letting sqlite-bound or multi-constraint
        # batches overlap.  The solve stage reuses the same policy.
        if shards is not None and (
            isinstance(shards, bool) or not isinstance(shards, int) or shards < 1
        ):
            raise RuntimeConfigError(
                f"shards must be a positive integer or None, got {shards!r}"
            )
        self._shards = shards
        policy = ExecutionPolicy.resolve(parallel, max_workers)
        if policy.backend == "auto":
            policy = replace(policy, backend="thread")
        if shards is not None and shards > 1 and policy.backend == "serial":
            # Sharded anchored detection dispatches through the executor;
            # asking for shards without a backend means "threads", the
            # backend that can actually share the warm join-index cache.
            policy = replace(policy, backend="thread", max_workers=max_workers or shards)
        self._policy = policy
        self._executor = Executor(policy)
        if self._plan is None or not self._plan.solver.locality_ok:
            # With a plan, locality was proven at compile time; without
            # one (or when the plan could not prove it) the raising
            # check runs so the error is identical to the unplanned path.
            check_local_set(self._constraints, instance.schema)

        self._instance = instance.copy()
        if not is_consistent(
            self._instance, self._active_constraints, engine=self._engine
        ):
            if not repair_initial:
                raise RepairError(
                    "initial instance is inconsistent; pass "
                    "repair_initial=True or repair it first"
                )
            with ExitStack() as ctx:
                ctx.enter_context(self._tracer.activate())
                ctx.enter_context(
                    self._tracer.span(
                        "initial-repair", category="pipeline", anchor=True
                    )
                )
                problem = build_repair_problem(
                    self._instance, self._active_constraints, metric=self._metric,
                    check_locality=False,
                )
                cover = self._solve(problem.setcover)
                self._instance, _, _ = apply_cover(problem, cover)
        self._staged: list[Tuple] = []
        # Persistent join indexes keep anchored detection sublinear across
        # commits; built lazily on the (now consistent) working instance.
        self._join_indexes = JoinIndexCache(self._instance)

    # -- staging ------------------------------------------------------------

    def insert(self, relation_name: str, row: Iterable[Any]) -> Tuple:
        """Stage a new tuple (applied to the working instance immediately)."""
        tup = self._instance.insert_row(relation_name, tuple(row))
        self._join_indexes.notify_insert(tup)
        self._staged.append(tup)
        return tup

    def insert_tuple(self, tup: Tuple) -> None:
        """Stage an already-built tuple."""
        self._instance.insert(tup)
        self._join_indexes.notify_insert(tup)
        self._staged.append(tup)

    def update(
        self,
        relation_name: str,
        key: tuple[Any, ...],
        changes: Mapping[str, Any] | None = None,
        **kwargs: Any,
    ) -> Tuple:
        """Stage an attribute update of an existing tuple."""
        old = self._instance.get(relation_name, key)
        new = old.replace(changes, **kwargs)
        self._instance.replace_tuple(new)
        self._join_indexes.notify_replace(old, new)
        self._staged = [t for t in self._staged if t is not old and t != old]
        self._staged.append(new)
        return new

    def delete(self, relation_name: str, key: tuple[Any, ...]) -> Tuple:
        """Remove a tuple; deletions cannot create denial violations."""
        removed = self._instance.delete(relation_name, key)
        self._join_indexes.notify_remove(removed)
        self._staged = [t for t in self._staged if t != removed]
        return removed

    @property
    def pending(self) -> tuple[Tuple, ...]:
        """Tuples staged since the last commit."""
        return tuple(self._staged)

    @property
    def instance(self) -> DatabaseInstance:
        """A copy of the current working instance."""
        return self._instance.copy()

    # -- committing ------------------------------------------------------------

    def commit(self, verify: bool = False, snapshot: bool = True) -> RepairResult:
        """Repair the violations the staged batch introduced.

        Returns the batch's :class:`RepairResult` (zero-change result when
        the batch kept the database consistent).  ``verify=True``
        additionally re-checks global consistency - an O(|D|) sanity pass
        that defeats the purpose of incrementality, so it is off by
        default and exercised in tests.

        ``snapshot=False`` is the sustained-throughput mode: the result's
        ``repaired`` field is ``None`` (read :attr:`instance` on demand)
        and the repair is applied *in place* instead of copy-on-apply, so
        a commit round costs O(|Δ| + neighbourhood) instead of O(|D|).
        The committed content is byte-identical either way.
        """
        self._rounds += 1
        with ExitStack() as ctx:
            ctx.enter_context(self._tracer.activate())
            commit_span = ctx.enter_context(
                self._tracer.span(
                    "commit",
                    category="pipeline",
                    round=self._rounds,
                    staged=len(self._staged),
                    **({"shards": self._shards} if self._shards else {}),
                )
            )
            with self._tracer.span(
                "detect", category="stage", anchor=True
            ) as detect_span:
                violations = find_violations_involving(
                    self._instance,
                    self._active_constraints,
                    self._staged,
                    raw_indexes=self._join_indexes,
                    executor=self._executor if self._policy.is_parallel else None,
                    engine=self._engine,
                    shards=self._shards,
                )
                detect_span.tag(violations=len(violations))
            self._staged = []
            if not violations:
                commit_span.tag(consistent=True)
                result = RepairResult(
                    repaired=self._instance.copy() if snapshot else None,
                    algorithm=str(self._algorithm),
                    cover_weight=0.0,
                    distance=0.0,
                    changes=(),
                    violations_before=0,
                    verified=verify,
                    metric=self._metric.name,
                )
                if verify:
                    with self._tracer.span("verify", category="stage"):
                        self._verify()
                return result

            with self._tracer.span("reduce", category="stage") as reduce_span:
                problem = build_repair_problem(
                    self._instance,
                    self._active_constraints,
                    metric=self._metric,
                    check_locality=False,          # checked once in __init__
                    violations=violations,
                )
                reduce_span.tag(sets=len(problem.setcover.sets))
            with self._tracer.span(
                "solve", category="stage", anchor=True
            ) as solve_span:
                cover = self._solve(problem.setcover)
                solve_span.tag(weight=cover.weight, selected=len(cover.selected))
            with self._tracer.span("apply", category="stage") as apply_span:
                repaired, changes, distance = self._apply(problem, cover, snapshot)
                apply_span.tag(changes=len(changes), distance=distance)
            if verify:
                with self._tracer.span("verify", category="stage"):
                    self._verify()
            return RepairResult(
                repaired=repaired.copy() if snapshot else None,
                algorithm=cover.algorithm,
                cover_weight=cover.weight,
                distance=distance,
                changes=changes,
                violations_before=len(violations),
                verified=verify,
                metric=self._metric.name,
                solver_iterations=cover.iterations,
                solver_stats=normalize_solver_stats(dict(cover.stats)),
            )

    def _apply(self, problem, cover, snapshot: bool):
        """Apply one round's cover and keep the warm caches consistent.

        The snapshot path preserves the historical copy-on-apply swap
        (and carries the warm columnar store across it via
        :func:`repro.model.columnar.transfer_store`); the streaming path
        mutates the working instance in place, so join indexes are
        maintained from the changes' recorded old values and the columnar
        store invalidates itself through the bumped data versions.
        """
        if snapshot:
            repaired, changes, distance = apply_cover(problem, cover)
            for ref in {change.ref for change in changes}:
                self._join_indexes.notify_replace(
                    self._instance.resolve(ref), repaired.resolve(ref)
                )
            transfer_store(
                self._instance,
                repaired,
                {change.ref.relation_name for change in changes},
            )
            self._instance = repaired
            self._join_indexes.rebind(self._instance)
            return repaired, changes, distance
        repaired, changes, distance = apply_cover(problem, cover, in_place=True)
        old_values_by_ref: dict[Any, dict[str, Any]] = {}
        for change in changes:
            old_values_by_ref.setdefault(change.ref, {})[
                change.attribute
            ] = change.old_value
        for ref, old_values in old_values_by_ref.items():
            new = self._instance.resolve(ref)
            self._join_indexes.notify_replace(new.replace(old_values), new)
        return repaired, changes, distance

    @property
    def tracer(self) -> "Tracer":
        """The tracer observing this repairer (the null tracer when off)."""
        return self._tracer

    def finish_trace(self):
        """Snapshot the lifetime trace: one ``commit`` span per delta round.

        Returns an empty :class:`~repro.obs.spans.Trace` when tracing was
        not requested; call after the commits of interest (spans of later
        commits simply extend the next snapshot).
        """
        return self._tracer.finish()

    def _solve(self, setcover) -> "Cover":
        """Solve one commit's MWSCP; decomposed when parallelism is on.

        Mirrors :func:`repro.repair.engine.repair_database`: a non-serial
        policy routes through the component decomposition so the covers
        match batch-parallel repairs of the same state, byte for byte.
        """
        if self._policy.backend == "serial":
            return get_solver(self._algorithm, self._solver_engine)(setcover)
        solver, max_elements, fallback = component_solver(
            self._algorithm, self._solver_engine
        )
        return solve_by_components(
            setcover,
            solver,
            max_component_elements=max_elements,
            fallback=fallback,
            executor=self._executor,
        )

    def _verify(self) -> None:
        remaining = find_all_violations(
            self._instance, self._active_constraints, engine=self._engine
        )
        if remaining:
            raise RepairError(
                f"incremental commit left {len(remaining)} violations; "
                "this indicates non-local constraints slipped through"
            )
