"""The end-to-end repair engine (Algorithm 6).

``repair_database`` chains the full pipeline: violation detection →
MWSCP construction → approximate set cover → repair construction →
(optional) verification that the result satisfies the constraints.

The detection and solving stages optionally fan out over the
:mod:`repro.runtime` executor: detection parallelizes per constraint,
solving per connected component of the MWSCP instance (see
:mod:`repro.setcover.decompose`).  Both stages are shared-nothing, so
every backend — serial, thread, process — produces the identical repair.
"""

from __future__ import annotations

import logging
import time
from typing import Iterable, Sequence

from repro.constraints.denial import DenialConstraint
from repro.exceptions import RepairError
from repro.fixes.distance import CITY_DISTANCE, DistanceMetric, get_metric
from repro.model.instance import DatabaseInstance
from repro.repair.apply import apply_cover
from repro.repair.builder import RepairProblem, build_repair_problem
from repro.repair.result import RepairResult
from repro.runtime.executor import ExecutionPolicy, Executor
from repro.setcover.decompose import solve_by_components
from repro.setcover.solvers import DEFAULT_SOLVER, component_solver, get_solver
from repro.violations.detector import ViolationSet, find_all_violations, is_consistent
from repro.violations.kernels import resolve_engine

logger = logging.getLogger(__name__)


def repair_database(
    instance: DatabaseInstance,
    constraints: Iterable[DenialConstraint],
    algorithm: str = DEFAULT_SOLVER,
    metric: str | DistanceMetric = CITY_DISTANCE,
    verify: bool = True,
    check_locality: bool = True,
    violations: Sequence[ViolationSet] | None = None,
    simplify: bool = False,
    parallel: "bool | str | ExecutionPolicy | None" = None,
    max_workers: int | None = None,
    engine: str = "auto",
    preflight: bool = False,
) -> RepairResult:
    """Compute an (approximate) attribute-update repair of ``instance``.

    Parameters
    ----------
    instance:
        The inconsistent database ``D``.  Never mutated.
    constraints:
        A local set of linear denial constraints ``IC``.
    algorithm:
        Set-cover solver name: ``greedy``, ``modified-greedy`` (default),
        ``layer``, ``modified-layer``, or ``exact`` (small inputs only).
    metric:
        Distance metric for Δ (``l1``, ``l2``, or ``l0``).
    verify:
        Re-check ``D(C) |= IC`` after repairing; a failure raises
        :class:`RepairError` (it would indicate non-local input slipping
        through, or a solver bug).
    check_locality:
        Validate locality up front (disabled by the cardinality
        transformation, whose output is local by construction).
    violations:
        Optionally reuse a precomputed ``I(D, IC)``.
    simplify:
        Preprocess the constraint set first (merge redundant bounds, drop
        unsatisfiable and duplicate denials) - semantics-preserving, see
        :mod:`repro.constraints.simplify`.  Incompatible with a
        precomputed ``violations`` list (whose constraint objects would
        not match the simplified set).
    parallel:
        ``None``/``False`` (default) keeps the classic serial pipeline.
        ``True`` picks a backend automatically; a backend name
        (``serial``/``thread``/``process``) or an
        :class:`~repro.runtime.ExecutionPolicy` selects one explicitly.
        Any non-serial request also switches solving to the
        component-decomposed path, so the result is identical for every
        backend and worker count (see DESIGN.md, "Parallel runtime").
    max_workers:
        Worker bound for the parallel stages (default: all cores).
    engine:
        Violation-detection engine: ``auto`` (default; the columnar
        kernel when NumPy is importable, interpreted otherwise),
        ``kernel``, or ``interpreted``.  Both engines yield
        byte-identical violations, hence identical repairs; the choice
        also applies to post-repair verification.
    preflight:
        Run the static constraint analyzer (:mod:`repro.lint`) first and
        raise :class:`~repro.exceptions.LintError` - with the full
        report attached - when it finds error-severity diagnostics.

    Returns
    -------
    RepairResult
        The repaired instance plus distance, change log and solver stats.
        ``elapsed_seconds`` splits the wall clock per stage (``detect``,
        ``build``, ``solve``, ``apply``, ``verify``); ``solver_stats``
        records the runtime backend and per-stage worker counts.
    """
    constraints = tuple(constraints)
    if preflight:
        from repro.exceptions import LintError
        from repro.lint.analyzer import lint_constraints

        report = lint_constraints(instance.schema, constraints)
        if report.gated("error"):
            raise LintError(
                f"constraint lint preflight failed: "
                f"{len(report.errors)} error(s)",
                report=report,
            )
    if simplify:
        if violations is not None:
            raise RepairError(
                "simplify=True cannot be combined with precomputed violations"
            )
        from repro.constraints.simplify import simplify_constraints

        constraints = simplify_constraints(constraints)
    metric = get_metric(metric)
    policy = ExecutionPolicy.resolve(parallel, max_workers)
    # Any explicit parallel request (even one that resolves to a single
    # worker) routes solving through the component decomposition, so the
    # cover is a function of the request, not of the machine it ran on.
    decomposed = policy.backend != "serial"
    executor = Executor(policy)

    started = time.perf_counter()
    detect_workers = 1
    if violations is None:
        if executor.is_parallel and len(constraints) > 1:
            detect_workers = min(executor.workers, len(constraints))
        violations = find_all_violations(
            instance,
            constraints,
            executor=executor if detect_workers > 1 else None,
            engine=engine,
        )
    detected = time.perf_counter()

    problem = build_repair_problem(
        instance,
        constraints,
        metric=metric,
        check_locality=check_locality,
        violations=violations,
    )
    built = time.perf_counter()

    if problem.is_consistent:
        return RepairResult(
            repaired=instance.copy(),
            algorithm=str(algorithm),
            cover_weight=0.0,
            distance=0.0,
            changes=(),
            violations_before=0,
            verified=True,
            metric=metric.name,
            elapsed_seconds={
                "detect": detected - started,
                "build": built - detected,
            },
        )

    logger.info(
        "repair: %d violations, %d candidate fixes, solving with %s%s",
        len(problem.violations),
        len(problem.setcover.sets),
        algorithm if isinstance(algorithm, str) else getattr(algorithm, "__name__", "?"),
        f" [{executor.backend} x{executor.workers}]" if decomposed else "",
    )
    solve_workers = 1
    if decomposed:
        solver, max_elements, fallback = component_solver(algorithm)
        if executor.is_parallel:
            solve_workers = executor.workers
        cover = solve_by_components(
            problem.setcover,
            solver,
            max_component_elements=max_elements,
            fallback=fallback,
            executor=executor,
        )
    else:
        cover = get_solver(algorithm)(problem.setcover)
    solved = time.perf_counter()
    logger.info(
        "repair: cover weight %g with %d sets in %.3fs",
        cover.weight,
        len(cover.selected),
        solved - built,
    )

    repaired, changes, distance = apply_cover(problem, cover)
    applied = time.perf_counter()

    verified = False
    if verify:
        if not is_consistent(repaired, constraints, engine=engine):
            remaining = find_all_violations(repaired, constraints, engine=engine)
            raise RepairError(
                f"repair left {len(remaining)} violations - the constraint "
                "set is not local or the cover construction is inconsistent; "
                f"first remaining violation: {remaining[0]!r}"
            )
        verified = True

    solver_stats = dict(cover.stats)
    solver_stats["detection_engine"] = resolve_engine(engine)
    if decomposed:
        solver_stats["runtime_backend"] = executor.backend
        solver_stats["runtime_workers"] = float(executor.workers)
        solver_stats["detect_workers"] = float(detect_workers)
        solver_stats["solve_workers"] = float(solve_workers)
    return RepairResult(
        repaired=repaired,
        algorithm=cover.algorithm,
        cover_weight=cover.weight,
        distance=distance,
        changes=changes,
        violations_before=len(problem.violations),
        verified=verified,
        metric=metric.name,
        solver_iterations=cover.iterations,
        solver_stats=solver_stats,
        elapsed_seconds={
            "detect": detected - started,
            "build": built - detected,
            "solve": solved - built,
            "apply": applied - solved,
            "verify": time.perf_counter() - applied if verify else 0.0,
        },
    )


def repair_problem_cover(
    problem: RepairProblem,
    algorithm: str = DEFAULT_SOLVER,
    parallel: "bool | str | ExecutionPolicy | None" = None,
    max_workers: int | None = None,
):
    """Solve a prebuilt repair problem; exposed for the benchmark harness.

    The Figure-3 benchmark times *only* the MWSCP solver component (as the
    paper does), so it builds the problem once and calls this repeatedly.
    ``parallel``/``max_workers`` select the component-decomposed parallel
    path, mirroring :func:`repair_database`.
    """
    policy = ExecutionPolicy.resolve(parallel, max_workers)
    if policy.backend == "serial":
        return get_solver(algorithm)(problem.setcover)
    solver, max_elements, fallback = component_solver(algorithm)
    return solve_by_components(
        problem.setcover,
        solver,
        max_component_elements=max_elements,
        fallback=fallback,
        executor=Executor(policy),
    )
