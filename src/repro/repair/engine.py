"""The end-to-end repair engine (Algorithm 6).

``repair_database`` chains the full pipeline: violation detection →
MWSCP construction → approximate set cover → repair construction →
(optional) verification that the result satisfies the constraints.

The detection and solving stages optionally fan out over the
:mod:`repro.runtime` executor: detection parallelizes per constraint,
solving per connected component of the MWSCP instance (see
:mod:`repro.setcover.decompose`).  Both stages are shared-nothing, so
every backend — serial, thread, process — produces the identical repair.

With ``trace=True`` the run is recorded by the :mod:`repro.obs` layer:
one ``repair`` root span with a stage span per Figure-1 box (``detect``,
``reduce``, ``solve``, ``apply``, ``verify``), per-constraint detection
spans and per-solver spans nested inside — including spans recorded by
thread- and process-pool workers, which the runtime merges back into the
stage that dispatched them.  ``RepairResult.elapsed_seconds`` then
becomes a thin view over the stage spans (same keys as the untraced
dict, so no caller changes), and ``RepairResult.trace`` carries the full
:class:`~repro.obs.spans.Trace`.  Tracing never alters the computation:
traced and untraced runs produce byte-identical repairs.
"""

from __future__ import annotations

import logging
import time
from contextlib import ExitStack
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.plan.program import CompiledProgram

from repro.constraints.denial import DenialConstraint
from repro.exceptions import RepairError
from repro.fixes.distance import CITY_DISTANCE, DistanceMetric, get_metric
from repro.model.instance import DatabaseInstance
from repro.obs import Tracer, as_tracer, normalize_solver_stats
from repro.repair.apply import apply_cover
from repro.repair.builder import RepairProblem, build_repair_problem
from repro.repair.result import RepairResult
from repro.runtime.executor import ExecutionPolicy, Executor
from repro.setcover.decompose import solve_by_components
from repro.setcover.solvers import (
    DEFAULT_SOLVER,
    component_solver,
    get_solver,
    resolve_solver_engine,
)
from repro.violations.detector import ViolationSet, find_all_violations, is_consistent
from repro.violations.kernels import resolve_engine

logger = logging.getLogger(__name__)

#: Span name → ``elapsed_seconds`` key (the ``reduce`` stage keeps its
#: historical ``build`` key so serialized results stay comparable).
_STAGE_KEYS = {
    "detect": "detect",
    "reduce": "build",
    "solve": "solve",
    "apply": "apply",
    "verify": "verify",
}


def _stage_view(root_span) -> dict[str, float]:
    """``elapsed_seconds`` derived from the stage spans of a traced run."""
    return {
        _STAGE_KEYS[child.name]: child.duration or 0.0
        for child in root_span.children
        if child.category == "stage" and child.name in _STAGE_KEYS
    }


def repair_database(
    instance: DatabaseInstance,
    constraints: Iterable[DenialConstraint],
    algorithm: str = DEFAULT_SOLVER,
    metric: str | DistanceMetric = CITY_DISTANCE,
    verify: bool = True,
    check_locality: bool = True,
    violations: Sequence[ViolationSet] | None = None,
    simplify: bool = False,
    parallel: "bool | str | ExecutionPolicy | None" = None,
    max_workers: int | None = None,
    engine: str = "auto",
    solver_engine: str = "auto",
    preflight: bool = False,
    trace: "bool | Tracer" = False,
    plan: "CompiledProgram | None" = None,
) -> RepairResult:
    """Compute an (approximate) attribute-update repair of ``instance``.

    Parameters
    ----------
    instance:
        The inconsistent database ``D``.  Never mutated.
    constraints:
        A local set of linear denial constraints ``IC``.
    algorithm:
        Set-cover solver name: ``greedy``, ``modified-greedy`` (default),
        ``layer``, ``modified-layer``, or ``exact`` (small inputs only).
    metric:
        Distance metric for Δ (``l1``, ``l2``, or ``l0``).
    verify:
        Re-check ``D(C) |= IC`` after repairing; a failure raises
        :class:`RepairError` (it would indicate non-local input slipping
        through, or a solver bug).
    check_locality:
        Validate locality up front (disabled by the cardinality
        transformation, whose output is local by construction).
    violations:
        Optionally reuse a precomputed ``I(D, IC)``.
    simplify:
        Preprocess the constraint set first (merge redundant bounds, drop
        unsatisfiable and duplicate denials) - semantics-preserving, see
        :mod:`repro.constraints.simplify`.  Incompatible with a
        precomputed ``violations`` list (whose constraint objects would
        not match the simplified set).
    parallel:
        ``None``/``False`` (default) keeps the classic serial pipeline.
        ``True`` picks a backend automatically; a backend name
        (``serial``/``thread``/``process``) or an
        :class:`~repro.runtime.ExecutionPolicy` selects one explicitly.
        Any non-serial request also switches solving to the
        component-decomposed path, so the result is identical for every
        backend and worker count (see DESIGN.md, "Parallel runtime").
    max_workers:
        Worker bound for the parallel stages (default: all cores).
    engine:
        Violation-detection engine: ``auto`` (default; SQL pushdown when
        the instance is backend-resident, else the columnar kernel when
        NumPy is importable, interpreted otherwise), ``pushdown``,
        ``kernel``, or ``interpreted``.  All engines yield byte-identical
        violations, hence identical repairs; the choice also applies to
        post-repair verification (where ``pushdown`` downgrades to
        ``auto``: the repaired copy is no longer backend-resident).
    solver_engine:
        Set-cover solver engine: ``auto`` (default; the flat CSR/bitset
        core of :mod:`repro.setcover.flat`), ``flat``, or ``object``
        (the per-``WeightedSet`` reference solvers).  Both engines
        return byte-identical covers, hence identical repairs.
    preflight:
        Run the static constraint analyzer (:mod:`repro.lint`) first and
        raise :class:`~repro.exceptions.LintError` - with the full
        report attached - when it finds error-severity diagnostics.
    trace:
        ``True`` records the run with a fresh
        :class:`~repro.obs.Tracer` (returned via ``RepairResult.trace``);
        an existing tracer nests this run into a larger trace (the
        cardinality engine and the incremental repairer do this).
        Tracing observes only - the repair is byte-identical either way.
    plan:
        A precompiled :class:`~repro.plan.program.CompiledProgram` for
        exactly this ``(schema, constraints)`` pair.  The static
        analysis the plan already holds is skipped per call: preflight
        reads the stored lint report, locality re-checking is skipped
        when the plan proved it, statically dead constraints are
        eliminated from detection and verification (provably
        byte-identical - their violation sets are empty on every
        instance), the solver engine resolves from the plan when the
        caller leaves ``solver_engine="auto"``, and - with
        ``engine="auto"`` - each constraint runs its planned engine
        chain with the runtime-refusal fallback preserved and recorded
        (``plan_engine_downgrades`` counter).  An explicit ``engine``
        overrides the planned chains.  A plan whose fingerprint does
        not match raises :class:`~repro.exceptions.StalePlanError`;
        ``simplify=True`` is incompatible (it would change the
        constraint set out from under the fingerprint).  Planned and
        unplanned runs produce byte-identical repairs.

    Returns
    -------
    RepairResult
        The repaired instance plus distance, change log and solver stats.
        ``elapsed_seconds`` splits the wall clock per stage (``detect``,
        ``build``, ``solve``, ``apply``, ``verify``); ``solver_stats``
        follows the schema of :mod:`repro.obs.stats`; ``trace`` carries
        the span tree of a traced run.
    """
    constraints = tuple(constraints)
    if plan is not None:
        if simplify:
            raise RepairError(
                "simplify=True cannot be combined with a compiled plan - "
                "the plan's fingerprint covers the unsimplified constraint "
                "set; compile the simplified set instead"
            )
        plan.require_match(instance.schema, constraints)
        if solver_engine == "auto":
            solver_engine = plan.solver.engine
    if preflight:
        from repro.exceptions import LintError
        from repro.lint.analyzer import lint_constraints

        # The plan already ran the analyzer at compile time over the
        # fingerprint-matched constraint set; reuse its report.
        report = (
            plan.lint
            if plan is not None
            else lint_constraints(instance.schema, constraints)
        )
        if report.gated("error"):
            raise LintError(
                f"constraint lint preflight failed: "
                f"{len(report.errors)} error(s)",
                report=report,
            )
    if plan is not None and check_locality and plan.solver.locality_ok:
        # Locality was proven statically at compile time.
        check_locality = False
    if simplify:
        if violations is not None:
            raise RepairError(
                "simplify=True cannot be combined with precomputed violations"
            )
        from repro.constraints.simplify import simplify_constraints

        constraints = simplify_constraints(constraints)
    metric = get_metric(metric)
    solver_engine = resolve_solver_engine(solver_engine)
    policy = ExecutionPolicy.resolve(parallel, max_workers)
    # Any explicit parallel request (even one that resolves to a single
    # worker) routes solving through the component decomposition, so the
    # cover is a function of the request, not of the machine it ran on.
    decomposed = policy.backend != "serial"
    executor = Executor(policy)
    tracer = as_tracer(trace)
    # A trace created here is finished here; a caller-provided tracer is
    # left open so several pipeline calls can share one trace.
    owns_trace = tracer.enabled and not isinstance(trace, Tracer)

    with ExitStack() as ctx:
        ctx.enter_context(tracer.activate())
        root = ctx.enter_context(
            tracer.span(
                "repair",
                category="pipeline",
                algorithm=str(algorithm),
                engine=resolve_engine(engine, instance),
                solver_engine=solver_engine,
                backend=executor.backend if decomposed else "serial",
                tuples=len(instance),
                constraints=len(constraints),
            )
        )

        started = time.perf_counter()
        detect_workers = 1
        with tracer.span("detect", category="stage", anchor=True) as detect_span:
            if violations is None:
                if executor.is_parallel and len(constraints) > 1:
                    detect_workers = min(executor.workers, len(constraints))
                detect_executor = executor if detect_workers > 1 else None
                if plan is not None and engine == "auto":
                    from repro.plan.runtime import planned_find_all_violations

                    violations = planned_find_all_violations(
                        instance,
                        constraints,
                        plan,
                        executor=detect_executor,
                    )
                elif plan is not None:
                    # Explicit engine request wins over the planned
                    # chains; dead constraints stay eliminated.
                    violations = find_all_violations(
                        instance,
                        plan.executed_constraints(constraints),
                        executor=detect_executor,
                        engine=engine,
                    )
                else:
                    violations = find_all_violations(
                        instance,
                        constraints,
                        executor=detect_executor,
                        engine=engine,
                    )
            detect_span.tag(violations=len(violations), workers=detect_workers)
        if tracer.enabled:
            from repro.violations.degree import degree_of_database

            tracer.metrics.gauge("inconsistency_degree").set_max(
                degree_of_database(violations)
            )
        detected = time.perf_counter()

        with tracer.span("reduce", category="stage") as reduce_span:
            problem = build_repair_problem(
                instance,
                constraints,
                metric=metric,
                check_locality=check_locality,
                violations=violations,
            )
            reduce_span.tag(
                sets=len(problem.setcover.sets),
                elements=problem.setcover.n_elements,
            )
        built = time.perf_counter()

        if problem.is_consistent:
            root.tag(consistent=True)
            root_elapsed = {
                "detect": detected - started,
                "build": built - detected,
            }
            result_trace = None
            if tracer.enabled:
                detect_span.close()
                reduce_span.close()
                root_elapsed = {
                    "detect": detect_span.duration or 0.0,
                    "build": reduce_span.duration or 0.0,
                }
                if owns_trace:
                    result_trace = _finish_after(ctx, tracer)
            return RepairResult(
                repaired=instance.copy(),
                algorithm=str(algorithm),
                cover_weight=0.0,
                distance=0.0,
                changes=(),
                violations_before=0,
                verified=True,
                metric=metric.name,
                elapsed_seconds=root_elapsed,
                trace=result_trace,
            )

        logger.info(
            "repair: %d violations, %d candidate fixes, solving with %s%s",
            len(problem.violations),
            len(problem.setcover.sets),
            algorithm if isinstance(algorithm, str) else getattr(algorithm, "__name__", "?"),
            f" [{executor.backend} x{executor.workers}]" if decomposed else "",
        )
        solve_workers = 1
        with tracer.span("solve", category="stage", anchor=True) as solve_span:
            if decomposed:
                solver, max_elements, fallback = component_solver(
                    algorithm, solver_engine
                )
                if executor.is_parallel:
                    solve_workers = executor.workers
                cover = solve_by_components(
                    problem.setcover,
                    solver,
                    max_component_elements=max_elements,
                    fallback=fallback,
                    executor=executor,
                )
            else:
                cover = get_solver(algorithm, solver_engine)(problem.setcover)
            solve_span.tag(
                weight=cover.weight,
                selected=len(cover.selected),
                workers=solve_workers,
            )
        solved = time.perf_counter()
        logger.info(
            "repair: cover weight %g with %d sets in %.3fs",
            cover.weight,
            len(cover.selected),
            solved - built,
        )

        with tracer.span("apply", category="stage") as apply_span:
            repaired, changes, distance = apply_cover(problem, cover)
            apply_span.tag(changes=len(changes), distance=distance)
        applied = time.perf_counter()

        verified = False
        if verify:
            # The repaired copy is a fresh in-memory instance, never
            # backend-resident, so a strict pushdown request downgrades to
            # auto here instead of failing its own verification.
            verify_engine = "auto" if engine == "pushdown" else engine
            # Statically dead constraints can never be violated, so the
            # planned path verifies only the executed subset (identical
            # verdict, less work).
            verify_constraints = (
                plan.executed_constraints(constraints)
                if plan is not None
                else constraints
            )
            with tracer.span("verify", category="stage") as verify_span:
                if not is_consistent(
                    repaired, verify_constraints, engine=verify_engine
                ):
                    remaining = find_all_violations(
                        repaired, verify_constraints, engine=verify_engine
                    )
                    raise RepairError(
                        f"repair left {len(remaining)} violations - the constraint "
                        "set is not local or the cover construction is inconsistent; "
                        f"first remaining violation: {remaining[0]!r}"
                    )
                verified = True
                verify_span.tag(consistent=True)

        solver_stats = dict(cover.stats)
        solver_stats["detection_engine"] = resolve_engine(engine, instance)
        # Flat-engine covers stamp themselves; anything else (including a
        # flat request served by an object-only solver like lp-rounding)
        # ran the object code path.
        solver_stats.setdefault("solver_engine", "object")
        if decomposed:
            solver_stats["runtime_backend"] = executor.backend
            solver_stats["runtime_workers"] = executor.workers
            solver_stats["detect_workers"] = detect_workers
            solver_stats["solve_workers"] = solve_workers
        elapsed = {
            "detect": detected - started,
            "build": built - detected,
            "solve": solved - built,
            "apply": applied - solved,
            "verify": time.perf_counter() - applied if verify else 0.0,
        }
        result_trace = None
        if tracer.enabled:
            root.close()
            # The thin view: the same keys, now read off the stage spans.
            elapsed = {**elapsed, **_stage_view(root)}
            if owns_trace:
                result_trace = _finish_after(ctx, tracer)
        return RepairResult(
            repaired=repaired,
            algorithm=cover.algorithm,
            cover_weight=cover.weight,
            distance=distance,
            changes=changes,
            violations_before=len(problem.violations),
            verified=verified,
            metric=metric.name,
            solver_iterations=cover.iterations,
            solver_stats=normalize_solver_stats(solver_stats),
            elapsed_seconds=elapsed,
            trace=result_trace,
        )


def _finish_after(ctx: ExitStack, tracer: Tracer):
    """Close all open spans of ``ctx`` and snapshot the finished trace."""
    ctx.close()
    return tracer.finish()


def repair_problem_cover(
    problem: RepairProblem,
    algorithm: str = DEFAULT_SOLVER,
    parallel: "bool | str | ExecutionPolicy | None" = None,
    max_workers: int | None = None,
    solver_engine: str = "auto",
):
    """Solve a prebuilt repair problem; exposed for the benchmark harness.

    The Figure-3 benchmark times *only* the MWSCP solver component (as the
    paper does), so it builds the problem once and calls this repeatedly.
    ``parallel``/``max_workers`` select the component-decomposed parallel
    path, mirroring :func:`repair_database`; ``solver_engine`` selects the
    flat or object solver family.
    """
    solver_engine = resolve_solver_engine(solver_engine)
    policy = ExecutionPolicy.resolve(parallel, max_workers)
    if policy.backend == "serial":
        return get_solver(algorithm, solver_engine)(problem.setcover)
    solver, max_elements, fallback = component_solver(algorithm, solver_engine)
    return solve_by_components(
        problem.setcover,
        solver,
        max_component_elements=max_elements,
        fallback=fallback,
        executor=Executor(policy),
    )
