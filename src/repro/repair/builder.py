"""Build the MWSCP instance ``(U, S, w)^{(D, IC)}`` (Definition 3.1).

* ``U`` is ``I(D, IC)``: every (violation set, constraint) pair;
* ``S`` holds one set per mono-local fix ``t′`` of an inconsistent tuple
  ``t``, containing the elements ``S(t, t′)`` it solves;
* ``w(S(t,t′)) = Δ({t}, {t′})``.

The construction follows Algorithms 2-4: enumerate violation sets
(Algorithm 2), generate the mono-local fixes per (constraint, relation,
flexible attribute) triple (Algorithm 3), and link fixes to the violation
sets they solve across *all* constraints (Algorithm 4) using a per-tuple
index of ``I(D, IC, t)`` so the work stays proportional to the degree of
inconsistency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.constraints.denial import DenialConstraint
from repro.constraints.locality import check_local_set
from repro.exceptions import UnrepairableError
from repro.fixes.distance import CITY_DISTANCE, DistanceMetric, get_metric, tuple_delta
from repro.fixes.mlf import (
    FixCandidate,
    mono_local_fixes_for_tuple,
    solved_violations,
)
from repro.model.instance import DatabaseInstance
from repro.model.tuples import Tuple
from repro.setcover.instance import SetCoverInstance, WeightedSet
from repro.violations.detector import ViolationSet, find_all_violations


@dataclass(frozen=True)
class RepairProblem:
    """A fully-built repair problem: database, universe, and MWSCP instance.

    ``setcover.sets[i].payload`` is the :class:`FixCandidate` realizing set
    ``i``; ``violations[j]`` is universe element ``j``.
    """

    instance: DatabaseInstance
    constraints: tuple[DenialConstraint, ...]
    metric: DistanceMetric
    violations: tuple[ViolationSet, ...]
    setcover: SetCoverInstance

    @property
    def is_consistent(self) -> bool:
        """True when the database has no violations (empty universe)."""
        return not self.violations

    def candidate(self, set_id: int) -> FixCandidate:
        """The fix candidate realizing one set of the MWSCP instance."""
        return self.setcover.sets[set_id].payload


def _raw_candidates(
    violations: Sequence[ViolationSet],
    schema,
) -> dict[tuple, tuple[Tuple, Tuple, str, list[str]]]:
    """Generate mono-local fixes for every tuple of every violation set.

    Returns a map keyed by ``(ref, attribute, new_value)`` so duplicate
    fixes produced by different constraints merge (Example 2.10: ic₁ and
    ic₂ both yield ``t₁¹``); the value keeps the merged source labels.
    """
    raw: dict[tuple, tuple[Tuple, Tuple, str, list[str]]] = {}
    seen_per_constraint: set[tuple] = set()
    for violation in violations:
        constraint = violation.constraint
        for tup in violation.tuples:
            # Each (tuple, constraint) pair is expanded once even when the
            # tuple occurs in many violation sets of the same constraint.
            pair_key = (tup.ref, id(constraint))
            if pair_key in seen_per_constraint:
                continue
            seen_per_constraint.add(pair_key)
            for attribute, fixed in mono_local_fixes_for_tuple(
                tup, constraint, schema
            ).items():
                key = (tup.ref, attribute, fixed[attribute])
                existing = raw.get(key)
                if existing is None:
                    raw[key] = (tup, fixed, attribute, [constraint.label])
                elif constraint.label not in existing[3]:
                    existing[3].append(constraint.label)
    return raw


def build_repair_problem(
    instance: DatabaseInstance,
    constraints: Iterable[DenialConstraint],
    metric: str | DistanceMetric = CITY_DISTANCE,
    check_locality: bool = True,
    violations: Sequence[ViolationSet] | None = None,
) -> RepairProblem:
    """Construct ``(U, S, w)^{(D, IC)}`` for a database and local denials.

    Parameters
    ----------
    instance:
        The (possibly inconsistent) database ``D``.
    constraints:
        The flexible ICs.  Must form a *local* set unless
        ``check_locality=False`` (the cardinality transformation produces
        sets that are local by construction and skips the check).
    metric:
        Cell distance for fix weights (default city distance ``L₁``).
    violations:
        Precomputed ``I(D, IC)`` to reuse, e.g. from a profiling pass.

    Raises
    ------
    LocalityError
        When the constraint set is not local.
    UnrepairableError
        When some violation set admits no mono-local fix (cannot happen
        for local sets, but malformed input is reported, not mis-covered).
    """
    constraints = tuple(constraints)
    metric = get_metric(metric)
    if check_locality:
        check_local_set(constraints, instance.schema)

    if violations is None:
        violations = find_all_violations(instance, constraints)
    violations = tuple(violations)

    # Per-tuple index of I(D, IC, t): violation positions by tuple.
    by_tuple: dict[Tuple, list[int]] = {}
    for index, violation in enumerate(violations):
        for tup in violation.tuples:
            by_tuple.setdefault(tup, []).append(index)

    raw = _raw_candidates(violations, instance.schema)

    sets: list[WeightedSet] = []
    for key in sorted(raw, key=lambda k: (k[0], k[1], k[2])):
        old, new, attribute, sources = raw[key]
        solves = solved_violations(
            old, new, violations, candidate_indices=by_tuple.get(old, ())
        )
        if not solves:
            # A fix that solves nothing is not a local fix (Definition
            # 2.6(b) requires S(t,t') to be non-empty); drop it.
            continue
        weight = tuple_delta(old, new, metric)
        candidate = FixCandidate(
            ref=old.ref,
            old=old,
            new=new,
            attribute=attribute,
            new_value=new[attribute],
            weight=weight,
            solves=solves,
            sources=tuple(sources),
        )
        sets.append(
            WeightedSet(len(sets), weight, solves, candidate)
        )

    problem = RepairProblem(
        instance=instance,
        constraints=constraints,
        metric=metric,
        violations=violations,
        setcover=SetCoverInstance(len(violations), sets),
    )
    if violations:
        _check_coverage(problem)
    return problem


def _check_coverage(problem: RepairProblem) -> None:
    """Every violation set must be solvable by at least one candidate fix."""
    for element, adjacent in enumerate(problem.setcover.element_to_sets):
        if not adjacent:
            violation = problem.violations[element]
            raise UnrepairableError(
                f"violation set {violation!r} admits no mono-local fix; "
                "the constraint set is not repairable by attribute updates"
            )
