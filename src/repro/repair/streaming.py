"""Sustained streaming repair: a bounded, coalescing commit pipeline.

:class:`~repro.repair.incremental.IncrementalRepairer` turns the paper's
batch algorithms into *load → repair → keep loading*; this module turns
that into a continuous ingestion pipeline.  A :class:`StreamingRepairer`
accepts an unbounded stream of inserts/updates/deletes and

* **coalesces** pending operations per ``(relation, key)`` - two updates
  of the same tuple merge (the later write wins per attribute), an
  update folds into the pending insert that created its tuple, an
  insert+delete pair cancels - so a commit round repairs each touched
  tuple once, never changing the committed result (the folded operation
  sequence is equivalent tuple-by-tuple);
* bounds the pending queue at ``max_pending`` keys with explicit
  **backpressure**: the ``"block"`` policy synchronously drains a commit
  round before admitting the operation, the ``"error"`` policy raises
  :class:`~repro.exceptions.BackpressureError` and leaves the queue
  intact.  Operations are never silently dropped;
* **auto-commits** a round every ``commit_interval`` submitted
  operations, keeping Δ-anchored detection's delta small and commit
  latency steady;
* commits **snapshot-free** (``commit(snapshot=False)``) so a round
  costs O(|Δ| + join neighbourhood) instead of the O(|D|) copy the batch
  API pays, and keeps the warm join indexes and columnar snapshots alive
  across rounds.

Commit rounds run under the shared tracer's ``commit`` spans (wrapped in
a ``stream-round`` span carrying queue statistics), which is what
:func:`repro.obs.latency_summary` reads to report p50/p99 commit
latency.

Usage::

    streamer = StreamingRepairer(instance, constraints, commit_interval=64)
    for op in feed:
        streamer.update("lineitem", key=op.key, quantity=op.quantity)
    result = streamer.flush()          # drain the tail of the stream
    repaired = streamer.instance
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.constraints.denial import DenialConstraint
from repro.exceptions import BackpressureError, RepairError, RuntimeConfigError
from repro.model.instance import DatabaseInstance
from repro.obs import Tracer, as_tracer
from repro.repair.incremental import IncrementalRepairer
from repro.repair.result import RepairResult

#: Recognized ``backpressure`` policies.
BACKPRESSURE_POLICIES = ("block", "error")

_INSERT = "insert"
_UPDATE = "update"
_DELETE = "delete"
_REPLACE = "replace"            # delete-then-insert of the same key


@dataclass
class StreamStats:
    """Counters of one :class:`StreamingRepairer`'s lifetime.

    ``submitted`` counts accepted operations by kind; ``coalesced`` how
    many of them merged into an already-pending operation (the queue
    grew by ``submitted - coalesced`` entries overall);
    ``backpressure_blocks`` / ``backpressure_errors`` how often the
    bounded queue intervened.  ``rounds`` counts commit rounds actually
    run (including empty flushes is pointless, so those don't count),
    and ``cells_changed`` / ``violations_repaired`` aggregate the
    per-round :class:`~repro.repair.result.RepairResult` outcomes.
    """

    submitted: dict[str, int] = field(
        default_factory=lambda: {_INSERT: 0, _UPDATE: 0, _DELETE: 0}
    )
    coalesced: int = 0
    rounds: int = 0
    cells_changed: int = 0
    violations_repaired: int = 0
    backpressure_blocks: int = 0
    backpressure_errors: int = 0

    @property
    def total_submitted(self) -> int:
        """All accepted operations across kinds."""
        return sum(self.submitted.values())


class _Pending:
    """One coalesced pending operation for a ``(relation, key)`` slot."""

    __slots__ = ("kind", "row", "changes")

    def __init__(
        self,
        kind: str,
        row: tuple | None = None,
        changes: dict[str, Any] | None = None,
    ) -> None:
        self.kind = kind
        self.row = row
        self.changes = changes


class StreamingRepairer:
    """Continuous-ingestion facade over :class:`IncrementalRepairer`.

    Parameters mirror the ``runtime.streaming`` config block:
    ``max_pending`` bounds the coalesced queue (``None`` = unbounded),
    ``commit_interval`` auto-commits a round every that many accepted
    operations (``None`` = only explicit :meth:`flush` / backpressure
    commits), ``backpressure`` picks the full-queue policy.  Remaining
    keyword arguments (``algorithm``, ``metric``, ``parallel``,
    ``engine``, ``solver_engine``, ``shards``, ``plan``, ...) pass
    through to the inner :class:`IncrementalRepairer` - in particular a
    precompiled :class:`~repro.plan.program.CompiledProgram` is
    validated once and its static analysis reused by *every* commit
    round of the stream (a stale plan raises
    :class:`~repro.exceptions.StalePlanError` at construction, before
    any operation is accepted).

    ``snapshot_results=False`` (the default) makes per-round
    :class:`RepairResult`\\ s snapshot-free (``repaired is None``); read
    the live state via :attr:`instance` when needed.
    """

    def __init__(
        self,
        instance: DatabaseInstance,
        constraints: Iterable[DenialConstraint],
        max_pending: int | None = 1024,
        commit_interval: int | None = 256,
        backpressure: str = "block",
        snapshot_results: bool = False,
        trace: "bool | Tracer" = False,
        **repairer_kwargs: Any,
    ) -> None:
        for name, value in (
            ("max_pending", max_pending),
            ("commit_interval", commit_interval),
        ):
            if value is not None and (
                isinstance(value, bool) or not isinstance(value, int) or value < 1
            ):
                raise RuntimeConfigError(
                    f"{name} must be a positive integer or None, got {value!r}"
                )
        if backpressure not in BACKPRESSURE_POLICIES:
            raise RuntimeConfigError(
                f"unknown backpressure policy {backpressure!r}; "
                f"choose from {', '.join(BACKPRESSURE_POLICIES)}"
            )
        self._max_pending = max_pending
        self._commit_interval = commit_interval
        self._backpressure = backpressure
        self._snapshot_results = snapshot_results
        # One tracer spans the whole stream; the inner repairer shares it
        # so its ``commit`` spans nest under our ``stream-round`` spans
        # (``Tracer.activate`` is reentrant).
        self._tracer = as_tracer(trace)
        self._repairer = IncrementalRepairer(
            instance, constraints, trace=self._tracer, **repairer_kwargs
        )
        self._pending: dict[tuple[str, tuple], _Pending] = {}
        self._ops_since_commit = 0
        self.stats = StreamStats()
        self._last_result: RepairResult | None = None
        self._all_changes: list = []
        self._total_cover_weight = 0.0
        self._total_distance = 0.0

    # -- submitting operations ------------------------------------------------

    def insert(self, relation_name: str, row: Iterable[Any]) -> None:
        """Stream an insertion of a new tuple."""
        relation = self._schema_relation(relation_name)
        values = tuple(row)
        key = tuple(values[p] for p in relation.key_positions)
        slot = (relation_name, key)
        existing = self._pending.get(slot)
        if existing is not None and existing.kind in (_INSERT, _UPDATE, _REPLACE):
            raise RepairError(
                f"streamed insert into {relation_name!r} duplicates the key "
                f"{key!r} of a pending {existing.kind}"
            )
        self._admit(slot)
        existing = self._pending.get(slot)     # "block" may have drained it
        if existing is not None and existing.kind == _DELETE:
            # delete + insert of the same key = replace the original tuple.
            self._pending[slot] = _Pending(_REPLACE, row=values)
            self.stats.coalesced += 1
        else:
            self._pending[slot] = _Pending(_INSERT, row=values)
        self._accepted(_INSERT)

    def update(
        self,
        relation_name: str,
        key: tuple[Any, ...],
        changes: Mapping[str, Any] | None = None,
        **kwargs: Any,
    ) -> None:
        """Stream an attribute update of an existing (or pending) tuple."""
        relation = self._schema_relation(relation_name)
        updates = dict(changes or {})
        updates.update(kwargs)
        if not updates:
            raise RepairError("streamed update carries no attribute changes")
        for attribute in updates:
            relation.position(attribute)       # validate eagerly
        slot = (relation_name, tuple(key))
        existing = self._pending.get(slot)
        if existing is not None and existing.kind == _DELETE:
            raise RepairError(
                f"streamed update of {relation_name!r} key {tuple(key)!r} "
                "targets a tuple with a pending delete"
            )
        self._admit(slot)
        existing = self._pending.get(slot)
        if existing is None:
            self._pending[slot] = _Pending(_UPDATE, changes=updates)
        elif existing.kind == _UPDATE:
            existing.changes.update(updates)   # later write wins per attribute
            self.stats.coalesced += 1
        else:                                  # insert or replace: fold in
            row = list(existing.row)
            for attribute, value in updates.items():
                row[relation.position(attribute)] = value
            existing.row = tuple(row)
            self.stats.coalesced += 1
        self._accepted(_UPDATE)

    def delete(self, relation_name: str, key: tuple[Any, ...]) -> None:
        """Stream a deletion (cancels a pending insert of the same key)."""
        self._schema_relation(relation_name)
        slot = (relation_name, tuple(key))
        existing = self._pending.get(slot)
        if existing is not None:
            if existing.kind == _DELETE:
                raise RepairError(
                    f"streamed delete of {relation_name!r} key {tuple(key)!r} "
                    "duplicates a pending delete"
                )
            if existing.kind == _INSERT:
                # The tuple only ever existed in the queue: cancel both.
                del self._pending[slot]
                self.stats.coalesced += 1
                self._accepted(_DELETE)
                return
            # update/replace of an existing tuple + delete = plain delete.
            self._pending[slot] = _Pending(_DELETE)
            self.stats.coalesced += 1
            self._accepted(_DELETE)
            return
        self._admit(slot)
        self._pending[slot] = _Pending(_DELETE)
        self._accepted(_DELETE)

    # -- committing -----------------------------------------------------------

    def flush(self, verify: bool = False) -> RepairResult | None:
        """Drain the pending queue through one commit round.

        Returns the round's :class:`RepairResult`, or ``None`` when
        nothing was pending (no round runs).
        """
        if not self._pending:
            self._ops_since_commit = 0
            return None
        return self._commit_round(verify=verify)

    @property
    def pending_operations(self) -> int:
        """Coalesced operations currently queued."""
        return len(self._pending)

    @property
    def last_result(self) -> RepairResult | None:
        """The most recent round's result (``None`` before the first)."""
        return self._last_result

    def aggregate_result(self) -> RepairResult:
        """The whole stream's outcome as one :class:`RepairResult`.

        ``changes`` concatenates every round's cell updates in commit
        order (a cell repaired in several rounds appears once per round;
        applying them in order reproduces the final value), ``distance``
        and ``cover_weight`` are summed over rounds, and ``repaired`` is
        a snapshot of the current working instance.  Pending operations
        are not included - :meth:`flush` first.
        """
        return RepairResult(
            repaired=self.instance,
            algorithm=str(self._repairer._algorithm),
            cover_weight=self._total_cover_weight,
            distance=self._total_distance,
            changes=tuple(self._all_changes),
            violations_before=self.stats.violations_repaired,
            verified=False,
            metric=self._repairer._metric.name,
        )

    @property
    def instance(self) -> DatabaseInstance:
        """A copy of the repairer's working instance.

        Pending (un-flushed) operations are *not* reflected; call
        :meth:`flush` first for read-your-writes.
        """
        return self._repairer.instance

    @property
    def tracer(self) -> Tracer:
        """The tracer observing the stream (the null tracer when off)."""
        return self._tracer

    def finish_trace(self):
        """Snapshot the lifetime trace (see :meth:`Tracer.finish`)."""
        return self._tracer.finish()

    def __enter__(self) -> "StreamingRepairer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.flush()
        return False

    # -- internals ------------------------------------------------------------

    def _schema_relation(self, relation_name: str):
        return self._repairer._instance.schema.relation(relation_name)

    def _admit(self, slot: tuple[str, tuple]) -> None:
        """Enforce the queue bound before ``slot`` would join the queue."""
        if (
            self._max_pending is None
            or slot in self._pending                 # coalesces, doesn't grow
            or len(self._pending) < self._max_pending
        ):
            return
        if self._backpressure == "error":
            self.stats.backpressure_errors += 1
            raise BackpressureError(
                f"streaming queue is full ({len(self._pending)} pending, "
                f"max_pending={self._max_pending}); the operation was not "
                "enqueued - flush() or raise max_pending",
                pending=len(self._pending),
                max_pending=self._max_pending,
            )
        self.stats.backpressure_blocks += 1
        self._commit_round()

    def _accepted(self, kind: str) -> None:
        self.stats.submitted[kind] += 1
        self._ops_since_commit += 1
        if (
            self._commit_interval is not None
            and self._ops_since_commit >= self._commit_interval
        ):
            self._commit_round()

    def _commit_round(self, verify: bool = False) -> RepairResult:
        with self._tracer.activate():
            with self._tracer.span(
                "stream-round",
                category="pipeline",
                ops=self._ops_since_commit,
                pending=len(self._pending),
            ):
                for (relation_name, key), op in self._pending.items():
                    if op.kind == _INSERT:
                        self._repairer.insert(relation_name, op.row)
                    elif op.kind == _UPDATE:
                        self._repairer.update(relation_name, key, op.changes)
                    elif op.kind == _DELETE:
                        self._repairer.delete(relation_name, key)
                    else:                      # _REPLACE
                        self._repairer.delete(relation_name, key)
                        self._repairer.insert(relation_name, op.row)
                self._pending.clear()
                self._ops_since_commit = 0
                result = self._repairer.commit(
                    verify=verify, snapshot=self._snapshot_results
                )
        self.stats.rounds += 1
        self.stats.cells_changed += len(result.changes)
        self.stats.violations_repaired += result.violations_before
        self._all_changes.extend(result.changes)
        self._total_cover_weight += result.cover_weight
        self._total_distance += result.distance
        self._last_result = result
        return result
