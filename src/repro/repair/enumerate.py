"""Enumerate all optimal attribute-update repairs (``Rep^At(D, IC)``).

Definition 2.2 defines *the set* of repairs - every consistency-restoring
instance at minimum Δ-distance.  The approximation engine returns one; for
small databases this module returns them all, by enumerating the optimal
covers of the MWSCP reduction and materializing each as a repaired
instance (distinct covers can coincide after the ``C*`` merge, so results
are deduplicated by instance).

A subtlety inherited from the reduction: the MWSCP optimum is over
*cover weights*; after merging same-tuple fixes the realized Δ-distance
can drop below the cover weight, so the distances of the materialized
instances are re-checked and only the true minimum-distance ones are kept.
"""

from __future__ import annotations

from typing import Iterable

from repro.constraints.denial import DenialConstraint
from repro.fixes.distance import CITY_DISTANCE, DistanceMetric, database_delta, get_metric
from repro.model.instance import DatabaseInstance
from repro.repair.apply import apply_cover
from repro.repair.builder import build_repair_problem
from repro.setcover.enumerate import enumerate_optimal_covers
from repro.setcover.result import Cover


def all_optimal_repairs(
    instance: DatabaseInstance,
    constraints: Iterable[DenialConstraint],
    metric: str | DistanceMetric = CITY_DISTANCE,
    max_elements: int = 64,
) -> tuple[DatabaseInstance, ...]:
    """Every minimum-distance attribute-update repair of a small database.

    Raises :class:`~repro.exceptions.SetCoverError` when the violation
    universe exceeds ``max_elements`` (use the approximation engine then).
    """
    metric = get_metric(metric)
    constraints = tuple(constraints)
    problem = build_repair_problem(instance, constraints, metric=metric)
    if problem.is_consistent:
        return (instance.copy(),)

    covers = enumerate_optimal_covers(problem.setcover, max_elements=max_elements)
    candidates: dict[int, DatabaseInstance] = {}
    distances: dict[int, float] = {}
    for cover_sets in covers:
        cover = Cover(tuple(sorted(cover_sets)), 0.0, "enumerated")
        repaired, _changes, _distance = apply_cover(problem, cover)
        key = _instance_key(repaired)
        if key not in candidates:
            candidates[key] = repaired
            distances[key] = database_delta(instance, repaired, metric)

    minimum = min(distances.values())
    epsilon = 1e-9 * (1.0 + abs(minimum))
    return tuple(
        candidates[key]
        for key in sorted(candidates, key=lambda k: _sort_key(candidates[k]))
        if distances[key] <= minimum + epsilon
    )


def _instance_key(instance: DatabaseInstance) -> int:
    return hash(
        tuple(
            (relation.name, tuple(sorted(t.values for t in instance.tuples(relation.name))))
            for relation in instance.schema
        )
    )


def _sort_key(instance: DatabaseInstance):
    return tuple(
        (relation.name, tuple(sorted(str(t.values) for t in instance.tuples(relation.name))))
        for relation in instance.schema
    )
