"""Relational data model: schemas, tuples, and database instances.

This package implements the relational substrate of Section 2 of the paper:
a schema ``(U, R ∪ B, A)`` with per-relation primary keys ``K_R``, a set
``F`` of *flexible* (updatable, integer-valued) attributes disjoint from the
keys, and per-attribute repair weights ``α_A``.
"""

from repro.model.schema import Attribute, AttributeRole, Relation, Schema
from repro.model.tuples import Tuple, TupleRef
from repro.model.instance import DatabaseInstance
from repro.model.columnar import (
    ColumnarRelation,
    ColumnarStore,
    kernel_available,
    store_for,
)

__all__ = [
    "Attribute",
    "AttributeRole",
    "Relation",
    "Schema",
    "Tuple",
    "TupleRef",
    "DatabaseInstance",
    "ColumnarRelation",
    "ColumnarStore",
    "kernel_available",
    "store_for",
]
