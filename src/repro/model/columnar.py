"""Columnar snapshots of database relations for vectorized detection.

The violation-detection kernels (:mod:`repro.violations.kernels`) evaluate
denial constraints over *columns* instead of tuple-by-tuple: per-attribute
NumPy arrays support vectorized built-in masks, array-based equality
joins, and sorted interval lookups for cross-atom inequalities.  This
module owns the column store those kernels read:

* :class:`ColumnarRelation` - one relation's tuples frozen into arrays,
  with an int64 fast path for all-integer columns and an object-array
  fallback that preserves exact Python equality semantics;
* :class:`ColumnarStore` - a per-instance cache of snapshots keyed by the
  instance's :meth:`~repro.model.instance.DatabaseInstance.data_version`
  counters, so a snapshot is rebuilt exactly when its relation mutated
  (the columnar analogue of
  :class:`repro.violations.indexes.JoinIndexCache` maintenance).

NumPy is an *optional* dependency (the ``repro[kernel]`` extra): importing
this module works without it, but building a snapshot raises
:class:`~repro.exceptions.KernelError`, which the detector's ``auto``
engine treats as "stay on the interpreted path".
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Any, Iterable

from repro.exceptions import KernelError
from repro.model.instance import DatabaseInstance
from repro.model.tuples import Tuple
from repro.obs import current_tracer

if TYPE_CHECKING:  # pragma: no cover
    import numpy

try:  # NumPy is optional; see module docstring.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via kernel_available()
    _np = None


def kernel_available() -> bool:
    """True when NumPy is importable, i.e. the kernel engine can run."""
    return _np is not None


def require_numpy() -> "numpy":
    """Return the numpy module or raise :class:`KernelError`."""
    if _np is None:
        raise KernelError(
            "the kernel detection engine needs NumPy; install the "
            "'repro[kernel]' extra or use engine='interpreted'"
        )
    return _np


class ColumnarRelation:
    """One relation's tuples as per-attribute arrays (immutable snapshot).

    ``tuples[i]`` is row ``i``; :meth:`column` returns the object-dtype
    value array of one attribute position and :meth:`numeric` the int64
    fast-path array (``None`` when any value is not a Python int or the
    column overflows int64).  Arrays are built lazily per position and
    cached for the snapshot's lifetime.
    """

    __slots__ = ("relation_name", "tuples", "_columns", "_numeric", "_rows")

    def __init__(self, relation_name: str, tuples: tuple[Tuple, ...]) -> None:
        require_numpy()
        self.relation_name = relation_name
        self.tuples = tuples
        self._columns: dict[int, Any] = {}
        self._numeric: dict[int, Any] = {}
        self._rows: dict[Tuple, int] | None = None

    def __len__(self) -> int:
        return len(self.tuples)

    def column(self, position: int) -> "numpy.ndarray":
        """Object-dtype array of one attribute position (always available)."""
        array = self._columns.get(position)
        if array is None:
            array = _np.empty(len(self.tuples), dtype=object)
            for row, tup in enumerate(self.tuples):
                array[row] = tup.values[position]
            self._columns[position] = array
        return array

    def numeric(self, position: int) -> "numpy.ndarray | None":
        """Int64 array of one position, or ``None`` off the fast path.

        Booleans count as ints (Python semantics: ``True == 1``); any
        other type, or a value outside the int64 range, disables the
        numeric fast path for the whole column.
        """
        if position in self._numeric:
            return self._numeric[position]
        values = [tup.values[position] for tup in self.tuples]
        array = None
        if all(isinstance(value, int) for value in values):
            try:
                array = _np.array(values, dtype=_np.int64)
            except (OverflowError, ValueError):
                array = None
        self._numeric[position] = array
        return array

    def row_of(self, tup: Tuple) -> int | None:
        """Row index of a tuple (anchored detection), ``None`` if absent."""
        if self._rows is None:
            self._rows = {t: row for row, t in enumerate(self.tuples)}
        return self._rows.get(tup)


class ColumnarStore:
    """Version-keyed cache of :class:`ColumnarRelation` snapshots.

    The store does *not* hold the instance (see :func:`store_for`'s
    lifetime note); callers pass it to :meth:`relation`, which compares
    the instance's per-relation ``data_version`` against the version the
    cached snapshot was built at and rebuilds on mismatch.  The
    ``notify_*`` methods mirror ``JoinIndexCache``'s maintenance hooks
    for callers that mutate tables behind the instance's back: they drop
    the affected snapshot so the next access rebuilds.
    """

    def __init__(self) -> None:
        self._snapshots: dict[str, tuple[int, ColumnarRelation]] = {}

    def relation(
        self, instance: DatabaseInstance, relation_name: str
    ) -> ColumnarRelation:
        """Current snapshot of one relation (rebuilt iff it mutated).

        Hit/miss rates land in the ``columnar_cache_hits`` /
        ``columnar_cache_misses`` counters of an active tracer - the
        signal for "are kernel runs amortizing their snapshot builds".
        """
        version = instance.data_version(relation_name)
        cached = self._snapshots.get(relation_name)
        metrics = current_tracer().metrics
        if cached is not None and cached[0] == version:
            metrics.counter("columnar_cache_hits", relation=relation_name).inc()
            return cached[1]
        metrics.counter("columnar_cache_misses", relation=relation_name).inc()
        snapshot = ColumnarRelation(relation_name, instance.tuples(relation_name))
        self._snapshots[relation_name] = (version, snapshot)
        return snapshot

    # -- explicit invalidation hooks (JoinIndexCache parity) -----------------

    def invalidate(self, relation_name: str | None = None) -> None:
        """Drop one relation's snapshot, or all of them."""
        if relation_name is None:
            self._snapshots.clear()
        else:
            self._snapshots.pop(relation_name, None)

    def notify_insert(self, tup: Tuple) -> None:
        """Invalidate after an out-of-band insertion."""
        self.invalidate(tup.relation.name)

    def notify_remove(self, tup: Tuple) -> None:
        """Invalidate after an out-of-band deletion."""
        self.invalidate(tup.relation.name)

    def notify_replace(self, old: Tuple, new: Tuple) -> None:
        """Invalidate after an out-of-band in-place update."""
        self.invalidate(old.relation.name)
        self.invalidate(new.relation.name)

    def rekey(
        self, instance: DatabaseInstance, drop: Iterable[str] = ()
    ) -> None:
        """Re-stamp cached snapshots with ``instance``'s version counters.

        Used when warm snapshots are carried over to a *content-identical*
        successor instance whose version counters restarted (instance
        copies reset them): relations named in ``drop`` lose their
        snapshot, every other cached snapshot is re-keyed to the new
        instance's current version so the next access is a hit.  Callers
        own the content-identity precondition.
        """
        for relation_name in drop:
            self._snapshots.pop(relation_name, None)
        for relation_name, (_version, snapshot) in list(self._snapshots.items()):
            self._snapshots[relation_name] = (
                instance.data_version(relation_name), snapshot
            )

    @property
    def cached_relations(self) -> tuple[str, ...]:
        """Which snapshots currently exist (diagnostics/tests)."""
        return tuple(self._snapshots)


#: id(instance) -> (weakref to the instance, its store).  The weakref both
#: guards against id reuse and evicts the entry when the instance dies;
#: the store itself never references the instance, so no cycle keeps
#: either alive.
_STORES: dict[int, tuple["weakref.ref[DatabaseInstance]", ColumnarStore]] = {}


def store_for(instance: DatabaseInstance) -> ColumnarStore:
    """The process-wide :class:`ColumnarStore` of one instance object.

    Snapshots survive across detection calls on the same instance (the
    hot path of repeated ``find_violations`` / benchmark loops) and die
    with the instance.
    """
    key = id(instance)
    entry = _STORES.get(key)
    if entry is not None and entry[0]() is instance:
        return entry[1]
    store = ColumnarStore()
    try:
        ref = weakref.ref(instance, lambda _ref, _key=key: _STORES.pop(_key, None))
    except TypeError:  # pragma: no cover - DatabaseInstance is weakref-able
        return store
    _STORES[key] = (ref, store)
    return store


def transfer_store(
    old_instance: DatabaseInstance,
    new_instance: DatabaseInstance,
    changed_relations: Iterable[str] = (),
) -> ColumnarStore:
    """Carry one instance's warm snapshots over to its successor.

    The incremental repairer historically swapped instance objects when
    applying a repair, which made every kernel snapshot die with the old
    object even though only the repaired relations actually changed.
    This re-homes the old instance's store under the new object, drops
    the snapshots of ``changed_relations``, and re-keys the surviving
    ones to the new instance's version counters (an instance copy resets
    them, so raw version comparison across the swap would be
    meaningless).  Precondition: the two instances agree on every
    relation *not* named in ``changed_relations``.

    Returns the (possibly empty) store now serving ``new_instance``.
    """
    if old_instance is new_instance:
        store = store_for(new_instance)
        store.rekey(new_instance, drop=changed_relations)
        return store
    key = id(old_instance)
    entry = _STORES.pop(key, None)
    if entry is None or entry[0]() is not old_instance:
        return store_for(new_instance)
    store = entry[1]
    store.rekey(new_instance, drop=changed_relations)
    new_key = id(new_instance)
    try:
        ref = weakref.ref(
            new_instance, lambda _ref, _key=new_key: _STORES.pop(_key, None)
        )
    except TypeError:  # pragma: no cover - DatabaseInstance is weakref-able
        return store
    _STORES[new_key] = (ref, store)
    return store
