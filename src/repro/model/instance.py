"""Database instances: key-indexed collections of tuples per relation.

A :class:`DatabaseInstance` is the paper's ``D``: a finite collection of
ground atoms over a :class:`~repro.model.schema.Schema`.  The instance
enforces the standing assumption ``D |= K`` (primary keys hold) at insert
time - key violations in the *input* are schema errors, not inconsistencies
handled by the repair algorithms.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from repro.exceptions import InstanceError, KeyViolationError
from repro.model.schema import Relation, Schema
from repro.model.tuples import Tuple, TupleRef


class DatabaseInstance:
    """A finite database instance over a schema.

    Tuples are indexed by their primary key per relation, giving O(1)
    lookup of ``t̄(k̄, R, D)`` - the operation the repair construction of
    Definition 3.2 performs for every fix.
    """

    def __init__(self, schema: Schema) -> None:
        self._schema = schema
        self._tables: dict[str, dict[tuple[Any, ...], Tuple]] = {
            r.name: {} for r in schema
        }
        # Per-relation mutation counters.  Derived read-optimized views
        # (the columnar snapshots of :mod:`repro.model.columnar`) key their
        # caches on these, so any insert/replace/delete invalidates exactly
        # the relation it touched.
        self._versions: dict[str, int] = {r.name: 0 for r in schema}

    # -- construction -------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        schema: Schema,
        rows: Mapping[str, Iterable[Iterable[Any]]],
    ) -> "DatabaseInstance":
        """Build an instance from ``{relation_name: [row, ...]}`` mappings."""
        instance = cls(schema)
        for relation_name, relation_rows in rows.items():
            relation = schema.relation(relation_name)
            for row in relation_rows:
                instance.insert(Tuple(relation, tuple(row)))
        return instance

    def insert(self, tup: Tuple) -> None:
        """Insert a tuple; raises :class:`KeyViolationError` on duplicate key."""
        table = self._table(tup.relation.name)
        key = tup.key
        if key in table:
            raise KeyViolationError(
                f"duplicate key {key!r} in relation {tup.relation.name!r}"
            )
        table[key] = tup
        self._versions[tup.relation.name] += 1

    def insert_row(self, relation_name: str, row: Iterable[Any]) -> Tuple:
        """Convenience: build and insert a tuple from raw values."""
        tup = Tuple(self._schema.relation(relation_name), tuple(row))
        self.insert(tup)
        return tup

    # -- lookups -------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The schema this instance conforms to."""
        return self._schema

    def _table(self, relation_name: str) -> dict[tuple[Any, ...], Tuple]:
        try:
            return self._tables[relation_name]
        except KeyError:
            raise InstanceError(
                f"instance has no relation {relation_name!r}"
            ) from None

    def tuples(self, relation_name: str) -> tuple[Tuple, ...]:
        """All tuples of one relation (insertion order)."""
        return tuple(self._table(relation_name).values())

    def all_tuples(self) -> Iterator[Tuple]:
        """Iterate over every tuple of every relation."""
        for table in self._tables.values():
            yield from table.values()

    def get(self, relation_name: str, key: tuple[Any, ...]) -> Tuple:
        """``t̄(k̄, R, D)``: the unique tuple of ``R`` with key ``k̄``."""
        try:
            return self._table(relation_name)[tuple(key)]
        except KeyError:
            raise InstanceError(
                f"no tuple with key {key!r} in relation {relation_name!r}"
            ) from None

    def resolve(self, ref: TupleRef) -> Tuple:
        """Resolve a :class:`TupleRef` in this instance."""
        return self.get(ref.relation_name, ref.key_values)

    def __contains__(self, tup: Tuple) -> bool:
        table = self._tables.get(tup.relation.name)
        if table is None:
            return False
        stored = table.get(tup.key)
        return stored == tup

    def contains_key(self, relation_name: str, key: tuple[Any, ...]) -> bool:
        """True when the relation holds a tuple with the given key."""
        return tuple(key) in self._table(relation_name)

    def count(self, relation_name: str | None = None) -> int:
        """Number of tuples in one relation, or in the whole instance."""
        if relation_name is not None:
            return len(self._table(relation_name))
        return sum(len(t) for t in self._tables.values())

    def __len__(self) -> int:
        return self.count()

    def key_values(self, relation_name: str) -> set[tuple[Any, ...]]:
        """The set ``val(K_R)`` of key-value tuples of a relation."""
        return set(self._table(relation_name))

    def data_version(self, relation_name: str) -> int:
        """Mutation counter of one relation.

        Increments on every insert, replace, and delete touching the
        relation; never decreases.  Cached derived structures (columnar
        snapshots, future index layers) compare it against the version
        they were built at to decide whether a rebuild is due.
        """
        self._table(relation_name)          # validate the name
        return self._versions[relation_name]

    # -- mutation ------------------------------------------------------------

    def replace_tuple(self, new_tuple: Tuple) -> Tuple:
        """Replace the tuple sharing ``new_tuple``'s key; return the old one.

        This is the primitive a repair applies: same relation, same key,
        updated flexible attributes.
        """
        table = self._table(new_tuple.relation.name)
        key = new_tuple.key
        if key not in table:
            raise InstanceError(
                f"cannot replace: no tuple with key {key!r} in "
                f"{new_tuple.relation.name!r}"
            )
        old = table[key]
        table[key] = new_tuple
        self._versions[new_tuple.relation.name] += 1
        return old

    def delete(self, relation_name: str, key: tuple[Any, ...]) -> Tuple:
        """Remove and return the tuple with the given key."""
        table = self._table(relation_name)
        try:
            removed = table.pop(tuple(key))
        except KeyError:
            raise InstanceError(
                f"cannot delete: no tuple with key {key!r} in {relation_name!r}"
            ) from None
        self._versions[relation_name] += 1
        return removed

    def copy(self) -> "DatabaseInstance":
        """Shallow copy (tuples are immutable, so sharing them is safe).

        The copy is a fresh object: it does not inherit a pushdown
        backend binding (see :mod:`repro.violations.pushdown`) - copies
        are about to diverge from the backend-resident image.
        """
        clone = DatabaseInstance(self._schema)
        for name, table in self._tables.items():
            clone._tables[name] = dict(table)
        return clone

    def __getstate__(self) -> dict[str, Any]:
        """Pickle without the pushdown backend binding.

        The binding (:mod:`repro.violations.pushdown`) holds a weak
        reference to a live database connection; neither survives a trip
        into a process-pool worker, so the unpickled instance is simply
        not backend-resident there and detection falls back to the
        in-memory engines.
        """
        state = self.__dict__.copy()
        state.pop("_pushdown_binding", None)
        return state

    # -- comparison ----------------------------------------------------------

    def same_key_sets(self, other: "DatabaseInstance") -> bool:
        """True when both instances have identical ``val(K_R)`` per relation.

        This is the precondition for the Δ-distance of Definition 2.1 to be
        defined between the two instances.
        """
        if set(self._tables) != set(other._tables):
            return False
        return all(
            set(self._tables[name]) == set(other._tables[name])
            for name in self._tables
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseInstance):
            return NotImplemented
        return self._schema == other._schema and self._tables == other._tables

    def __repr__(self) -> str:
        sizes = ", ".join(f"{n}:{len(t)}" for n, t in self._tables.items())
        return f"DatabaseInstance({sizes})"

    # -- display -------------------------------------------------------------

    def to_text(self) -> str:
        """Human-readable dump used by the text-export mode and examples."""
        lines: list[str] = []
        for relation in self._schema:
            table = self._tables[relation.name]
            lines.append(f"-- {relation.name}({', '.join(relation.attribute_names)})")
            for tup in table.values():
                lines.append("   " + ", ".join(str(v) for v in tup.values))
        return "\n".join(lines)
