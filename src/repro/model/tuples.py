"""Immutable database tuples and cross-instance tuple references.

A :class:`Tuple` is a ground atom ``R(c̄)`` (Section 2).  Tuples are
immutable: a repair never mutates a tuple in place, it *replaces* it with a
fixed version carrying the same key.  A :class:`TupleRef` names a tuple by
``(relation, key values)`` - the identity that is preserved across the
original instance and all of its repairs (the paper's ``t̄(k̄, R, D)``).
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.exceptions import InstanceError
from repro.model.schema import Relation

# Distinct "not computed yet" marker for TupleRef._flat_key, whose computed
# value may legitimately be None.
_UNSET: Any = object()


class Tuple:
    """An immutable tuple of a relation.

    Values are stored positionally (matching ``Relation.attributes``) and
    accessed by attribute name.  Flexible attributes must hold integers
    (the paper's domain for ``F`` is ℤ).
    """

    __slots__ = ("_relation", "_values", "_hash", "_ref")

    def __init__(self, relation: Relation, values: tuple[Any, ...] | list[Any]) -> None:
        values = tuple(values)
        if len(values) != relation.arity:
            raise InstanceError(
                f"tuple for {relation.name!r} has arity {len(values)}, "
                f"expected {relation.arity}"
            )
        for attribute, value in zip(relation.attributes, values):
            if attribute.is_flexible and not isinstance(value, int):
                raise InstanceError(
                    f"{relation.name}.{attribute.name} is flexible and must be "
                    f"an integer, got {value!r} ({type(value).__name__})"
                )
        self._relation = relation
        self._values = values
        self._hash = hash((relation.name, values))
        self._ref: TupleRef | None = None

    # -- accessors ----------------------------------------------------------

    @property
    def relation(self) -> Relation:
        """The relation this tuple belongs to."""
        return self._relation

    @property
    def values(self) -> tuple[Any, ...]:
        """Raw values in attribute declaration order."""
        return self._values

    def __getitem__(self, attribute_name: str) -> Any:
        """Value of the attribute called ``attribute_name``."""
        return self._values[self._relation.position(attribute_name)]

    def get(self, attribute_name: str, default: Any = None) -> Any:
        """Like :meth:`__getitem__` but returns ``default`` when missing."""
        if self._relation.has_attribute(attribute_name):
            return self[attribute_name]
        return default

    @property
    def key(self) -> tuple[Any, ...]:
        """Values of the primary-key attributes, in key order."""
        return tuple(self._values[i] for i in self._relation.key_positions)

    @property
    def ref(self) -> "TupleRef":
        """The cross-instance identity of this tuple (cached: both are immutable)."""
        ref = self._ref
        if ref is None:
            ref = self._ref = TupleRef(self._relation.name, self.key)
        return ref

    def as_dict(self) -> dict[str, Any]:
        """Mapping of attribute name -> value."""
        return dict(zip(self._relation.attribute_names, self._values))

    # -- derivation ---------------------------------------------------------

    def replace(self, updates: Mapping[str, Any] | None = None, **kwargs: Any) -> "Tuple":
        """Return a new tuple with some attributes changed.

        Key attributes cannot be changed (the repair identity of a tuple is
        its key); attempting to do so raises :class:`InstanceError`.
        """
        changes = dict(updates or {})
        changes.update(kwargs)
        if not changes:
            return self
        new_values = list(self._values)
        for name, value in changes.items():
            if self._relation.is_key_attribute(name):
                raise InstanceError(
                    f"cannot update key attribute {self._relation.name}.{name}"
                )
            new_values[self._relation.position(name)] = value
        return Tuple(self._relation, new_values)

    def changed_attributes(self, other: "Tuple") -> tuple[str, ...]:
        """Names of attributes on which ``self`` and ``other`` differ.

        Both tuples must belong to the same relation.
        """
        if other.relation.name != self._relation.name:
            raise InstanceError(
                f"cannot diff tuples of {self._relation.name!r} and "
                f"{other.relation.name!r}"
            )
        return tuple(
            name
            for name, a, b in zip(
                self._relation.attribute_names, self._values, other._values
            )
            if a != b
        )

    # -- protocol -----------------------------------------------------------

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tuple):
            return NotImplemented
        return (
            self._relation.name == other._relation.name
            and self._values == other._values
        )

    def __repr__(self) -> str:
        inner = ", ".join(repr(v) for v in self._values)
        return f"{self._relation.name}({inner})"


class TupleRef:
    """Identity of a tuple across database instances: ``(relation, key)``.

    Repairs preserve the set of key values of every relation (Definition
    2.1), so a ``TupleRef`` valid in ``D`` resolves in every repair of ``D``.
    """

    __slots__ = ("relation_name", "key_values", "_hash", "_sort_key", "_flat_key")

    def __init__(self, relation_name: str, key_values: tuple[Any, ...]) -> None:
        self.relation_name = relation_name
        self.key_values = tuple(key_values)
        self._hash = hash((relation_name, self.key_values))
        self._sort_key: tuple | None = None
        self._flat_key: str | None = _UNSET

    def __reduce__(self) -> tuple:
        # Rebuild from the public fields: the cache slots hold a process-local
        # sentinel that must not travel through pickle (worker payloads).
        return (TupleRef, (self.relation_name, self.key_values))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TupleRef):
            return NotImplemented
        return (
            self.relation_name == other.relation_name
            and self.key_values == other.key_values
        )

    def __lt__(self, other: "TupleRef") -> bool:
        return self.sort_key < other.sort_key

    @property
    def sort_key(self) -> tuple:
        """A total order robust to mixed-type key values.

        Values are tagged with their type name so keys like ``("B1",)`` and
        ``(235,)`` compare deterministically instead of raising TypeError.
        Computed once per ref: ordering passes over large violation sets hit
        this on every comparison.
        """
        key = self._sort_key
        if key is None:
            key = self._sort_key = (
                self.relation_name,
                tuple((type(v).__name__, str(v)) for v in self.key_values),
            )
        return key

    @property
    def flat_sort_key(self) -> str | None:
        """A single string whose ``<`` order equals :attr:`sort_key` order.

        :attr:`sort_key` is a nested tuple of strings; comparing two of them
        walks the structure element by element.  Joining the same components
        with NUL - strictly smaller than every character the components can
        contain - yields a flat string with the identical order (the usual
        separator argument: a component that is a strict prefix of another
        loses at the separator position).  The flattening is also injective,
        because refs with equal relation names render the same shape.  Hot
        ordering passes sort these at C speed instead of walking tuples.

        Returns ``None`` when some component does contain NUL (then no flat
        encoding is safe and callers must compare :attr:`sort_key` itself).
        """
        key = self._flat_key
        if key is _UNSET:
            parts = [self.relation_name]
            for value in self.key_values:
                parts.append(type(value).__name__)
                parts.append(str(value))
            key = None if any("\x00" in p for p in parts) else "\x00".join(parts)
            self._flat_key = key
        return key

    def __repr__(self) -> str:
        keys = ", ".join(repr(v) for v in self.key_values)
        return f"TupleRef({self.relation_name}[{keys}])"
