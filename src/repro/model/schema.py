"""Schema definitions: attributes, relations, and the database schema.

Mirrors Section 2 of the paper.  A schema is ``Σ = (U, R ∪ B, A)`` where
``R`` is the set of database predicates and each relation ``R`` has an
attribute list ``A_R``, a primary key ``K_R ⊆ A_R``, and a subset of
*flexible* attributes ``F ∩ A_R`` that the repair process may update.
Flexible attributes take values in ℤ and carry a numerical weight ``α_A``
used by the Δ-distance (Definition 2.1).  Key attributes are always hard
(``F ∩ K_R = ∅``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.exceptions import SchemaError


class AttributeRole(enum.Enum):
    """Whether the repair process may modify an attribute.

    ``HARD`` attributes are never changed by a repair (Definition 2.2
    condition (b)); ``FLEXIBLE`` attributes are the members of the set ``F``
    and must hold integer values.
    """

    HARD = "hard"
    FLEXIBLE = "flexible"


@dataclass(frozen=True)
class Attribute:
    """A named attribute of a relation.

    Parameters
    ----------
    name:
        Attribute name, unique within its relation.
    role:
        :class:`AttributeRole.FLEXIBLE` if the attribute belongs to the set
        ``F`` of updatable numerical attributes, else
        :class:`AttributeRole.HARD`.
    weight:
        The repair weight ``α_A`` of Definition 2.1.  Only meaningful for
        flexible attributes; must be positive.
    """

    name: str
    role: AttributeRole = AttributeRole.HARD
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid attribute name: {self.name!r}")
        if self.name[0].isdigit():
            raise SchemaError(f"attribute name may not start with a digit: {self.name!r}")
        if self.weight <= 0:
            raise SchemaError(
                f"attribute {self.name!r}: weight must be positive, got {self.weight}"
            )

    @property
    def is_flexible(self) -> bool:
        """True when the attribute belongs to the flexible set ``F``."""
        return self.role is AttributeRole.FLEXIBLE

    @staticmethod
    def hard(name: str) -> "Attribute":
        """Shorthand constructor for a hard attribute."""
        return Attribute(name, AttributeRole.HARD)

    @staticmethod
    def flexible(name: str, weight: float = 1.0) -> "Attribute":
        """Shorthand constructor for a flexible attribute with weight ``α``."""
        return Attribute(name, AttributeRole.FLEXIBLE, weight)


@dataclass(frozen=True)
class Relation:
    """A relation (predicate) ``R`` with attributes ``A_R`` and key ``K_R``.

    Invariants enforced at construction time:

    * attribute names are unique;
    * every key attribute exists;
    * the relation has at least one key attribute (the paper assumes each
      relation has a primary key satisfied by the input instance);
    * no key attribute is flexible (``F ∩ K_R = ∅``).
    """

    name: str
    attributes: tuple[Attribute, ...]
    key: tuple[str, ...]
    _index: Mapping[str, int] = field(init=False, repr=False, compare=False, hash=False)
    _key_positions: tuple[int, ...] = field(
        init=False, repr=False, compare=False, hash=False
    )

    def __init__(
        self,
        name: str,
        attributes: Iterable[Attribute | str],
        key: Iterable[str],
    ) -> None:
        attrs = tuple(
            a if isinstance(a, Attribute) else Attribute.hard(a) for a in attributes
        )
        key_names = tuple(key)
        if not name or not name.replace("_", "").isalnum():
            raise SchemaError(f"invalid relation name: {name!r}")
        if not attrs:
            raise SchemaError(f"relation {name!r} must have at least one attribute")
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            raise SchemaError(f"relation {name!r} has duplicate attribute names: {names}")
        if not key_names:
            raise SchemaError(f"relation {name!r} must declare a primary key")
        index = {a.name: i for i, a in enumerate(attrs)}
        for k in key_names:
            if k not in index:
                raise SchemaError(f"relation {name!r}: key attribute {k!r} does not exist")
            if attrs[index[k]].is_flexible:
                raise SchemaError(
                    f"relation {name!r}: key attribute {k!r} cannot be flexible "
                    "(the paper requires F ∩ K_R = ∅)"
                )
        if len(set(key_names)) != len(key_names):
            raise SchemaError(f"relation {name!r} has duplicate key attributes: {key_names}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", attrs)
        object.__setattr__(self, "key", key_names)
        object.__setattr__(self, "_index", index)
        object.__setattr__(
            self, "_key_positions", tuple(index[k] for k in key_names)
        )

    # -- lookups -----------------------------------------------------------

    @property
    def arity(self) -> int:
        """Number of attributes of the relation."""
        return len(self.attributes)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Attribute names in declaration order."""
        return tuple(a.name for a in self.attributes)

    def has_attribute(self, name: str) -> bool:
        """True if the relation declares an attribute called ``name``."""
        return name in self._index

    def attribute(self, name: str) -> Attribute:
        """Return the :class:`Attribute` named ``name``.

        Raises :class:`SchemaError` if it does not exist.
        """
        try:
            return self.attributes[self._index[name]]
        except KeyError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {name!r}"
            ) from None

    def position(self, name: str) -> int:
        """Return the 0-based position of attribute ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {name!r}"
            ) from None

    @property
    def flexible_attributes(self) -> tuple[Attribute, ...]:
        """The flexible attributes (``F ∩ A_R``) in declaration order."""
        return tuple(a for a in self.attributes if a.is_flexible)

    @property
    def key_positions(self) -> tuple[int, ...]:
        """Positions of the key attributes in declaration order of the key."""
        return self._key_positions

    def is_key_attribute(self, name: str) -> bool:
        """True if ``name`` belongs to the primary key ``K_R``."""
        return name in self.key

    def __hash__(self) -> int:
        return hash((self.name, self.attributes, self.key))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self.name == other.name
            and self.attributes == other.attributes
            and self.key == other.key
        )


class Schema:
    """A database schema: a named collection of :class:`Relation` objects.

    The schema is the single source of truth for attribute roles and repair
    weights; instances, constraints, and repair algorithms all consult it.
    """

    def __init__(self, relations: Iterable[Relation] = ()) -> None:
        self._relations: dict[str, Relation] = {}
        for relation in relations:
            self.add(relation)

    def add(self, relation: Relation) -> None:
        """Register ``relation``; rejects duplicate names."""
        if relation.name in self._relations:
            raise SchemaError(f"duplicate relation name: {relation.name!r}")
        self._relations[relation.name] = relation

    def relation(self, name: str) -> Relation:
        """Return the relation called ``name`` or raise :class:`SchemaError`."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"schema has no relation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def relation_names(self) -> tuple[str, ...]:
        """Names of all relations in registration order."""
        return tuple(self._relations)

    def flexible_attributes(self) -> dict[str, tuple[Attribute, ...]]:
        """Map relation name -> its flexible attributes."""
        return {r.name: r.flexible_attributes for r in self}

    def weight(self, relation_name: str, attribute_name: str) -> float:
        """The repair weight ``α_A`` of a flexible attribute."""
        attribute = self.relation(relation_name).attribute(attribute_name)
        if not attribute.is_flexible:
            raise SchemaError(
                f"{relation_name}.{attribute_name} is hard; only flexible "
                "attributes carry a repair weight"
            )
        return attribute.weight

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._relations == other._relations

    def __repr__(self) -> str:
        return f"Schema({', '.join(self._relations)})"
