"""Static constraint-program compilation (``repro compile``).

A compiler from ``(schema, constraint set, engine availability)`` to a
serializable, content-fingerprinted
:class:`~repro.plan.program.CompiledProgram`: the paper's static
properties (locality, the max-frequency bound ``f``, tractable engine
classes) are all derivable before any data loads, so they are derived
*once* and the runtime executes from the artifact -
``repair_database(plan=...)``,
:class:`~repro.repair.incremental.IncrementalRepairer` and
:class:`~repro.repair.streaming.StreamingRepairer` skip per-call
re-analysis, and an on-disk cache (:class:`~repro.plan.cache.PlanCache`)
makes the artifact durable across processes.

Hard contract: planned and unplanned runs produce **byte-identical**
repairs (property-tested across detection × solver engines), and a plan
whose fingerprint no longer matches the live inputs is refused with
:class:`~repro.exceptions.StalePlanError` - never silently applied.
"""

from repro.exceptions import PlanError, StalePlanError
from repro.plan.cache import PlanCache, default_cache_dir
from repro.plan.compiler import compile_program, default_availability
from repro.plan.explain import render_plan_text
from repro.plan.program import (
    DOWNGRADED,
    ELIMINATED,
    PLAN_FORMAT_VERSION,
    STALE,
    CompiledProgram,
    EnginePlan,
    SolverPlan,
    program_fingerprint,
)
from repro.plan.runtime import (
    planned_find_all_violations,
    planned_find_violations,
)

__all__ = [
    "DOWNGRADED",
    "ELIMINATED",
    "PLAN_FORMAT_VERSION",
    "STALE",
    "CompiledProgram",
    "EnginePlan",
    "PlanCache",
    "PlanError",
    "SolverPlan",
    "StalePlanError",
    "compile_program",
    "default_availability",
    "default_cache_dir",
    "planned_find_all_violations",
    "planned_find_violations",
    "program_fingerprint",
    "render_plan_text",
]
