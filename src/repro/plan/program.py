"""The :class:`CompiledProgram` artifact and its content fingerprint.

A compiled program is the *static* half of a repair run: everything the
engine can derive from ``(schema, constraint set, engine availability)``
alone, frozen into a serializable artifact so that per-call re-analysis
(lint passes, locality checking, engine classification, solver-engine
resolution) happens once per configuration instead of once per
``repair_database`` call.

The artifact is keyed by a **content fingerprint**: a SHA-256 digest
over the canonical JSON form of the schema and the constraint list (in
order - violation output order follows constraint order, so order is
semantic).  Engine *availability* (NumPy importable, pushdown assumed)
deliberately stays **out** of the fingerprint: it keys the on-disk cache
separately (:mod:`repro.plan.cache`), so a dependency flip invalidates
cached engine rankings without pretending the constraint program itself
changed.

A plan handed to the runtime is validated with :meth:`CompiledProgram.
require_match` - a fingerprint mismatch raises
:class:`~repro.exceptions.StalePlanError` (code ``LINT062``), never
silently applies a stale plan.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.constraints.denial import DenialConstraint
from repro.exceptions import PlanError, StalePlanError
from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.model.schema import Schema

#: Serialization format version; bumped on incompatible artifact changes.
PLAN_FORMAT_VERSION = 1

#: Plan provenance codes (continuing the stable ``LINTxxx`` space).
ELIMINATED = "LINT060"  # constraint eliminated by plan (dead body)
DOWNGRADED = "LINT061"  # plan dropped a statically unavailable engine
STALE = "LINT062"       # plan fingerprint / cache entry is stale

#: Entry actions.
EXECUTE = "execute"
SKIP = "skip"


def schema_document(schema: Schema) -> dict[str, Any]:
    """Canonical JSON form of a schema (order-preserving, role-complete)."""
    return {
        "relations": [
            {
                "name": relation.name,
                "key": list(relation.key),
                "attributes": [
                    {
                        "name": attribute.name,
                        "role": attribute.role.value,
                        "weight": attribute.weight,
                    }
                    for attribute in relation.attributes
                ],
            }
            for relation in schema
        ]
    }


def constraint_documents(
    constraints: Sequence[DenialConstraint],
) -> list[dict[str, str]]:
    """Canonical JSON form of a constraint list (order is semantic)."""
    return [
        {"name": constraint.name, "text": str(constraint)}
        for constraint in constraints
    ]


def fingerprint_document(
    schema: Schema, constraints: Sequence[DenialConstraint]
) -> dict[str, Any]:
    """Everything the fingerprint covers, as one JSON document."""
    return {
        "version": PLAN_FORMAT_VERSION,
        "schema": schema_document(schema),
        "constraints": constraint_documents(constraints),
    }


def canonical_json(document: Mapping[str, Any]) -> str:
    """Deterministic JSON: sorted keys, no whitespace."""
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def program_fingerprint(
    schema: Schema, constraints: Iterable[DenialConstraint]
) -> str:
    """Stable SHA-256 hex digest of ``(schema, constraints)``."""
    document = fingerprint_document(schema, tuple(constraints))
    return hashlib.sha256(canonical_json(document).encode("utf-8")).hexdigest()


def availability_signature(availability: Mapping[str, bool]) -> str:
    """Short digest of an engine-availability map (cache key component)."""
    payload = canonical_json({k: bool(v) for k, v in availability.items()})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


@dataclass(frozen=True)
class EnginePlan:
    """The static verdict for one constraint.

    ``engines`` is the ranked execution chain (most to least preferred);
    the runtime tries it left to right, falling through on
    :class:`~repro.exceptions.KernelError` /
    :class:`~repro.exceptions.PushdownError`, so the chain always ends
    in ``"interpreted"`` for executed entries.  ``conditional`` names
    chain engines whose execution is data-dependent (``LINT050`` /
    ``LINT051``): statically admissible, but the runtime may refuse
    them.  ``cost`` carries the static estimate that produced the
    ranking (atom count, join arity, selectivity class, per-engine
    scores).
    """

    index: int
    label: str
    text: str
    action: str
    engines: tuple[str, ...]
    conditional: tuple[str, ...]
    cost: Mapping[str, Any]
    predicted_frequency: int

    @property
    def executed(self) -> bool:
        """True when the runtime runs this constraint's detection."""
        return self.action == EXECUTE

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "label": self.label,
            "text": self.text,
            "action": self.action,
            "engines": list(self.engines),
            "conditional": list(self.conditional),
            "cost": dict(self.cost),
            "predicted_frequency": self.predicted_frequency,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EnginePlan":
        return cls(
            index=int(data["index"]),
            label=str(data["label"]),
            text=str(data["text"]),
            action=str(data["action"]),
            engines=tuple(str(e) for e in data["engines"]),
            conditional=tuple(str(e) for e in data["conditional"]),
            cost=dict(data["cost"]),
            predicted_frequency=int(data["predicted_frequency"]),
        )


@dataclass(frozen=True)
class SolverPlan:
    """Static solver-engine and decomposition pre-selection.

    ``engine`` is the pre-resolved set-cover engine (what
    ``resolve_solver_engine("auto")`` would pick at runtime);
    ``predicted_max_frequency`` the static bound on the MWSC element
    frequency ``f`` (the layer algorithm's approximation factor);
    ``locality_ok`` whether the Section-2 locality conditions all hold,
    letting the runtime skip ``check_local_set`` re-analysis;
    ``decomposition`` the pre-selected solving strategy over connected
    components.
    """

    engine: str
    predicted_max_frequency: int
    locality_ok: bool
    decomposition: str = "connected-components"

    def to_dict(self) -> dict[str, Any]:
        return {
            "engine": self.engine,
            "predicted_max_frequency": self.predicted_max_frequency,
            "locality_ok": self.locality_ok,
            "decomposition": self.decomposition,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SolverPlan":
        return cls(
            engine=str(data["engine"]),
            predicted_max_frequency=int(data["predicted_max_frequency"]),
            locality_ok=bool(data["locality_ok"]),
            decomposition=str(data.get("decomposition", "connected-components")),
        )


def stale_plan_error(
    expected: str, actual: str, *, context: str = ""
) -> StalePlanError:
    """Build the structured refusal for a fingerprint mismatch."""
    suffix = f" ({context})" if context else ""
    diagnostic = Diagnostic(
        code=STALE,
        severity=Severity.ERROR,
        constraint=None,
        message=(
            "compiled plan is stale: fingerprint "
            f"{expected[:12]}… does not match the live schema/constraints "
            f"fingerprint {actual[:12]}…{suffix}"
        ),
        details={"expected": expected, "actual": actual},
        suggestion="recompile the plan with `repro compile`",
    )
    return StalePlanError(
        diagnostic.message,
        expected=expected,
        actual=actual,
        diagnostics=(diagnostic,),
    )


@dataclass(frozen=True)
class CompiledProgram:
    """The serializable result of static constraint-program compilation.

    ``entries`` has one :class:`EnginePlan` per input constraint, in
    input order (dead constraints are present with ``action="skip"`` so
    indices line up); ``solver`` the static solver pre-selection;
    ``lint`` the full lint report the compiler ran; ``provenance`` the
    plan-added diagnostics (``LINT060``/``LINT061``).
    """

    fingerprint: str
    availability: Mapping[str, bool]
    entries: tuple[EnginePlan, ...]
    solver: SolverPlan
    lint: LintReport = field(compare=False)
    provenance: tuple[Diagnostic, ...] = ()
    version: int = PLAN_FORMAT_VERSION

    # -- structure -----------------------------------------------------------

    @property
    def executed_entries(self) -> tuple[EnginePlan, ...]:
        """Entries the runtime actually detects (dead ones skipped)."""
        return tuple(e for e in self.entries if e.executed)

    @property
    def skipped_entries(self) -> tuple[EnginePlan, ...]:
        """Entries statically eliminated from execution."""
        return tuple(e for e in self.entries if not e.executed)

    @property
    def availability_signature(self) -> str:
        """Cache-key component for the availability map."""
        return availability_signature(self.availability)

    def entry(self, index: int) -> EnginePlan:
        """The entry for the ``index``-th input constraint."""
        return self.entries[index]

    # -- validation ----------------------------------------------------------

    def require_match(
        self, schema: Schema, constraints: Sequence[DenialConstraint]
    ) -> None:
        """Refuse to apply this plan to anything but its own inputs.

        Raises :class:`~repro.exceptions.StalePlanError` (``LINT062``)
        when the live ``(schema, constraints)`` fingerprint differs from
        the one this program was compiled from, and
        :class:`~repro.exceptions.PlanError` on a structural mismatch
        (entry count vs. constraint count - a corrupted artifact).
        """
        actual = program_fingerprint(schema, tuple(constraints))
        if actual != self.fingerprint:
            raise stale_plan_error(self.fingerprint, actual)
        if len(self.entries) != len(tuple(constraints)):
            raise PlanError(
                f"corrupt plan: {len(self.entries)} entries for "
                f"{len(tuple(constraints))} constraints despite matching "
                "fingerprint"
            )

    def executed_constraints(
        self, constraints: Sequence[DenialConstraint]
    ) -> tuple[DenialConstraint, ...]:
        """The caller's constraint objects this plan executes, in order."""
        return tuple(constraints[e.index] for e in self.executed_entries)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "fingerprint": self.fingerprint,
            "availability": {k: bool(v) for k, v in self.availability.items()},
            "entries": [entry.to_dict() for entry in self.entries],
            "solver": self.solver.to_dict(),
            "lint": self.lint.to_dict(),
            "provenance": [d.to_dict() for d in self.provenance],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CompiledProgram":
        version = int(data.get("version", -1))
        if version != PLAN_FORMAT_VERSION:
            raise PlanError(
                f"unsupported plan format version {version} "
                f"(this build reads version {PLAN_FORMAT_VERSION})"
            )
        return cls(
            fingerprint=str(data["fingerprint"]),
            availability={
                str(k): bool(v) for k, v in dict(data["availability"]).items()
            },
            entries=tuple(
                EnginePlan.from_dict(entry) for entry in data["entries"]
            ),
            solver=SolverPlan.from_dict(data["solver"]),
            lint=LintReport.from_dict(data["lint"]),
            provenance=tuple(
                Diagnostic.from_dict(d) for d in data.get("provenance", ())
            ),
            version=version,
        )

    @classmethod
    def from_json(cls, text: str) -> "CompiledProgram":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise PlanError(f"unreadable plan artifact: {error}") from error
        if not isinstance(data, dict):
            raise PlanError("unreadable plan artifact: not a JSON object")
        return cls.from_dict(data)
