"""Executing detection *from* a compiled plan.

The unplanned ``auto`` engine re-derives, per call and per constraint,
which engine to try first; the planned path reads the per-constraint
chain straight out of the :class:`~repro.plan.program.CompiledProgram`
and only keeps the *runtime* decisions: a chain's pushdown step is
skipped for non-backend-resident instances (the same gate
``resolve_engine("auto")`` applies), and an engine that refuses at
execution time (:class:`~repro.exceptions.KernelError` /
:class:`~repro.exceptions.PushdownError`) falls through to the next
chain entry with the downgrade recorded on the
``plan_engine_downgrades`` counter.  Every chain ends in
``"interpreted"``, which cannot refuse.

Byte parity with the unplanned path holds by construction: all engines
feed the same minimality + ordering funnel
(:func:`repro.violations.detector._ordered_violation_sets`), dead
entries have provably empty violation sets, and results concatenate in
original constraint order.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.constraints.denial import DenialConstraint
from repro.exceptions import KernelError, PlanError, PushdownError
from repro.model.instance import DatabaseInstance
from repro.obs import current_tracer
from repro.plan.program import CompiledProgram
from repro.violations.detector import ViolationSet, find_violations
from repro.violations.pushdown import pushdown_ready


def effective_chain(
    chain: Sequence[str], instance: DatabaseInstance
) -> tuple[str, ...]:
    """The plan chain minus steps this instance can never run.

    Pushdown needs a backend-resident instance; dropping it here (the
    static analogue of ``resolve_engine("auto")``'s residency gate)
    avoids a guaranteed refusal per constraint per round.
    """
    if "pushdown" in chain and not pushdown_ready(instance):
        return tuple(e for e in chain if e != "pushdown")
    return tuple(chain)


def planned_find_violations(
    instance: DatabaseInstance,
    constraint: DenialConstraint,
    chain: Sequence[str],
    max_violations: int | None = None,
) -> tuple[ViolationSet, ...]:
    """Run one constraint's detection down its planned engine chain."""
    engines = effective_chain(chain, instance)
    if not engines:
        raise PlanError(
            f"{constraint.label}: planned engine chain is empty - "
            "corrupt or hand-edited plan artifact"
        )
    last = len(engines) - 1
    for position, engine in enumerate(engines):
        if position == last:
            return find_violations(instance, constraint, max_violations, engine)
        try:
            return find_violations(instance, constraint, max_violations, engine)
        except (KernelError, PushdownError):
            current_tracer().metrics.counter(
                "plan_engine_downgrades",
                constraint=constraint.label,
                engine=engine,
            ).inc()
    raise PlanError(f"{constraint.label}: exhausted planned engine chain")


def planned_find_all_violations(
    instance: DatabaseInstance,
    constraints: Sequence[DenialConstraint],
    plan: CompiledProgram,
    max_violations: int | None = None,
    executor: Any = None,
) -> tuple[ViolationSet, ...]:
    """``I(D, IC)`` driven by a compiled plan, in constraint order.

    The caller has already validated the plan against
    ``(instance.schema, constraints)`` (:meth:`CompiledProgram.
    require_match`), so entries index the constraint list directly.
    Dead entries are skipped - their violation sets are provably empty.
    The executor fan-out mirrors :func:`~repro.violations.detector.
    find_all_violations`: one work item per executed constraint, serial
    whenever any effective chain still leads with pushdown (the backend
    connection is not shareable across workers).
    """
    work = [
        (constraints[entry.index], effective_chain(entry.engines, instance))
        for entry in plan.executed_entries
    ]
    per_constraint = _planned_parallel(instance, work, max_violations, executor)
    if per_constraint is None:
        per_constraint = [
            planned_find_violations(instance, constraint, chain, max_violations)
            for constraint, chain in work
        ]
    result: list[ViolationSet] = []
    for violations in per_constraint:
        result.extend(violations)
    return tuple(result)


def _planned_parallel(
    instance: DatabaseInstance,
    work: "list[tuple[DenialConstraint, tuple[str, ...]]]",
    max_violations: int | None,
    executor: Any,
) -> "list[tuple[ViolationSet, ...]] | None":
    """Fan planned detection out per constraint; ``None`` = stay serial."""
    if executor is None:
        return None
    if any(chain and chain[0] == "pushdown" for _, chain in work):
        return None
    from repro.runtime.executor import as_executor, balanced_chunks
    from repro.runtime.workers import detect_planned_batch, detection_cost
    from repro.violations.detector import _reintern_constraint

    ex = as_executor(executor)
    if not ex.is_parallel or len(work) <= 1:
        return None
    tracer = current_tracer()
    trace_remote = tracer.enabled and ex.backend == "process"
    costs = [detection_cost(constraint) for constraint, _ in work]
    chunks = balanced_chunks(costs, ex.n_chunks(len(work)))
    payloads = [
        (
            instance,
            [work[i] for i in chunk],
            max_violations,
            trace_remote,
        )
        for chunk in chunks
    ]
    results: "list[tuple[ViolationSet, ...] | None]" = [None] * len(work)
    for chunk, outcome in zip(chunks, ex.map(detect_planned_batch, payloads)):
        if trace_remote:
            batch, remote = outcome
            tracer.attach_remote(remote)
        else:
            batch = outcome
        for index, violations in zip(chunk, batch):
            results[index] = _reintern_constraint(violations, work[index][0])
    return results  # type: ignore[return-value]
