"""The static constraint-program compiler.

:func:`compile_program` turns ``(schema, constraints, engine
availability)`` into a :class:`~repro.plan.program.CompiledProgram` in
four passes, all pure static analysis over the existing
:mod:`repro.lint` machinery:

1. **canonicalization** - rerun the lint satisfiability/subsumption
   passes; constraints with provably unsatisfiable bodies (``LINT010``,
   an *exact* verdict) are eliminated from execution with a ``LINT060``
   provenance record - a dead constraint has zero violations on every
   instance, so skipping its detection is byte-identical by
   construction.  Subsumed and duplicate constraints (``LINT020`` /
   ``LINT021``) are *kept executing*: removal preserves violation
   coverage but not byte-identity of the computed repair, and byte
   parity with the unplanned path is this compiler's hard contract.
   Their lint diagnostics stay in the plan as advisory provenance.
2. **engine classification** - per-constraint kernel/pushdown
   compilability (:func:`repro.lint.compilability.classify_constraint`)
   plus the static cost model (:mod:`repro.plan.cost`) produce a ranked
   engine chain; engines the compile-time environment lacks are dropped
   with ``LINT061`` records, engines the runtime may refuse for data
   reasons stay in the chain (the fallback is preserved and recorded at
   run time).
3. **solver pre-selection** - locality verdict, the predicted MWSC
   max-frequency bound ``f`` (:mod:`repro.lint.bounds`), and the
   flat-vs-object set-cover engine choice are resolved once.
4. **fingerprinting** - the canonical JSON of ``(schema, constraints)``
   is hashed (SHA-256) so the runtime can refuse stale plans.

``strict=True`` refuses (:class:`~repro.exceptions.PlanError`) any
program with a constraint whose compiled execution cannot be
*statically guaranteed* - i.e. its kernel/pushdown classification is
conditional (``LINT050``/``LINT051``), so the interpreted fallback may
trigger at runtime.  Environment gaps (NumPy absent) are downgrades,
not strict failures: they say nothing about the constraint itself.
"""

from __future__ import annotations

from typing import Iterable

from repro.constraints.denial import DenialConstraint
from repro.exceptions import PlanError
from repro.lint.analyzer import lint_constraints
from repro.lint.bounds import builtin_attribute_overlap
from repro.lint.compilability import classify_constraint
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.satisfiability import body_is_satisfiable
from repro.model.schema import Schema
from repro.plan.cost import estimate_cost, rank_engines
from repro.plan.program import (
    DOWNGRADED,
    ELIMINATED,
    EXECUTE,
    SKIP,
    CompiledProgram,
    EnginePlan,
    SolverPlan,
    program_fingerprint,
)
from repro.setcover.solvers import resolve_solver_engine
from repro.violations.kernels import kernel_available


def _predicted_frequency(
    constraint: DenialConstraint,
    schema: Schema,
    overlap: dict[tuple[str, str], int],
) -> int:
    """Per-constraint static ``f`` bound, keyed by identity not label.

    The body of :func:`repro.lint.bounds.predicted_max_frequency`, run
    for one constraint: label-keyed dict lookups would conflate distinct
    constraints that share a name.
    """
    builtin_attributes = constraint.attributes_in_builtins(schema)
    total = 0
    for atom in constraint.relation_atoms:
        relation = schema.relation(atom.relation_name)
        for attribute in relation.attributes:
            if not attribute.is_flexible:
                continue
            pair = (relation.name, attribute.name)
            if pair in builtin_attributes:
                total += overlap.get(pair, 0)
    return total


def default_availability(
    *,
    kernel: bool | None = None,
    pushdown: bool | None = None,
) -> dict[str, bool]:
    """The compile-time engine-availability map.

    ``kernel`` defaults to the NumPy import probe.  ``pushdown``
    defaults to ``True``: backend residency is a property of the
    *instance*, not the configuration, so the plan keeps pushdown in
    the chains and the runtime skips it (recording the downgrade) for
    non-resident instances - exactly the ``auto`` engine's gate.
    """
    return {
        "kernel": kernel_available() if kernel is None else bool(kernel),
        "pushdown": True if pushdown is None else bool(pushdown),
    }


def compile_program(
    schema: Schema,
    constraints: Iterable[DenialConstraint],
    *,
    kernel: bool | None = None,
    pushdown: bool | None = None,
    strict: bool = False,
) -> CompiledProgram:
    """Compile ``(schema, constraints)`` into a :class:`CompiledProgram`.

    Raises :class:`~repro.exceptions.PlanError` when any constraint
    fails schema validation (``LINT001`` - its structure cannot be
    planned), or, under ``strict=True``, when any executed constraint
    is only conditionally compilable (see the module docstring).
    """
    constraints = tuple(constraints)
    availability = default_availability(kernel=kernel, pushdown=pushdown)
    lint = lint_constraints(schema, constraints)

    invalid = lint.by_code("LINT001")
    if invalid:
        raise PlanError(
            f"cannot compile: {len(invalid)} constraint(s) fail schema "
            "validation (LINT001)",
            diagnostics=invalid,
        )

    satisfiable = [body_is_satisfiable(c) for c in constraints]
    # The f bound counts candidate-fix overlaps among constraints that
    # can actually produce violations; dead bodies contribute none.
    live = [c for c, ok in zip(constraints, satisfiable) if ok]
    overlap = builtin_attribute_overlap(live, schema)
    provenance: list[Diagnostic] = []
    strict_blockers: list[Diagnostic] = []
    entries: list[EnginePlan] = []
    for index, constraint in enumerate(constraints):
        predicted = _predicted_frequency(constraint, schema, overlap)
        if not satisfiable[index]:
            # Exact verdict: the body has no satisfying assignment over
            # the integers, so I(D, ic) = ∅ on every instance and the
            # entry contributes nothing to detection, candidates, or
            # the MWSC instance.  Eliminating it is byte-identical.
            provenance.append(
                Diagnostic(
                    code=ELIMINATED,
                    severity=Severity.INFO,
                    constraint=constraint.label,
                    message=(
                        f"{constraint.label}: eliminated by plan - body is "
                        "unsatisfiable (exact verdict), detection skipped"
                    ),
                    details={"index": index, "reason": "unsatisfiable-body"},
                    suggestion="remove the constraint from the configuration",
                )
            )
            entries.append(
                EnginePlan(
                    index=index,
                    label=constraint.label,
                    text=str(constraint),
                    action=SKIP,
                    engines=(),
                    conditional=(),
                    cost=estimate_cost(constraint).to_dict(),
                    predicted_frequency=predicted,
                )
            )
            continue

        classification = classify_constraint(constraint, schema)
        estimate = estimate_cost(constraint)
        chain, dropped = rank_engines(
            estimate,
            kernel_available=availability["kernel"],
            pushdown_available=availability["pushdown"],
        )
        conditional = tuple(
            engine
            for engine in chain
            if engine in ("kernel", "pushdown")
            and not classification.unconditional
        )
        for engine in dropped:
            provenance.append(
                Diagnostic(
                    code=DOWNGRADED,
                    severity=Severity.INFO,
                    constraint=constraint.label,
                    message=(
                        f"{constraint.label}: plan downgraded engine - "
                        f"{engine} unavailable at compile time, chain is "
                        f"{'>'.join(chain)}"
                    ),
                    details={"index": index, "engine": engine},
                    suggestion=(
                        "install the optional dependency to restore the "
                        f"{engine} engine"
                    ),
                )
            )
        if not classification.unconditional:
            strict_blockers.append(
                Diagnostic(
                    code=DOWNGRADED,
                    severity=Severity.WARNING,
                    constraint=constraint.label,
                    message=(
                        f"{constraint.label}: compiled execution is "
                        "data-dependent - hard attribute(s) "
                        + ", ".join(
                            f"{r}.{a}"
                            for r, a in classification.conditional_attributes
                        )
                        + " may force the interpreted fallback at runtime"
                    ),
                    details={
                        "index": index,
                        "conditional_attributes": [
                            list(pair)
                            for pair in classification.conditional_attributes
                        ],
                    },
                    suggestion=(
                        "mark the attribute(s) flexible or accept the "
                        "runtime fallback (non-strict compilation)"
                    ),
                )
            )
        entries.append(
            EnginePlan(
                index=index,
                label=constraint.label,
                text=str(constraint),
                action=EXECUTE,
                engines=chain,
                conditional=conditional,
                cost=estimate.to_dict(),
                predicted_frequency=predicted,
            )
        )

    if strict and strict_blockers:
        raise PlanError(
            f"strict compilation failed: {len(strict_blockers)} "
            "constraint(s) are not statically compilable (runtime may "
            "fall back to the interpreted engine)",
            diagnostics=strict_blockers,
        )

    locality_errors = [
        d
        for code in ("LINT030", "LINT031", "LINT032")
        for d in lint.by_code(code)
    ]
    executed = [e for e in entries if e.executed]
    solver = SolverPlan(
        engine=resolve_solver_engine("auto"),
        predicted_max_frequency=max(
            (e.predicted_frequency for e in executed), default=0
        ),
        locality_ok=not locality_errors,
    )
    return CompiledProgram(
        fingerprint=program_fingerprint(schema, constraints),
        availability=availability,
        entries=tuple(entries),
        solver=solver,
        lint=lint,
        provenance=tuple(provenance),
    )
