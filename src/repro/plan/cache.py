"""On-disk plan cache keyed by content fingerprint + engine availability.

Cache layout: one JSON artifact per ``(fingerprint, availability)``
pair, named ``<fingerprint>-<availability_signature>.json`` under the
cache directory.  The directory resolves, in order, from the explicit
argument, the ``REPRO_PLAN_CACHE`` environment variable,
``$XDG_CACHE_HOME/repro/plans``, and ``~/.cache/repro/plans``.

Hits and misses surface as :mod:`repro.obs` counters (``plan_cache_hits``
/ ``plan_cache_misses`` / ``plan_cache_stale``) - by default on the
active tracer's metrics registry (with tracing off the null registry
swallows them at zero cost); a long-lived owner like the
:mod:`repro.service` job runtime can instead pass its own
:class:`~repro.obs.metrics.MetricsRegistry` at construction so counters
accumulate across jobs rather than per traced run.  A cached file whose
embedded fingerprint disagrees
with the requested one (hand-edited, corrupted, truncated) counts as
*stale* (``LINT062``) and is treated as a miss - it is never applied.
"""

from __future__ import annotations

import os
from pathlib import Path

from typing import Sequence

from repro.constraints.denial import DenialConstraint
from repro.exceptions import PlanError
from repro.model.schema import Schema
from repro.obs import current_tracer
from repro.obs.metrics import MetricsRegistry
from repro.plan.compiler import compile_program, default_availability
from repro.plan.program import (
    CompiledProgram,
    availability_signature,
    program_fingerprint,
)


def default_cache_dir() -> Path:
    """The plan-cache directory the environment resolves to."""
    override = os.environ.get("REPRO_PLAN_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "plans"


class PlanCache:
    """A small content-addressed store of compiled plans.

    ``metrics`` fixes the registry the hit/miss/stale counters land in;
    by default each lookup reports to whatever tracer is active at call
    time.
    """

    def __init__(
        self,
        directory: "str | os.PathLike[str] | None" = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.directory = (
            Path(directory) if directory is not None else default_cache_dir()
        )
        self._metrics = metrics

    @property
    def metrics(self) -> "MetricsRegistry":
        """The registry lookups report to (owned or the active tracer's)."""
        if self._metrics is not None:
            return self._metrics
        return current_tracer().metrics

    def path_for(self, fingerprint: str, availability_sig: str) -> Path:
        """Where the artifact for one cache key lives."""
        return self.directory / f"{fingerprint}-{availability_sig}.json"

    def load(
        self,
        schema: Schema,
        constraints: Sequence[DenialConstraint],
        *,
        kernel: bool | None = None,
        pushdown: bool | None = None,
    ) -> CompiledProgram | None:
        """A cached plan for the live inputs, or ``None`` on a miss."""
        metrics = self.metrics
        availability = default_availability(kernel=kernel, pushdown=pushdown)
        fingerprint = program_fingerprint(schema, tuple(constraints))
        path = self.path_for(fingerprint, availability_signature(availability))
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            metrics.counter("plan_cache_misses").inc()
            return None
        try:
            program = CompiledProgram.from_json(text)
        except PlanError:
            metrics.counter("plan_cache_stale").inc()
            metrics.counter("plan_cache_misses").inc()
            return None
        if program.fingerprint != fingerprint:
            # LINT062: the file content no longer matches its key.
            metrics.counter("plan_cache_stale").inc()
            metrics.counter("plan_cache_misses").inc()
            return None
        metrics.counter("plan_cache_hits").inc()
        return program

    def store(self, program: CompiledProgram) -> Path:
        """Persist a compiled plan; atomic within the cache directory."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(
            program.fingerprint, program.availability_signature
        )
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(program.to_json(), encoding="utf-8")
        os.replace(tmp, path)
        return path

    def get_or_compile(
        self,
        schema: Schema,
        constraints: Sequence[DenialConstraint],
        *,
        kernel: bool | None = None,
        pushdown: bool | None = None,
        strict: bool = False,
    ) -> "tuple[CompiledProgram, bool]":
        """``(program, hit)``: load from cache or compile and store.

        Strict compilation failures propagate as
        :class:`~repro.exceptions.PlanError` and nothing is stored; a
        cached (necessarily non-strict-validated) plan is re-checked
        against the strict gate so ``strict=True`` callers never
        receive a plan a strict compile would have refused.
        """
        cached = self.load(
            schema, constraints, kernel=kernel, pushdown=pushdown
        )
        if cached is not None:
            executed = {e.label for e in cached.executed_entries}
            conditional = [
                d
                for d in cached.lint.by_code("LINT050")
                if d.constraint in executed
            ]
            if strict and conditional:
                compile_program(
                    schema,
                    constraints,
                    kernel=kernel,
                    pushdown=pushdown,
                    strict=True,
                )  # raises PlanError with the structured diagnostics
            return cached, True
        program = compile_program(
            schema,
            constraints,
            kernel=kernel,
            pushdown=pushdown,
            strict=strict,
        )
        self.store(program)
        return program, False
