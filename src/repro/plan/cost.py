"""Static per-constraint cost model for engine ranking.

Ranks the detection engines for one constraint **before any data is
loaded**, from three statically knowable signals:

* **atom count** - each database atom joins a whole relation, so the
  enumeration work grows with the join width (this is the same signal
  :func:`repro.runtime.workers.detection_cost` uses for load
  balancing);
* **join arity** - the number of join variables; every join variable
  adds an index probe per candidate row;
* **selectivity class** - from the declared comparator kinds: equality
  built-ins prune hardest, order comparisons (``<``, ``>``, ``<=``,
  ``>=``) prune less, disequalities (``!=``) barely prune, and a
  constraint with no built-ins at all is a raw scan/cross product.

The per-engine weights encode the relative per-row cost measured by the
committed benchmark snapshots (``benchmarks/results/BENCH_*.json``):
SQL pushdown ≥3x faster than the columnar kernel at TPC-H scale
(``BENCH_pushdown.json``), the kernel 3.6-4.3x faster than the
interpreted enumeration (``BENCH_detect.json``).  The model only has to
*order* engines per constraint - absolute cost is data-dependent and
deliberately out of scope - so coarse, stable weights are the right
tool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.constraints.atoms import Comparator
from repro.constraints.denial import DenialConstraint

#: Relative per-row work of each engine (lower = faster), justified by
#: the committed BENCH snapshots (see module docstring).
ENGINE_WEIGHTS: Mapping[str, float] = {
    "pushdown": 1.0,
    "kernel": 3.0,
    "interpreted": 12.0,
}

#: Selectivity classes, most selective first.
EQUALITY = "equality"
ORDER = "order"
INEQUALITY = "inequality"
SCAN = "scan"

_CLASS_FACTOR: Mapping[str, float] = {
    EQUALITY: 1.0,
    ORDER: 2.0,
    INEQUALITY: 4.0,
    SCAN: 8.0,
}

_ORDER_COMPARATORS = (
    Comparator.LT,
    Comparator.GT,
    Comparator.LE,
    Comparator.GE,
)


@dataclass(frozen=True)
class CostEstimate:
    """The static cost signals and per-engine scores for one constraint."""

    atoms: int
    join_arity: int
    selectivity_class: str
    work: float
    scores: Mapping[str, float]

    def to_dict(self) -> dict[str, object]:
        return {
            "atoms": self.atoms,
            "join_arity": self.join_arity,
            "selectivity_class": self.selectivity_class,
            "work": self.work,
            "scores": dict(self.scores),
        }


def selectivity_class(constraint: DenialConstraint) -> str:
    """The most selective predicate class the constraint declares."""
    comparators = [b.comparator for b in constraint.builtins]
    comparators.extend(c.comparator for c in constraint.variable_comparisons)
    if constraint.join_variables or Comparator.EQ in comparators:
        return EQUALITY
    if any(c in _ORDER_COMPARATORS for c in comparators):
        return ORDER
    if Comparator.NE in comparators:
        return INEQUALITY
    return SCAN


def estimate_cost(constraint: DenialConstraint) -> CostEstimate:
    """Static cost estimate; ``scores`` maps engine name to ranked cost."""
    atoms = len(constraint.relation_atoms)
    join_arity = len(constraint.join_variables)
    cls = selectivity_class(constraint)
    work = float(atoms) * float(1 + join_arity) * _CLASS_FACTOR[cls]
    scores = {
        engine: work * weight for engine, weight in ENGINE_WEIGHTS.items()
    }
    return CostEstimate(
        atoms=atoms,
        join_arity=join_arity,
        selectivity_class=cls,
        work=work,
        scores=scores,
    )


def rank_engines(
    estimate: CostEstimate,
    *,
    kernel_available: bool,
    pushdown_available: bool,
) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """``(chain, dropped)``: the ranked execution chain for one constraint.

    ``chain`` lists the statically admissible engines in ascending
    score order and always ends with ``"interpreted"`` (the engine that
    can never refuse).  ``dropped`` lists engines removed because the
    compile-time environment lacks them (``LINT061`` downgrades) -
    *not* engines the runtime may refuse for data reasons; those stay
    in the chain with the runtime-refusal fallback preserved.
    """
    ranked = sorted(estimate.scores, key=lambda e: (estimate.scores[e], e))
    chain: list[str] = []
    dropped: list[str] = []
    for engine in ranked:
        if engine == "kernel" and not kernel_available:
            dropped.append(engine)
            continue
        if engine == "pushdown" and not pushdown_available:
            dropped.append(engine)
            continue
        chain.append(engine)
    if "interpreted" not in chain:
        chain.append("interpreted")
    return tuple(chain), tuple(dropped)
