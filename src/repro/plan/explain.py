"""Human-readable rendering of compiled plans (``repro explain-plan``)."""

from __future__ import annotations

from typing import Any

from repro.plan.program import CompiledProgram


def _format_cost(cost: "dict[str, Any]") -> str:
    """Compact one-line cost summary: signals plus ranked work."""
    return (
        f"atoms={cost.get('atoms', '?')} "
        f"joins={cost.get('join_arity', '?')} "
        f"class={cost.get('selectivity_class', '?')} "
        f"work={cost.get('work', '?')}"
    )


def render_plan_text(program: CompiledProgram) -> str:
    """The explain-plan table: constraint → engine → cost → diagnostics.

    One row per input constraint (skipped entries render with engine
    ``-``), followed by the solver pre-selection and the provenance /
    lint diagnostic counts.
    """
    rows: list[tuple[str, str, str, str]] = []
    diag_by_label: dict[str, list[str]] = {}
    for diagnostic in (*program.provenance, *program.lint):
        if diagnostic.constraint:
            diag_by_label.setdefault(diagnostic.constraint, []).append(
                diagnostic.code
            )
    for entry in program.entries:
        engine = "->".join(entry.engines) if entry.engines else "-"
        if entry.conditional:
            engine += " (conditional: " + ",".join(entry.conditional) + ")"
        codes = sorted(set(diag_by_label.get(entry.label, [])))
        rows.append(
            (
                entry.label,
                engine if entry.executed else f"- ({entry.action})",
                _format_cost(dict(entry.cost)),
                ",".join(codes) if codes else "-",
            )
        )
    headers = ("constraint", "engine", "cost", "diagnostics")
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(4)
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(4)),
    ]
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(4)))
    lines.append("")
    lines.append(f"fingerprint : {program.fingerprint}")
    lines.append(
        "availability: "
        + ", ".join(
            f"{name}={'yes' if ok else 'no'}"
            for name, ok in sorted(program.availability.items())
        )
    )
    lines.append(
        f"solver      : engine={program.solver.engine} "
        f"predicted_f={program.solver.predicted_max_frequency} "
        f"locality_ok={program.solver.locality_ok} "
        f"decomposition={program.solver.decomposition}"
    )
    lines.append(
        f"entries     : {len(program.executed_entries)} executed, "
        f"{len(program.skipped_entries)} eliminated"
    )
    lines.append(
        f"diagnostics : {len(program.provenance)} plan, "
        f"{len(program.lint)} lint"
    )
    return "\n".join(lines)
