"""Exception hierarchy for the :mod:`repro` database-repair library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  The subclasses partition failures by
the subsystem that detected them: schema definition, constraint definition,
repair computation, configuration parsing, and storage backends.
"""

from __future__ import annotations

from typing import Any, Sequence


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """Invalid schema definition (bad attribute, key, or weight)."""


class InstanceError(ReproError):
    """Invalid database instance (arity mismatch, key violation, ...)."""


class KeyViolationError(InstanceError):
    """A primary-key constraint of the input instance is violated.

    The paper assumes ``D |= K`` for the initial instance; loading data that
    breaks a key is a hard error, not an inconsistency to be repaired.
    """


class ConstraintError(ReproError):
    """Invalid denial constraint (unknown relation/attribute, bad atom)."""


class ConstraintParseError(ConstraintError):
    """The textual denial-constraint DSL could not be parsed."""


class LocalityError(ConstraintError):
    """A constraint set is not *local* (Section 2 conditions (a)-(c)).

    Local fixes are only guaranteed to exist - and to not cascade into new
    violations - for local constraint sets, so the repair engine refuses to
    run the attribute-update algorithms on non-local input.

    ``diagnostics`` carries *all* failing conditions as structured
    :class:`~repro.lint.diagnostics.Diagnostic` records (the message is
    the first one's, preserving the historical fail-first text).
    """

    def __init__(self, message: str = "", diagnostics: "Sequence[Any]" = ()) -> None:
        super().__init__(message)
        self.diagnostics: tuple[Any, ...] = tuple(diagnostics)


class RepairError(ReproError):
    """The repair computation itself failed."""


class BackpressureError(RepairError):
    """A streaming-repair submission exceeded ``max_pending_updates``.

    Raised by :class:`~repro.repair.streaming.StreamingRepairer` under the
    ``"error"`` backpressure policy when accepting one more update would
    push the pending (coalesced) queue past its bound.  The rejected
    update is *not* enqueued - callers own the retry - and nothing
    already queued is dropped.  ``pending`` / ``max_pending`` carry the
    queue state at rejection time.
    """

    def __init__(self, message: str, pending: int = 0, max_pending: int = 0) -> None:
        super().__init__(message)
        self.pending = pending
        self.max_pending = max_pending


class UnrepairableError(RepairError):
    """No repair candidate exists for the given instance and constraints."""


class SetCoverError(ReproError):
    """Malformed set-cover instance or solver failure."""


class UncoverableError(SetCoverError):
    """Some universe element belongs to no set, so no cover exists."""


class KernelError(ReproError):
    """The columnar detection-kernel engine is unavailable or unsupported.

    Raised when ``engine="kernel"`` is requested without NumPy installed,
    or when a constraint/data shape has no vectorized plan (e.g. an order
    comparison over a non-integer column).  The ``auto`` engine catches
    this internally and falls back to the interpreted detector.
    """


class PushdownError(ReproError):
    """The SQL pushdown detection engine is unavailable or unsupported.

    Raised when ``engine="pushdown"`` is requested for an instance that is
    not *backend-resident* (loaded via a SQL backend's ``load_instance``
    and unmodified since), or when a constraint's violation SQL cannot be
    executed faithfully inside the backend (non-integer or NULL data in a
    compared column, where SQL comparison semantics diverge from Python).
    The ``auto`` engine catches this internally and falls back to the
    kernel/interpreted detectors.
    """


class PlanError(ReproError):
    """Static plan compilation or execution failed.

    Raised by :mod:`repro.plan` when a :class:`~repro.plan.CompiledProgram`
    cannot be built (strict compilation over statically non-compilable
    constraints), deserialized, or applied.  ``diagnostics`` carries the
    structured :class:`~repro.lint.diagnostics.Diagnostic` records that
    explain the failure (codes ``LINT060``-``LINT062``).
    """

    def __init__(self, message: str, diagnostics: "Sequence[Any]" = ()) -> None:
        super().__init__(message)
        self.diagnostics: tuple[Any, ...] = tuple(diagnostics)


class StalePlanError(PlanError):
    """A compiled plan no longer matches the live (schema, constraints).

    Raised - never silently ignored - when a
    :class:`~repro.plan.CompiledProgram` is handed to the runtime
    (``repair_database(plan=...)``, :class:`IncrementalRepairer`,
    :class:`StreamingRepairer`) whose content fingerprint disagrees with
    the fingerprint of the live schema and constraint set.  ``expected``
    and ``actual`` carry the two SHA-256 hex digests; the attached
    diagnostic uses code ``LINT062``.
    """

    def __init__(
        self,
        message: str,
        *,
        expected: str = "",
        actual: str = "",
        diagnostics: "Sequence[Any]" = (),
    ) -> None:
        super().__init__(message, diagnostics=diagnostics)
        self.expected = expected
        self.actual = actual


class LintError(ReproError):
    """The static constraint analyzer found gating diagnostics.

    Raised by the preflight hook (``lint.preflight`` in the configuration,
    or ``repair_database(..., preflight=True)``) when the
    :class:`~repro.lint.diagnostics.LintReport` - attached as ``report`` -
    contains diagnostics at or above the configured ``fail_on`` severity.
    """

    def __init__(self, message: str, report: Any = None) -> None:
        super().__init__(message)
        self.report = report


class ServiceError(ReproError):
    """The repair-as-a-service job runtime failed (:mod:`repro.service`)."""


class JobNotFoundError(ServiceError):
    """No job with the requested id exists in this service."""


class JobCancelledError(ServiceError):
    """The awaited job was cancelled before it produced a result.

    Raised by ``RepairService.result`` when the job reached the
    ``cancelled`` terminal state; ``job_id`` names the job.
    """

    def __init__(self, message: str, job_id: str = "") -> None:
        super().__init__(message)
        self.job_id = job_id


class JobTimeoutError(ServiceError):
    """The awaited job exceeded its per-job timeout.

    The job was cooperatively cancelled and left the queue and artifact
    cache in a consistent state; ``job_id`` / ``timeout`` carry the
    job and its budget in seconds.
    """

    def __init__(self, message: str, job_id: str = "", timeout: float = 0.0) -> None:
        super().__init__(message)
        self.job_id = job_id
        self.timeout = timeout


class WorkerCrashError(ServiceError):
    """A service worker died mid-job (transient - the runtime retries).

    Raised by the fault-injection layer and by genuinely broken worker
    pools.  Classified *transient*: the job runtime retries the job with
    backoff up to its ``max_retries`` budget before failing the job with
    this error as the structured cause.
    """


class PoisonedArtifactError(ServiceError):
    """A cached artifact failed its integrity check and was refused.

    Raised - never silently served - by
    :class:`~repro.service.cache.ArtifactCache` when a stored entry's
    content digest no longer matches the one recorded at insertion time
    (a poisoned or corrupted artifact).  The entry is evicted as a side
    effect; ``kind`` / ``key`` identify it, ``expected`` / ``actual``
    carry the two digests.
    """

    def __init__(
        self,
        message: str,
        *,
        kind: str = "",
        key: "tuple[Any, ...] | str" = "",
        expected: str = "",
        actual: str = "",
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.key = key
        self.expected = expected
        self.actual = actual


class ConfigError(ReproError):
    """Invalid repair-program configuration (Figure 1 configuration file)."""


class RuntimeConfigError(ConfigError):
    """Invalid parallel-execution policy (unknown backend, bad worker count)."""


class BackendError(ReproError):
    """Storage backend failure (connection, SQL, export)."""
