"""repro.obs - zero-dependency tracing, metrics and profiling hooks.

The paper's evaluation (Section 6) is entirely about *measuring* the
repair pipeline - where detection, reduction and solving time goes, how
inconsistent the input was, how big the covers came out.  This package
makes those measurements first-class instead of ad-hoc timing dicts:

* :mod:`repro.obs.spans` - :class:`Span` (nested, wall + CPU time,
  tags) and :class:`Trace` (the finished run);
* :mod:`repro.obs.trace` - :class:`Tracer` (thread-safe collection,
  process-worker merging) and the :func:`current_tracer` activation
  protocol instrumented code uses;
* :mod:`repro.obs.metrics` - :class:`Counter`/:class:`Gauge` registry
  (violations per constraint, MLF evaluations, cover sizes, columnar
  cache hits/misses, the inconsistency degree ``Deg(D, IC)``);
* :mod:`repro.obs.export` - the human tree report, lossless JSON, and
  Chrome ``chrome://tracing`` trace-event exporters plus the
  ``repro trace`` summary table;
* :mod:`repro.obs.stats` - the documented ``solver_stats`` schema and
  its normalizer.

Tracing is opt-in per run (``repair_database(..., trace=True)``, the
config ``runtime.trace`` block, CLI ``--trace``); when off, the
:data:`NULL_TRACER` makes every instrumented site a few attribute
lookups and **zero** allocated spans - the overhead contract the
``tests/obs`` regression suite enforces.
"""

from __future__ import annotations

import functools
from typing import Any, Callable

from repro.obs.export import (
    LATENCY_SPANS,
    TRACE_FORMATS,
    chrome_trace,
    format_latency,
    format_summary,
    latency_summary,
    load_trace,
    percentile,
    render_tree,
    summarize_trace,
    trace_from_chrome,
    write_trace,
)
from repro.obs.metrics import Counter, Gauge, MetricsRegistry
from repro.obs.spans import Span, Trace
from repro.obs.stats import normalize_solver_stats
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    as_tracer,
    current_tracer,
)

__all__ = [
    "LATENCY_SPANS",
    "NULL_TRACER",
    "TRACE_FORMATS",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "Trace",
    "Tracer",
    "as_tracer",
    "chrome_trace",
    "current_tracer",
    "format_latency",
    "format_summary",
    "latency_summary",
    "load_trace",
    "normalize_solver_stats",
    "percentile",
    "render_tree",
    "summarize_trace",
    "trace_from_chrome",
    "traced_solver",
    "write_trace",
]


def traced_solver(name: str) -> Callable:
    """Decorator wrapping a set-cover solver in a ``solve:<name>`` span.

    The span carries the instance shape going in and the cover shape
    coming out, and feeds the ``cover_sets`` counter; with tracing off
    the wrapper is a single ``enabled`` check and a direct call, so the
    solver benchmarks (Figure 3) see no measurable overhead.
    """

    def decorate(solver: Callable) -> Callable:
        @functools.wraps(solver)
        def traced(instance: Any, *args: Any, **kwargs: Any) -> Any:
            tracer = current_tracer()
            if not tracer.enabled:
                return solver(instance, *args, **kwargs)
            with tracer.span(
                f"solve:{name}",
                category="solver",
                sets=len(instance.sets),
                elements=instance.n_elements,
            ) as span:
                cover = solver(instance, *args, **kwargs)
                span.tag(
                    weight=cover.weight,
                    selected=len(cover.selected),
                    iterations=cover.iterations,
                )
                tracer.metrics.counter("cover_sets", algorithm=name).inc(
                    len(cover.selected)
                )
                return cover

        return traced

    return decorate
