"""Span and Trace: the data model of the observability layer.

A :class:`Span` is one timed region of the repair pipeline - a Figure-1
stage, one constraint's detection, one solver invocation.  Spans nest
(``children``), carry free-form ``tags``, and record three clocks:

* ``start`` - wall-clock epoch seconds (``time.time()``), comparable
  across processes so spans recorded inside process-pool workers merge
  into the parent's timeline;
* ``duration`` - wall seconds measured with ``time.perf_counter()`` (the
  epoch clock is only used for placement, never for durations);
* ``cpu`` - CPU seconds consumed on the recording thread
  (``time.thread_time()``), which makes "waited on the pool" vs
  "computed" visible per span.

Spans are plain data: picklable, and round-trippable through
:meth:`Span.to_dict` / :meth:`Span.from_dict` - the wire format used both
by the JSON exporter and by process-pool workers shipping their spans
back to the parent (see :mod:`repro.runtime.workers`).

Closing a span clamps every child into the parent's ``[start, end]``
window (:meth:`Span.close`): child spans merged from worker processes run
on a slightly different epoch, and the clamp guarantees the exporter
invariants - no negative durations, no child extending past its parent -
that the Chrome trace-event viewer and the tree report rely on.

A :class:`Trace` is the finished, immutable result of a traced run: the
root spans plus a snapshot of the metric registry.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Iterator, Mapping

#: Tag values are JSON scalars; anything else is stringified on export.
TagValue = "str | int | float | bool"


def _thread_cpu() -> float:
    """Per-thread CPU seconds (falls back to process CPU where missing)."""
    try:
        return time.thread_time()
    except (AttributeError, OSError):  # pragma: no cover - exotic platforms
        return time.process_time()


class Span:
    """One timed, tagged, nestable region of work.

    Spans are created open (``duration is None``) and finalized by
    :meth:`close`; the :class:`~repro.obs.trace.Tracer` drives that
    lifecycle through its context manager, so user code only ever sees
    open spans inside ``with tracer.span(...)`` blocks and closed spans
    afterwards.
    """

    __slots__ = (
        "name",
        "category",
        "tags",
        "start",
        "duration",
        "cpu",
        "pid",
        "tid",
        "children",
        "_perf0",
        "_cpu0",
    )

    def __init__(
        self,
        name: str,
        category: str = "",
        tags: "Mapping[str, Any] | None" = None,
    ) -> None:
        self.name = name
        self.category = category
        self.tags: dict[str, Any] = dict(tags) if tags else {}
        self.start = time.time()
        self.duration: float | None = None
        self.cpu: float | None = None
        self.pid = os.getpid()
        self.tid = threading.get_ident()
        self.children: list[Span] = []
        self._perf0 = time.perf_counter()
        self._cpu0 = _thread_cpu()

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Finalize the span: fix duration/cpu, clamp children into it."""
        if self.duration is None:
            self.duration = time.perf_counter() - self._perf0
            self.cpu = _thread_cpu() - self._cpu0
        self.clamp_children()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` fixed the duration."""
        return self.duration is not None

    @property
    def end(self) -> float:
        """Wall-clock end (epoch seconds); the current time while open."""
        if self.duration is None:
            return time.time()
        return self.start + self.duration

    def tag(self, **tags: Any) -> "Span":
        """Attach (or overwrite) tags; returns self for chaining."""
        self.tags.update(tags)
        return self

    def clamp_children(self) -> None:
        """Force every (transitive) child inside this span's wall window.

        Worker-process spans are placed on the shared epoch clock, whose
        resolution and skew can put a child a hair outside the parent
        that dispatched it.  Clamping keeps the invariants exporters and
        the property tests rely on: ``child.start >= parent.start``,
        ``child.end <= parent.end``, ``duration >= 0``.
        """
        if self.duration is None:
            return
        for child in self.children:
            _clamp_into(child, self.start, self.end)

    # -- traversal ----------------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) with the given name, depth first."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (the JSON wire format; loses open-span state)."""
        return {
            "name": self.name,
            "category": self.category,
            "tags": dict(self.tags),
            "start": self.start,
            "duration": self.duration if self.duration is not None else 0.0,
            "cpu": self.cpu if self.cpu is not None else 0.0,
            "pid": self.pid,
            "tid": self.tid,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Span":
        """Rebuild a closed span (tree) from :meth:`to_dict` output."""
        span = cls.__new__(cls)
        span.name = str(data["name"])
        span.category = str(data.get("category", ""))
        span.tags = dict(data.get("tags", {}))
        span.start = float(data["start"])
        span.duration = float(data.get("duration", 0.0))
        span.cpu = float(data.get("cpu", 0.0))
        span.pid = int(data.get("pid", 0))
        span.tid = int(data.get("tid", 0))
        span.children = [cls.from_dict(child) for child in data.get("children", [])]
        span._perf0 = 0.0
        span._cpu0 = 0.0
        return span

    def __reduce__(self):
        # Pickle through the dict form: survives process-pool boundaries
        # without carrying the private clock anchors.
        return (Span.from_dict, (self.to_dict(),))

    def __repr__(self) -> str:
        timing = f"{self.duration * 1000:.2f}ms" if self.duration is not None else "open"
        return f"Span({self.name!r}, {timing}, children={len(self.children)})"


def _clamp_into(span: Span, window_start: float, window_end: float) -> None:
    """Clamp one span (recursively) into ``[window_start, window_end]``."""
    if span.duration is None:
        span.duration = 0.0
        span.cpu = span.cpu or 0.0
    start = min(max(span.start, window_start), window_end)
    end = min(max(span.start + span.duration, start), window_end)
    span.start = start
    span.duration = end - start
    for child in span.children:
        _clamp_into(child, start, end)


class Trace:
    """The finished output of a traced run: root spans + metric snapshot.

    ``metrics`` is the plain-data snapshot produced by
    :meth:`repro.obs.metrics.MetricsRegistry.snapshot`.  Exporters live in
    :mod:`repro.obs.export`; convenience accessors here are what the
    repair engine uses to present ``elapsed_seconds`` as a thin view over
    the trace.
    """

    __slots__ = ("roots", "metrics", "meta")

    def __init__(
        self,
        roots: "tuple[Span, ...] | list[Span]",
        metrics: "Mapping[str, Any] | None" = None,
        meta: "Mapping[str, Any] | None" = None,
    ) -> None:
        self.roots = tuple(roots)
        self.metrics: dict[str, Any] = dict(metrics) if metrics else {}
        self.meta: dict[str, Any] = dict(meta) if meta else {}

    def spans(self) -> Iterator[Span]:
        """Every span of the trace, depth first, root order."""
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> "Span | None":
        """First span with the given name, depth first."""
        for span in self.spans():
            if span.name == name:
                return span
        return None

    def __len__(self) -> int:
        return sum(1 for _ in self.spans())

    def stage_seconds(self, root_name: str = "repair") -> dict[str, float]:
        """Wall seconds of each direct stage child of the named root span.

        This is the "thin view" the engine exposes as
        ``RepairResult.elapsed_seconds``: one entry per Figure-1 stage
        span (``detect``, ``reduce``, ``solve``, ``apply``, ``verify``),
        keyed by span name.
        """
        root = self.find(root_name)
        if root is None:
            return {}
        return {
            child.name: child.duration or 0.0
            for child in root.children
            if child.category == "stage"
        }

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form; round-trips through :meth:`from_dict`."""
        return {
            "format": "repro-trace",
            "version": 1,
            "meta": dict(self.meta),
            "metrics": dict(self.metrics),
            "spans": [root.to_dict() for root in self.roots],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Trace":
        """Rebuild a trace from :meth:`to_dict` output."""
        return cls(
            roots=[Span.from_dict(root) for root in data.get("spans", [])],
            metrics=data.get("metrics", {}),
            meta=data.get("meta", {}),
        )

    def __repr__(self) -> str:
        return f"Trace(spans={len(self)}, roots={len(self.roots)})"
