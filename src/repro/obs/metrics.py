"""Counter/Gauge metric registry of the observability layer.

The registry gives the pipeline named, tag-labelled instruments:

* :class:`Counter` - monotonically increasing totals (violations found
  per constraint, MLF evaluations, columnar-snapshot cache hits/misses,
  sets selected into covers);
* :class:`Gauge` - last-written point-in-time values (the inconsistency
  degree ``Deg(D, IC)`` of the instance being repaired, component
  counts).

Each :class:`~repro.obs.trace.Tracer` owns a private
:class:`MetricsRegistry`, so concurrent or consecutive traced runs never
share state (registry isolation is part of the test contract).  Process
pool workers snapshot their local registry and the parent merges it with
:meth:`MetricsRegistry.merge_snapshot` - counters add, gauges keep the
maximum (every gauge in the pipeline is a high-watermark).

The disabled path uses the null instruments at the bottom of the module:
:data:`NULL_METRICS` hands out a single shared no-op instrument, so
instrumented hot loops cost one method call when tracing is off.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator, Mapping

#: A label set, normalized to a hashable, deterministic form.
LabelKey = "tuple[tuple[str, str], ...]"


def _label_key(tags: Mapping[str, Any]) -> "tuple[tuple[str, str], ...]":
    return tuple(sorted((str(k), str(v)) for k, v in tags.items()))


class Counter:
    """A monotonically increasing total (per name + label set)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: "tuple[tuple[str, str], ...]") -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {dict(self.labels)}, {self.value})"


class Gauge:
    """A point-in-time value (per name + label set)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: "tuple[tuple[str, str], ...]") -> None:
        self.name = name
        self.labels = labels
        self.value: float | None = None

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value

    def set_max(self, value: float) -> None:
        """Record ``value`` only if it exceeds the current one."""
        if self.value is None or value > self.value:
            self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {dict(self.labels)}, {self.value})"


class MetricsRegistry:
    """Thread-safe get-or-create store of counters and gauges."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}

    def counter(self, name: str, **tags: Any) -> Counter:
        """The counter registered under ``name`` + ``tags`` (created once)."""
        key = (name, _label_key(tags))
        counter = self._counters.get(key)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(key, Counter(name, key[1]))
        return counter

    def gauge(self, name: str, **tags: Any) -> Gauge:
        """The gauge registered under ``name`` + ``tags`` (created once)."""
        key = (name, _label_key(tags))
        gauge = self._gauges.get(key)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(key, Gauge(name, key[1]))
        return gauge

    def counters(self) -> Iterator[Counter]:
        """Every registered counter (registration order)."""
        return iter(list(self._counters.values()))

    def gauges(self) -> Iterator[Gauge]:
        """Every registered gauge (registration order)."""
        return iter(list(self._gauges.values()))

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges)

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Plain-data form: ``{"counters": [...], "gauges": [...]}``.

        Deterministically ordered by (name, labels) so snapshots diff
        cleanly and the JSON exporter is stable.
        """
        counters = sorted(self._counters.values(), key=lambda c: (c.name, c.labels))
        gauges = sorted(self._gauges.values(), key=lambda g: (g.name, g.labels))
        return {
            "counters": [
                {"name": c.name, "labels": dict(c.labels), "value": c.value}
                for c in counters
            ],
            "gauges": [
                {"name": g.name, "labels": dict(g.labels), "value": g.value}
                for g in gauges
                if g.value is not None
            ],
        }

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a worker's snapshot in: counters add, gauges keep the max."""
        for entry in snapshot.get("counters", ()):
            self.counter(entry["name"], **entry.get("labels", {})).inc(
                entry.get("value", 0)
            )
        for entry in snapshot.get("gauges", ()):
            value = entry.get("value")
            if value is not None:
                self.gauge(entry["name"], **entry.get("labels", {})).set_max(value)


# ---------------------------------------------------------------------------
# disabled path


class _NullInstrument:
    """Shared no-op counter/gauge handed out when tracing is disabled."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass


class NullMetrics:
    """Registry stand-in whose instruments record nothing."""

    __slots__ = ()

    def counter(self, name: str, **tags: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **tags: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def counters(self) -> Iterator[Counter]:
        return iter(())

    def gauges(self) -> Iterator[Gauge]:
        return iter(())

    def __len__(self) -> int:
        return 0

    def snapshot(self) -> dict[str, Any]:
        return {"counters": [], "gauges": []}

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()
NULL_METRICS = NullMetrics()
