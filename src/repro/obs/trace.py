"""Tracer: span lifecycle, thread fan-in, process-worker merging.

One :class:`Tracer` observes one traced run (a ``repair_database`` call,
an :class:`~repro.repair.incremental.IncrementalRepairer` lifetime, a
benchmark).  Instrumented library code never holds a tracer reference;
it asks for the *active* one::

    from repro.obs import current_tracer

    with current_tracer().span("detect:ic1", category="detect") as span:
        ...
        span.tag(violations=n)

and :func:`current_tracer` returns :data:`NULL_TRACER` unless a run
activated a real tracer (``with tracer.activate(): ...``).  The null
tracer's ``span()`` returns one shared no-op context manager and its
``metrics`` registry drops everything, so the disabled path costs a few
attribute lookups per instrumented site - no spans are ever created
(the overhead-regression suite in ``tests/obs`` pins this down).

Thread fan-in
    Activation is **thread-local first**: the tracer a thread activated
    is what its own ``current_tracer()`` calls see, so two concurrent
    traced runs on different threads (the job runtime of
    :mod:`repro.service` runs many) never interleave spans into each
    other's traces.  Threads that never activated anything fall back to
    the most recent activation process-wide, which keeps plain
    single-run tracing working for ad-hoc helper threads.  The
    :class:`~repro.runtime.executor.Executor` explicitly re-activates
    the dispatching thread's tracer inside its thread-pool workers, so
    fan-out always lands in the right trace.  A span opened on a pool
    thread whose stack is empty attaches to the tracer's *anchor* - the
    innermost open span that was started with ``anchor=True`` (the
    engine marks its ``detect`` and ``solve`` stage spans that way) - so
    thread-pool workers' spans nest under the stage that dispatched
    them.

Process fan-in
    Process-pool workers cannot see the parent's tracer.  The runtime
    ships a ``trace`` flag with each work batch; the worker runs under a
    fresh local tracer, exports it with :meth:`Tracer.export_remote`
    (span dicts + metric snapshot, all picklable), and the parent folds
    it back in with :meth:`Tracer.attach_remote` - spans are clamped
    into the receiving stage span when it closes, metrics merge
    (counters add, gauges max).
"""

from __future__ import annotations

import os
import threading
from typing import Any, Iterator, Mapping

from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.spans import Span, Trace

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
    "as_tracer",
    "current_tracer",
]


class _OpenSpan:
    """Context manager driving one span's lifecycle on the owning tracer."""

    __slots__ = ("_tracer", "_span", "_anchor", "_prev_anchor")

    def __init__(self, tracer: "Tracer", span: Span, anchor: bool) -> None:
        self._tracer = tracer
        self._span = span
        self._anchor = anchor
        self._prev_anchor: Span | None = None

    def __enter__(self) -> Span:
        tracer = self._tracer
        stack = tracer._stack()
        stack.append(self._span)
        if self._anchor:
            self._prev_anchor = tracer._anchor
            tracer._anchor = self._span
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        span = self._span
        stack = tracer._stack()
        if stack and stack[-1] is span:
            stack.pop()
        if self._anchor:
            tracer._anchor = self._prev_anchor
        if exc_type is not None:
            span.tag(error=exc_type.__name__)
        span.close()
        parent = stack[-1] if stack else tracer._anchor
        with tracer._lock:
            if parent is not None and parent is not span:
                parent.children.append(span)
            else:
                tracer._roots.append(span)
        return False


class _Activation:
    """Context manager installing a tracer as the calling thread's active one.

    The activation is recorded twice: in the calling thread's local slot
    (authoritative - concurrent activations on other threads never
    disturb it) and in the process-global fallback slot read by threads
    that have no local activation of their own.  Both are restored on
    exit.
    """

    __slots__ = ("_tracer", "_previous_local", "_previous_global")

    def __init__(self, tracer: "Tracer | NullTracer") -> None:
        self._tracer = tracer
        self._previous_local: "Tracer | NullTracer | None" = None
        self._previous_global: "Tracer | NullTracer | None" = None

    def __enter__(self):
        global _ACTIVE
        self._previous_local = getattr(_ACTIVE_LOCAL, "tracer", None)
        _ACTIVE_LOCAL.tracer = self._tracer
        with _ACTIVE_LOCK:
            self._previous_global = _ACTIVE
            _ACTIVE = self._tracer
        return self._tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _ACTIVE
        if self._previous_local is None:
            try:
                del _ACTIVE_LOCAL.tracer
            except AttributeError:  # pragma: no cover - defensive
                pass
        else:
            _ACTIVE_LOCAL.tracer = self._previous_local
        with _ACTIVE_LOCK:
            # Only restore the fallback if no other thread activated in
            # the meantime - last activation wins for anonymous threads.
            if _ACTIVE is self._tracer:
                _ACTIVE = self._previous_global
        return False


class Tracer:
    """Collects spans and metrics for one traced run (thread-safe)."""

    enabled = True

    def __init__(self, name: str = "repro") -> None:
        self.name = name
        self.metrics = MetricsRegistry()
        self._roots: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._anchor: Span | None = None

    # -- span lifecycle -----------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(
        self, name: str, category: str = "", anchor: bool = False, **tags: Any
    ) -> _OpenSpan:
        """Open a span; use as ``with tracer.span(...) as span:``.

        ``anchor=True`` additionally makes the span the attachment point
        for spans opened on foreign threads while it is open (see the
        module docstring).
        """
        return _OpenSpan(self, Span(name, category, tags), anchor)

    def current(self) -> Span | None:
        """The innermost open span on the calling thread (or the anchor)."""
        stack = self._stack()
        return stack[-1] if stack else self._anchor

    # -- activation ---------------------------------------------------------

    def activate(self) -> _Activation:
        """Install as the process-global tracer for the ``with`` body."""
        return _Activation(self)

    # -- process-worker fan-in ----------------------------------------------

    def export_remote(self) -> dict[str, Any]:
        """Picklable payload of everything this (worker) tracer recorded."""
        with self._lock:
            roots = list(self._roots)
        return {
            "pid": os.getpid(),
            "spans": [root.to_dict() for root in roots],
            "metrics": self.metrics.snapshot(),
        }

    def attach_remote(
        self, payload: "Mapping[str, Any] | None", parent: Span | None = None
    ) -> None:
        """Fold a worker's :meth:`export_remote` payload into this tracer.

        Spans attach under ``parent`` (default: the calling thread's
        current span / anchor) and are clamped into its window when it
        closes; metrics merge (counters add, gauges keep the max).
        """
        if not payload:
            return
        spans = [Span.from_dict(d) for d in payload.get("spans", ())]
        if spans:
            target = parent if parent is not None else self.current()
            with self._lock:
                if target is not None:
                    target.children.extend(spans)
                else:
                    self._roots.extend(spans)
        metrics = payload.get("metrics")
        if metrics:
            self.metrics.merge_snapshot(metrics)

    # -- finishing ----------------------------------------------------------

    def finish(self) -> Trace:
        """Snapshot everything recorded so far as an immutable Trace.

        Roots are ordered by start time (threads may have appended out of
        order); open spans are left out - finish after the run.
        """
        with self._lock:
            roots = [root for root in self._roots if root.closed]
        roots.sort(key=lambda span: span.start)
        return Trace(
            roots=roots,
            metrics=self.metrics.snapshot(),
            meta={"tracer": self.name, "pid": os.getpid()},
        )

    def __repr__(self) -> str:
        return f"Tracer({self.name!r}, roots={len(self._roots)})"


# ---------------------------------------------------------------------------
# disabled path


class _NullSpanContext:
    """Shared do-nothing span context: the entire disabled-tracing cost."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def tag(self, **tags: Any) -> "_NullSpanContext":
        return self

    # Mirror the read surface of Span so instrumentation never branches.
    name = ""
    category = ""
    tags: Mapping[str, Any] = {}
    children: tuple = ()
    duration = 0.0
    cpu = 0.0


class NullTracer:
    """The inactive tracer: records nothing, allocates nothing per span."""

    enabled = False
    metrics = NULL_METRICS
    name = "null"

    __slots__ = ()

    def span(
        self, name: str, category: str = "", anchor: bool = False, **tags: Any
    ) -> _NullSpanContext:
        return _NULL_SPAN

    def current(self) -> None:
        return None

    def activate(self) -> _Activation:
        return _Activation(self)

    def export_remote(self) -> dict[str, Any]:
        return {"pid": os.getpid(), "spans": [], "metrics": NULL_METRICS.snapshot()}

    def attach_remote(self, payload, parent=None) -> None:
        pass

    def finish(self) -> Trace:
        return Trace(roots=(), metrics=NULL_METRICS.snapshot())

    def __repr__(self) -> str:
        return "NullTracer()"


_NULL_SPAN = _NullSpanContext()
NULL_TRACER = NullTracer()

_ACTIVE: "Tracer | NullTracer" = NULL_TRACER
_ACTIVE_LOCK = threading.Lock()
_ACTIVE_LOCAL = threading.local()


def current_tracer() -> "Tracer | NullTracer":
    """The calling thread's active tracer (:data:`NULL_TRACER` by default).

    A thread that activated a tracer (directly, or through the
    executor's worker propagation) sees exactly that tracer; a thread
    with no activation of its own sees the most recent activation
    process-wide, or the null tracer when nothing is active.
    """
    local = getattr(_ACTIVE_LOCAL, "tracer", None)
    if local is not None:
        return local
    return _ACTIVE


def as_tracer(trace: "bool | Tracer | NullTracer | None") -> "Tracer | NullTracer":
    """Normalize the user-facing ``trace=`` option.

    ``None``/``False`` → the null tracer; ``True`` → a fresh
    :class:`Tracer`; an existing tracer passes through (so callers can
    nest several pipeline calls into one trace).
    """
    if trace is None or trace is False:
        return NULL_TRACER
    if trace is True:
        return Tracer()
    if isinstance(trace, (Tracer, NullTracer)):
        return trace
    raise TypeError(
        f"trace must be a bool or a Tracer, got {type(trace).__name__}"
    )


def iter_spans(roots: "tuple[Span, ...] | list[Span]") -> Iterator[Span]:
    """Depth-first walk over a list of root spans (exporter helper)."""
    for root in roots:
        yield from root.walk()
