"""Trace exporters: human tree report, JSON, Chrome trace-event format.

Three output forms, one input (:class:`~repro.obs.spans.Trace`):

* :func:`render_tree` - an indented wall/CPU breakdown for terminals
  (what ``repro-repair --trace`` prints);
* :meth:`Trace.to_dict` / :func:`load_trace` - the native JSON form,
  lossless round-trip;
* :func:`chrome_trace` - the Chrome trace-event format (open in
  ``chrome://tracing`` or https://ui.perfetto.dev): every span becomes a
  complete (``"ph": "X"``) event with microsecond ``ts``/``dur`` relative
  to the trace epoch, worker-process spans appear as their own
  ``pid``/``tid`` rows, and the metric snapshot rides along in
  ``otherData``.  :func:`trace_from_chrome` reconstructs the span tree
  from the events (nesting by containment per pid/tid row), which is the
  schema round-trip the test suite locks down.

:func:`summarize_trace` aggregates any trace into per-span-name rows
(count, wall, CPU, share of root wall) - the table behind the
``repro trace`` subcommand.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.exceptions import ReproError
from repro.obs.spans import Span, Trace

#: Formats accepted by :func:`write_trace` and the CLI/config plumbing.
TRACE_FORMATS = ("chrome", "json", "tree")


# ---------------------------------------------------------------------------
# human tree report


def _format_seconds(seconds: "float | None") -> str:
    if seconds is None:
        return "?"
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1000:.2f}ms"


def _format_tags(tags: Mapping[str, Any]) -> str:
    if not tags:
        return ""
    inner = ", ".join(f"{k}={v}" for k, v in sorted(tags.items()))
    return f"  [{inner}]"


def render_tree(trace: Trace, max_children: int = 12) -> str:
    """Indented per-span wall/CPU report plus the metric snapshot.

    Sibling lists longer than ``max_children`` are elided (per-constraint
    and per-component spans can number thousands); the elision line says
    how many spans were folded and their combined wall time, so the tree
    never silently under-reports.
    """
    lines: list[str] = []

    def emit(span: Span, depth: int) -> None:
        indent = "  " * depth
        lines.append(
            f"{indent}{span.name:<{max(1, 28 - 2 * depth)}} "
            f"wall={_format_seconds(span.duration)} "
            f"cpu={_format_seconds(span.cpu)}"
            f"{_format_tags(span.tags)}"
        )
        children = sorted(span.children, key=lambda s: s.start)
        shown = children[:max_children]
        for child in shown:
            emit(child, depth + 1)
        hidden = children[max_children:]
        if hidden:
            folded = sum(child.duration or 0.0 for child in hidden)
            lines.append(
                f"{'  ' * (depth + 1)}... {len(hidden)} more span(s), "
                f"wall={_format_seconds(folded)}"
            )

    for root in trace.roots:
        emit(root, 0)
    counters = trace.metrics.get("counters", [])
    gauges = trace.metrics.get("gauges", [])
    if counters or gauges:
        lines.append("metrics:")
        for entry in counters:
            labels = _format_tags(entry.get("labels", {}))
            lines.append(f"  {entry['name']}{labels} = {entry['value']:g}")
        for entry in gauges:
            labels = _format_tags(entry.get("labels", {}))
            lines.append(f"  {entry['name']}{labels} = {entry['value']:g} (gauge)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Chrome trace-event format


def chrome_trace(trace: Trace) -> dict[str, Any]:
    """The trace as a Chrome trace-event JSON object.

    ``ts``/``dur`` are integer microseconds relative to the earliest root
    span (the epoch, preserved in ``otherData`` so
    :func:`trace_from_chrome` can restore absolute wall times).  Span
    tags land in ``args`` next to ``cpu_us``.
    """
    epoch = min((root.start for root in trace.roots), default=0.0)
    events: list[dict[str, Any]] = []

    def emit(span: Span) -> None:
        events.append(
            {
                "name": span.name,
                "cat": span.category or "span",
                "ph": "X",
                "ts": max(0, round((span.start - epoch) * 1_000_000)),
                "dur": max(0, round((span.duration or 0.0) * 1_000_000)),
                "pid": span.pid,
                "tid": span.tid,
                "args": {"cpu_us": round((span.cpu or 0.0) * 1_000_000), **span.tags},
            }
        )
        for child in span.children:
            emit(child)

    for root in trace.roots:
        emit(root)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "epoch": epoch,
            "meta": dict(trace.meta),
            "metrics": dict(trace.metrics),
        },
    }


def trace_from_chrome(data: Mapping[str, Any]) -> Trace:
    """Rebuild a span tree from a Chrome trace-event object.

    Nesting is recovered by interval containment within each
    ``(pid, tid)`` row - exactly how the Chrome viewer stacks complete
    events.  Spans that were recorded on different threads/processes
    come back as separate roots (the cross-row parent/child links are
    not part of the Chrome schema).
    """
    events = data.get("traceEvents")
    if not isinstance(events, list):
        raise ReproError("not a Chrome trace: missing 'traceEvents' list")
    other = data.get("otherData", {}) if isinstance(data.get("otherData"), dict) else {}
    epoch = float(other.get("epoch", 0.0))

    rows: dict[tuple, list[dict[str, Any]]] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        rows.setdefault((event.get("pid", 0), event.get("tid", 0)), []).append(event)

    roots: list[Span] = []
    for (pid, tid), row_events in sorted(rows.items()):
        # Containment stacking: by start ascending, then duration descending,
        # an event's parent is the innermost open interval containing it.
        row_events.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack: list[tuple[int, int, Span]] = []  # (ts, ts+dur, span)
        for event in row_events:
            args = dict(event.get("args", {}))
            cpu_us = args.pop("cpu_us", 0)
            span = Span.__new__(Span)
            span.name = str(event.get("name", ""))
            span.category = "" if event.get("cat") == "span" else str(event.get("cat", ""))
            span.tags = args
            span.start = epoch + event["ts"] / 1_000_000
            span.duration = event["dur"] / 1_000_000
            span.cpu = cpu_us / 1_000_000
            span.pid = int(pid)
            span.tid = int(tid)
            span.children = []
            span._perf0 = 0.0
            span._cpu0 = 0.0
            start, end = event["ts"], event["ts"] + event["dur"]
            while stack and start >= stack[-1][1]:
                stack.pop()
            if stack and end <= stack[-1][1]:
                stack[-1][2].children.append(span)
            else:
                roots.append(span)
            stack.append((start, end, span))
    roots.sort(key=lambda span: span.start)
    return Trace(
        roots=roots,
        metrics=other.get("metrics", {}),
        meta=other.get("meta", {}),
    )


# ---------------------------------------------------------------------------
# summary table (the `repro trace` subcommand)


def percentile(values: "list[float]", q: float) -> float:
    """The ``q``-th percentile of ``values`` (linear interpolation).

    ``q`` is in ``[0, 100]``.  Matches ``numpy.percentile``'s default
    (``"linear"``) method without requiring NumPy; raises
    :class:`ReproError` on an empty input.
    """
    if not values:
        raise ReproError("cannot take a percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ReproError(f"percentile must be in [0, 100], got {q!r}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = rank - lower
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


def summarize_trace(trace: Trace) -> list[dict[str, Any]]:
    """Aggregate spans by name: count, wall, CPU, p50/p99, share of root wall.

    Rows are sorted by total wall seconds, descending; ``p50_seconds`` /
    ``p99_seconds`` are percentiles over the individual span durations
    (equal to the single duration when a name occurred once); the share
    column is relative to the summed root-span wall time (100% = the
    whole traced run).
    """
    total_wall = sum(root.duration or 0.0 for root in trace.roots) or 1.0
    rows: dict[str, dict[str, Any]] = {}
    durations: dict[str, list[float]] = {}
    for span in trace.spans():
        row = rows.setdefault(
            span.name,
            {"name": span.name, "category": span.category, "count": 0,
             "wall_seconds": 0.0, "cpu_seconds": 0.0},
        )
        row["count"] += 1
        row["wall_seconds"] += span.duration or 0.0
        row["cpu_seconds"] += span.cpu or 0.0
        durations.setdefault(span.name, []).append(span.duration or 0.0)
    result = sorted(rows.values(), key=lambda r: -r["wall_seconds"])
    for row in result:
        row["share"] = row["wall_seconds"] / total_wall
        row["p50_seconds"] = percentile(durations[row["name"]], 50.0)
        row["p99_seconds"] = percentile(durations[row["name"]], 99.0)
    return result


def format_summary(trace: Trace) -> str:
    """The :func:`summarize_trace` rows as an aligned text table."""
    rows = summarize_trace(trace)
    if not rows:
        return "(empty trace)"
    name_width = max(len("span"), *(len(r["name"]) for r in rows))
    lines = [
        f"{'span':<{name_width}}  {'count':>6}  {'wall':>10}  {'cpu':>10}  "
        f"{'p50':>10}  {'p99':>10}  {'share':>6}"
    ]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append(
            f"{row['name']:<{name_width}}  {row['count']:>6}  "
            f"{_format_seconds(row['wall_seconds']):>10}  "
            f"{_format_seconds(row['cpu_seconds']):>10}  "
            f"{_format_seconds(row['p50_seconds']):>10}  "
            f"{_format_seconds(row['p99_seconds']):>10}  "
            f"{row['share']:>6.1%}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# commit-latency distribution (the `repro trace --latency` flag)


#: Span names :func:`latency_summary` reports by default: streaming commit
#: rounds and the per-commit pipeline stages they wrap.
LATENCY_SPANS = ("stream-round", "commit", "detect", "reduce", "solve", "apply")


def latency_summary(
    trace: Trace, names: "tuple[str, ...]" = LATENCY_SPANS
) -> list[dict[str, Any]]:
    """Latency distribution of the commit pipeline's repeated spans.

    For each span name in ``names`` that occurs in the trace, reports
    ``count``, ``mean_seconds``, ``p50_seconds``, ``p99_seconds`` and
    ``max_seconds`` over the individual span durations - the endurance
    view of a streaming run (is commit latency steady, what does the
    tail look like), complementing :func:`summarize_trace`'s where-does
    -the-time-go totals.  Rows keep the order of ``names``; names absent
    from the trace are skipped.
    """
    durations: dict[str, list[float]] = {}
    for span in trace.spans():
        if span.name in names:
            durations.setdefault(span.name, []).append(span.duration or 0.0)
    rows: list[dict[str, Any]] = []
    for name in names:
        samples = durations.get(name)
        if not samples:
            continue
        rows.append(
            {
                "name": name,
                "count": len(samples),
                "total_seconds": sum(samples),
                "mean_seconds": sum(samples) / len(samples),
                "p50_seconds": percentile(samples, 50.0),
                "p99_seconds": percentile(samples, 99.0),
                "max_seconds": max(samples),
            }
        )
    return rows


def format_latency(
    trace: Trace, names: "tuple[str, ...]" = LATENCY_SPANS
) -> str:
    """The :func:`latency_summary` rows as an aligned text table."""
    rows = latency_summary(trace, names)
    if not rows:
        return "(no commit-pipeline spans in trace)"
    name_width = max(len("span"), *(len(r["name"]) for r in rows))
    lines = [
        f"{'span':<{name_width}}  {'count':>6}  {'mean':>10}  "
        f"{'p50':>10}  {'p99':>10}  {'max':>10}"
    ]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append(
            f"{row['name']:<{name_width}}  {row['count']:>6}  "
            f"{_format_seconds(row['mean_seconds']):>10}  "
            f"{_format_seconds(row['p50_seconds']):>10}  "
            f"{_format_seconds(row['p99_seconds']):>10}  "
            f"{_format_seconds(row['max_seconds']):>10}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# files


def write_trace(trace: Trace, path: "str | Path", format: str = "chrome") -> Path:
    """Write the trace to ``path`` in the requested format; returns the path."""
    if format not in TRACE_FORMATS:
        raise ReproError(
            f"unknown trace format {format!r}; choose from {TRACE_FORMATS}"
        )
    path = Path(path)
    if format == "tree":
        path.write_text(render_tree(trace) + "\n", encoding="utf-8")
        return path
    payload = chrome_trace(trace) if format == "chrome" else trace.to_dict()
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def load_trace(path: "str | Path") -> Trace:
    """Load a saved trace - native (``repro-trace``) or Chrome format."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise ReproError(f"cannot read trace file {path}: {error}")
    except json.JSONDecodeError as error:
        raise ReproError(f"trace file {path} is not valid JSON: {error}")
    if isinstance(data, Mapping) and data.get("format") == "repro-trace":
        return Trace.from_dict(data)
    if isinstance(data, Mapping) and "traceEvents" in data:
        return trace_from_chrome(data)
    raise ReproError(
        f"trace file {path} is neither a repro-trace JSON nor a Chrome trace"
    )
