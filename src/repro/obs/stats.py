"""The ``solver_stats`` schema: the one place its keys and types live.

``RepairResult.solver_stats`` accumulates bookkeeping from three layers
(the set-cover solver, the component decomposition, the runtime), and
historically each layer coerced values ad hoc - counts came back as
``float`` from the decomposition's merge loop while the engine stored
others as ``int``.  :func:`normalize_solver_stats` applied at the
result boundary makes the schema uniform:

==========================  =======  =====================================
key                         type     meaning
==========================  =======  =====================================
``scanned_sets``            int      greedy: candidate sets scanned
``heap_updates``            int      modified greedy/layer: heap operations
``nodes``                   int      exact: branch-and-bound nodes
``phi``                     int      modified layer: phases
``frequency``               int      max element frequency f (bound factor)
``components``              int      decomposition: connected components
``oversized_components``    int      components solved by the fallback
``runtime_backend``         str      executor backend (decomposed runs)
``runtime_workers``         int      resolved worker count
``detect_workers``          int      workers used by the detect stage
``solve_workers``           int      workers used by the solve stage
``detection_engine``        str      ``kernel`` / ``interpreted``
``solver_engine``           str      ``flat`` / ``object``
``incidence``               int      flat engine: CSR incidence size (nnz)
==========================  =======  =====================================

Unknown keys pass through unchanged (solvers may add new counters before
this table learns about them); unknown *count-like* values (floats with
no fractional part under a key listed in :data:`COUNT_KEYS`) are
converted to ``int``.  Stage wall-clock timings are deliberately *not*
part of ``solver_stats``: they live in ``RepairResult.elapsed_seconds``,
which a traced run derives from the span tree (see
:mod:`repro.obs.spans`).
"""

from __future__ import annotations

from typing import Any, Mapping

#: Keys whose values are counts and therefore always ``int``.
COUNT_KEYS = frozenset(
    {
        "scanned_sets",
        "heap_updates",
        "nodes",
        "phi",
        "frequency",
        "components",
        "oversized_components",
        "runtime_workers",
        "detect_workers",
        "solve_workers",
        "incidence",
    }
)

#: Keys whose values are labels and therefore ``str``.
LABEL_KEYS = frozenset({"runtime_backend", "detection_engine", "solver_engine"})


def normalize_solver_stats(stats: Mapping[str, Any]) -> dict[str, Any]:
    """Coerce a raw stats mapping onto the documented schema.

    Count keys become ``int`` (a float count like ``4.0`` is the
    decomposition merge loop's summation artifact); label keys become
    ``str``; everything else passes through untouched.
    """
    normalized: dict[str, Any] = {}
    for key, value in stats.items():
        if key in COUNT_KEYS and isinstance(value, float) and value.is_integer():
            normalized[key] = int(value)
        elif key in LABEL_KEYS:
            normalized[key] = str(value)
        else:
            normalized[key] = value
    return normalized
