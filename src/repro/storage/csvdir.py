"""CSV-directory backend: one ``<relation>.csv`` file per relation.

The lightest way to get real data into the repair program: a directory of
CSV files with header rows matching the schema's attribute names.  Values
of flexible attributes parse as integers (the paper's domain); hard
attributes parse as integers when they look like one, else stay strings.

Export modes mirror the other backends: ``UPDATE`` rewrites the source
files, ``INSERT_NEW`` writes ``<relation>_repaired.csv`` next to them,
``DUMP_TEXT`` writes the plain-text dump.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable

from repro.constraints.denial import DenialConstraint
from repro.exceptions import BackendError
from repro.model.instance import DatabaseInstance
from repro.model.schema import Relation, Schema
from repro.model.tuples import Tuple
from repro.repair.result import RepairResult
from repro.storage.base import ExportMode
from repro.violations.detector import ViolationSet, find_all_violations


def _parse_cell(relation: Relation, attribute_index: int, text: str):
    attribute = relation.attributes[attribute_index]
    if attribute.is_flexible:
        try:
            return int(text)
        except ValueError:
            raise BackendError(
                f"{relation.name}.{attribute.name}: flexible attribute "
                f"needs an integer, got {text!r}"
            )
    try:
        return int(text)
    except ValueError:
        return text


class CsvBackend:
    """Backend over a directory of ``<relation>.csv`` files."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        if not self.directory.is_dir():
            raise BackendError(f"{self.directory} is not a directory")

    def _path(self, relation_name: str) -> Path:
        return self.directory / f"{relation_name}.csv"

    # -- Backend protocol --------------------------------------------------------

    def load_instance(self, schema: Schema) -> DatabaseInstance:
        """Read every relation's CSV file; headers must match the schema."""
        instance = DatabaseInstance(schema)
        for relation in schema:
            path = self._path(relation.name)
            if not path.exists():
                raise BackendError(f"missing CSV file {path}")
            with path.open(newline="", encoding="utf-8") as handle:
                reader = csv.reader(handle)
                try:
                    header = next(reader)
                except StopIteration:
                    raise BackendError(f"{path} is empty (expected a header)")
                if tuple(header) != relation.attribute_names:
                    raise BackendError(
                        f"{path}: header {header} does not match schema "
                        f"attributes {list(relation.attribute_names)}"
                    )
                for line_number, row in enumerate(reader, start=2):
                    if not row:
                        continue
                    if len(row) != relation.arity:
                        raise BackendError(
                            f"{path}:{line_number}: expected {relation.arity} "
                            f"cells, got {len(row)}"
                        )
                    values = tuple(
                        _parse_cell(relation, i, cell)
                        for i, cell in enumerate(row)
                    )
                    instance.insert(Tuple(relation, values))
        return instance

    def find_violations(
        self,
        schema: Schema,
        constraints: Iterable[DenialConstraint],
    ) -> tuple[ViolationSet, ...]:
        """In-memory detection over the loaded files."""
        return find_all_violations(self.load_instance(schema), constraints)

    def export_repair(
        self,
        result: RepairResult,
        mode: ExportMode,
        destination: str | None = None,
    ) -> str:
        """All modes route through the snapshot writer (CSV is row-based)."""
        return self.export_snapshot(result.repaired, mode, destination)

    def export_snapshot(
        self,
        instance: DatabaseInstance,
        mode: ExportMode,
        destination: str | None = None,
    ) -> str:
        """Write the instance back as CSV per the export mode."""
        if mode is ExportMode.DUMP_TEXT:
            if destination is None:
                raise BackendError("DUMP_TEXT export needs a destination path")
            Path(destination).write_text(
                instance.to_text() + "\n", encoding="utf-8"
            )
            return f"dumped to {destination}"

        suffix = "" if mode is ExportMode.UPDATE else "_repaired"
        for relation in instance.schema:
            path = self.directory / f"{relation.name}{suffix}.csv"
            with path.open("w", newline="", encoding="utf-8") as handle:
                writer = csv.writer(handle)
                writer.writerow(relation.attribute_names)
                for tup in instance.tuples(relation.name):
                    writer.writerow(tup.values)
        if mode is ExportMode.UPDATE:
            return f"rewrote CSV files in {self.directory}"
        return f"wrote *_repaired.csv files in {self.directory}"

    # -- setup helper ---------------------------------------------------------------

    @classmethod
    def write_instance(
        cls, instance: DatabaseInstance, directory: str | Path
    ) -> "CsvBackend":
        """Materialize an instance as a CSV directory (tests, examples)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        backend = cls(directory)
        backend.export_snapshot(instance, ExportMode.UPDATE)
        return backend
