"""Backend protocol shared by the in-memory and sqlite storage layers."""

from __future__ import annotations

import enum
from typing import Iterable, Protocol, runtime_checkable

from repro.constraints.denial import DenialConstraint
from repro.model.instance import DatabaseInstance
from repro.model.schema import Schema
from repro.repair.result import RepairResult
from repro.violations.detector import ViolationSet


class ExportMode(enum.Enum):
    """How a computed repair leaves the system (Figure 1's export step)."""

    UPDATE = "update"          # update the source tables in place
    INSERT_NEW = "insert"      # write `<table>_repaired` tables
    DUMP_TEXT = "dump"         # write a human-readable text dump

    @classmethod
    def from_name(cls, name: str) -> "ExportMode":
        for member in cls:
            if member.value == name or member.name.lower() == name.lower():
                return member
        raise ValueError(f"unknown export mode {name!r}")


@runtime_checkable
class Backend(Protocol):
    """The database-connectivity seam of the repair program.

    Implementations must be able to load the instance into memory (the
    mapping component operates in main memory, as in the paper), detect
    violation sets - by SQL views or otherwise - and export a repair.
    """

    def load_instance(self, schema: Schema) -> DatabaseInstance:
        """Load all tuples into an in-memory instance."""
        ...

    def find_violations(
        self,
        schema: Schema,
        constraints: Iterable[DenialConstraint],
    ) -> tuple[ViolationSet, ...]:
        """Compute ``I(D, IC)`` using the backend's query engine."""
        ...

    def export_repair(
        self,
        result: RepairResult,
        mode: ExportMode,
        destination: str | None = None,
    ) -> str:
        """Persist a repair; returns a description of where it went."""
        ...

    def export_snapshot(
        self,
        instance: DatabaseInstance,
        mode: ExportMode,
        destination: str | None = None,
    ) -> str:
        """Persist a full instance snapshot (deletion-based repairs)."""
        ...
