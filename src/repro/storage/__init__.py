"""Storage backends: the database-connectivity component of Figure 1.

The paper's system loads tuples from a DBMS (Oracle 10g via JDBC) and
evaluates per-constraint SQL violation views inside it.  We provide the
same seam behind a small protocol: an in-memory backend (the default for
library use) and a sqlite backend that executes the Algorithm-2 SQL views
and implements the three repair-export modes of the configuration file
(update in place / insert into new tables / dump to text).
"""

from repro.storage.base import Backend, ExportMode
from repro.storage.memory import MemoryBackend
from repro.storage.sqlite import SqliteBackend
from repro.storage.csvdir import CsvBackend
from repro.storage.duckdb import DuckDBBackend, duckdb_available
from repro.storage.witnesses import DEFAULT_BATCH_ROWS, stream_witness_sets

__all__ = [
    "Backend",
    "CsvBackend",
    "DEFAULT_BATCH_ROWS",
    "DuckDBBackend",
    "ExportMode",
    "MemoryBackend",
    "SqliteBackend",
    "duckdb_available",
    "stream_witness_sets",
]
