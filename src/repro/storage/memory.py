"""In-memory backend: wraps a :class:`DatabaseInstance` directly."""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.constraints.denial import DenialConstraint
from repro.exceptions import BackendError
from repro.model.instance import DatabaseInstance
from repro.model.schema import Schema
from repro.repair.result import RepairResult
from repro.storage.base import ExportMode
from repro.violations.detector import ViolationSet, find_all_violations


class MemoryBackend:
    """Backend over in-process rows; the default for library use and tests.

    Construct it from an existing instance or from raw rows::

        backend = MemoryBackend.from_rows(schema, {"Client": [...]})
    """

    def __init__(self, instance: DatabaseInstance) -> None:
        self._instance = instance
        self.exported: list[tuple[ExportMode, DatabaseInstance]] = []

    @classmethod
    def from_rows(
        cls,
        schema: Schema,
        rows: Mapping[str, Iterable[Iterable[Any]]],
    ) -> "MemoryBackend":
        """Build a backend holding the given rows."""
        return cls(DatabaseInstance.from_rows(schema, rows))

    def load_instance(self, schema: Schema) -> DatabaseInstance:
        """Return a copy of the held instance (loads are isolated)."""
        if schema is not self._instance.schema and schema != self._instance.schema:
            raise BackendError(
                "memory backend holds an instance of a different schema"
            )
        return self._instance.copy()

    def find_violations(
        self,
        schema: Schema,
        constraints: Iterable[DenialConstraint],
    ) -> tuple[ViolationSet, ...]:
        """In-memory join-based violation detection."""
        return find_all_violations(self.load_instance(schema), constraints)

    def export_repair(
        self,
        result: RepairResult,
        mode: ExportMode,
        destination: str | None = None,
    ) -> str:
        """UPDATE replaces the held instance; other modes record/dump."""
        if mode is ExportMode.UPDATE:
            self._instance = result.repaired.copy()
            self.exported.append((mode, self._instance))
            return "updated in-memory instance"
        if mode is ExportMode.INSERT_NEW:
            self.exported.append((mode, result.repaired.copy()))
            return "recorded repaired copy"
        if destination is None:
            raise BackendError("DUMP_TEXT export needs a destination path")
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(result.repaired.to_text() + "\n")
        self.exported.append((mode, result.repaired.copy()))
        return f"dumped to {destination}"

    def export_snapshot(
        self,
        instance: DatabaseInstance,
        mode: ExportMode,
        destination: str | None = None,
    ) -> str:
        """Persist a full instance snapshot (used by deletion repairs)."""
        if mode is ExportMode.UPDATE:
            self._instance = instance.copy()
            self.exported.append((mode, self._instance))
            return "replaced in-memory instance with repaired snapshot"
        if mode is ExportMode.INSERT_NEW:
            self.exported.append((mode, instance.copy()))
            return "recorded repaired snapshot"
        if destination is None:
            raise BackendError("DUMP_TEXT export needs a destination path")
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(instance.to_text() + "\n")
        self.exported.append((mode, instance.copy()))
        return f"dumped to {destination}"

    @property
    def instance(self) -> DatabaseInstance:
        """Direct access to the held instance (for assertions in tests)."""
        return self._instance
