"""sqlite backend: SQL violation views (Algorithm 2) + repair export.

The paper stores data in Oracle 10g and retrieves violation sets by posing
one SQL view per constraint (Example 3.6).  sqlite evaluates the identical
SQL, making this backend a faithful stand-in for the paper's connectivity
component while staying in the standard library.

Identifiers (relation and attribute names) are validated by the schema
layer to be alphanumeric/underscore, so interpolating them into SQL text
is safe; all *values* travel through bound parameters.
"""

from __future__ import annotations

import sqlite3
from typing import Any, Iterable, Sequence

from repro.constraints.denial import DenialConstraint
from repro.constraints.sql import ViolationQuery, violation_query
from repro.exceptions import BackendError, InstanceError, PushdownError
from repro.model.instance import DatabaseInstance
from repro.model.schema import Relation, Schema
from repro.model.tuples import Tuple
from repro.repair.result import RepairResult
from repro.storage.base import ExportMode
from repro.storage.witnesses import stream_witness_sets
from repro.violations.detector import ViolationSet, _ordered_violation_sets
from repro.violations.pushdown import (
    BINDING_ATTR,
    bind_backend,
    prescan_columns,
    pushdown_requirements,
    referenced_columns,
    slot_columns,
)


def _column_ddl(relation: Relation) -> str:
    columns = []
    for attribute in relation.attributes:
        type_name = "INTEGER" if attribute.is_flexible else ""
        columns.append(f"{attribute.name} {type_name}".rstrip())
    key = ", ".join(relation.key)
    return ", ".join(columns) + f", PRIMARY KEY ({key})"


class SqliteBackend:
    """Backend over a sqlite database file (or ``:memory:``)."""

    #: First SQL keywords that never modify the database; ``execute`` with
    #: anything else bumps the write generation and severs pushdown bindings.
    _READONLY_KEYWORDS = frozenset({"SELECT", "PRAGMA", "EXPLAIN"})

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        self._generation = 0
        try:
            self._connection = sqlite3.connect(path)
        except sqlite3.Error as error:
            raise BackendError(f"cannot open sqlite database {path!r}: {error}")

    @property
    def generation(self) -> int:
        """Write counter; instances loaded at an older generation are stale.

        Every mutating operation (DDL, ingestion, repair export, raw
        non-``SELECT`` SQL) increments it, which invalidates the pushdown
        bindings of previously loaded instances
        (:mod:`repro.violations.pushdown`).
        """
        return self._generation

    def _cursor(self) -> sqlite3.Cursor:
        """A cursor, translating closed/broken connections to BackendError."""
        try:
            return self._connection.cursor()
        except sqlite3.Error as error:
            raise BackendError(f"sqlite connection unusable: {error}") from error

    # -- setup -----------------------------------------------------------------

    def create_tables(self, schema: Schema, drop_existing: bool = False) -> None:
        """Create one table per relation (optionally dropping old ones)."""
        cursor = self._cursor()
        for relation in schema:
            if drop_existing:
                cursor.execute(f"DROP TABLE IF EXISTS {relation.name}")
            cursor.execute(
                f"CREATE TABLE IF NOT EXISTS {relation.name} "
                f"({_column_ddl(relation)})"
            )
        self._connection.commit()
        self._generation += 1

    def create_violation_views(
        self,
        schema: Schema,
        constraints: Iterable[DenialConstraint],
        drop_existing: bool = False,
    ) -> tuple[str, ...]:
        """Materialize one ``<ic>_violations`` view per constraint.

        Algorithm 2's literal reading: the constraint is satisfied iff its
        view is empty, so the views double as standing inconsistency
        monitors inside the database.  Returns the view names.
        """
        from repro.constraints.sql import view_name, violation_view_ddl

        cursor = self._cursor()
        names = []
        try:
            for index, constraint in enumerate(constraints, start=1):
                name = view_name(constraint, index)
                if drop_existing:
                    cursor.execute(f"DROP VIEW IF EXISTS {name}")
                cursor.execute(violation_view_ddl(constraint, schema, index))
                names.append(name)
        except sqlite3.Error as error:
            self._connection.rollback()
            raise BackendError(f"creating violation views failed: {error}") from error
        self._connection.commit()
        self._generation += 1
        return tuple(names)

    def write_instance(self, instance: DatabaseInstance) -> None:
        """Insert every tuple of the instance (tables must exist)."""
        cursor = self._cursor()
        try:
            for relation in instance.schema:
                placeholders = ", ".join("?" for _ in relation.attributes)
                sql = f"INSERT INTO {relation.name} VALUES ({placeholders})"
                cursor.executemany(
                    sql, [t.values for t in instance.tuples(relation.name)]
                )
        except sqlite3.Error as error:
            self._connection.rollback()
            raise BackendError(f"insert failed: {error}") from error
        self._connection.commit()
        self._generation += 1

    @classmethod
    def from_instance(
        cls, instance: DatabaseInstance, path: str = ":memory:"
    ) -> "SqliteBackend":
        """Create a database holding ``instance`` (convenience for tests)."""
        backend = cls(path)
        backend.create_tables(instance.schema, drop_existing=True)
        backend.write_instance(instance)
        return backend

    # -- Backend protocol --------------------------------------------------------

    def load_instance(self, schema: Schema) -> DatabaseInstance:
        """Read every table into an in-memory instance.

        The returned instance is *backend-resident*: it carries a pushdown
        binding to this backend, so ``engine="auto"`` detection runs the
        violation SQL in-database until either side is mutated.
        """
        instance = DatabaseInstance(schema)
        cursor = self._cursor()
        for relation in schema:
            try:
                rows = cursor.execute(
                    f"SELECT {', '.join(relation.attribute_names)} "
                    f"FROM {relation.name}"
                )
            except sqlite3.Error as error:
                raise BackendError(
                    f"cannot read table {relation.name!r}: {error}"
                ) from error
            for row in rows:
                instance.insert(Tuple(relation, tuple(row)))
        bind_backend(instance, self)
        # Seed the executability cache from the rows just read: detection
        # then needs no per-column typeof/NULL scans at all.
        getattr(instance, BINDING_ATTR).cache.update(prescan_columns(instance))
        return instance

    def find_violations(
        self,
        schema: Schema,
        constraints: Iterable[DenialConstraint],
    ) -> tuple[ViolationSet, ...]:
        """Run the Algorithm-2 SQL views and assemble minimal violation sets.

        Witness rows stream in bounded batches
        (:mod:`repro.storage.witnesses`) instead of one ``fetchall``, and
        funnel through the detector's shared minimality+ordering reduction
        - the same path the in-memory engines take.
        """
        instance = self.load_instance(schema)
        results: list[ViolationSet] = []
        cursor = self._cursor()
        for constraint in constraints:
            compiled = violation_query(constraint, schema)
            try:
                cursor.execute(compiled.sql)
                used_sets = stream_witness_sets(cursor.fetchmany, compiled, instance)
            except sqlite3.Error as error:
                raise BackendError(
                    f"violation query failed for {constraint.label}: "
                    f"{compiled.sql!r}: {error}"
                ) from error
            results.extend(_ordered_violation_sets(used_sets, constraint))
        return tuple(results)

    def export_repair(
        self,
        result: RepairResult,
        mode: ExportMode,
        destination: str | None = None,
    ) -> str:
        """Persist the repair per the configured export mode."""
        if mode is ExportMode.UPDATE:
            return self._export_update(result)
        if mode is ExportMode.INSERT_NEW:
            return self._export_insert_new(result)
        if destination is None:
            raise BackendError("DUMP_TEXT export needs a destination path")
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(result.repaired.to_text() + "\n")
        return f"dumped to {destination}"

    # -- export modes ---------------------------------------------------------------

    def _export_update(self, result: RepairResult) -> str:
        cursor = self._cursor()
        updated = 0
        try:
            for change in result.changes:
                relation = result.repaired.schema.relation(change.ref.relation_name)
                key_clause = " AND ".join(f"{k} = ?" for k in relation.key)
                cursor.execute(
                    f"UPDATE {relation.name} SET {change.attribute} = ? "
                    f"WHERE {key_clause}",
                    (change.new_value, *change.ref.key_values),
                )
                updated += cursor.rowcount
        except sqlite3.Error as error:
            self._connection.rollback()
            raise BackendError(f"update export failed: {error}") from error
        self._connection.commit()
        self._generation += 1
        return f"updated {updated} rows in place"

    def _export_insert_new(self, result: RepairResult) -> str:
        cursor = self._cursor()
        schema = result.repaired.schema
        try:
            for relation in schema:
                table = f"{relation.name}_repaired"
                cursor.execute(f"DROP TABLE IF EXISTS {table}")
                cursor.execute(f"CREATE TABLE {table} ({_column_ddl(relation)})")
                placeholders = ", ".join("?" for _ in relation.attributes)
                cursor.executemany(
                    f"INSERT INTO {table} VALUES ({placeholders})",
                    [t.values for t in result.repaired.tuples(relation.name)],
                )
        except sqlite3.Error as error:
            self._connection.rollback()
            raise BackendError(f"insert export failed: {error}") from error
        self._connection.commit()
        self._generation += 1
        return "inserted repaired tables with suffix _repaired"

    def export_snapshot(
        self,
        instance: DatabaseInstance,
        mode: ExportMode,
        destination: str | None = None,
    ) -> str:
        """Persist a full instance snapshot (used by deletion repairs).

        Tuple-deletion repairs shrink relations, which the per-change
        ``UPDATE`` path cannot express; ``UPDATE`` mode therefore rewrites
        each table from the snapshot inside one transaction.
        """
        if mode is ExportMode.UPDATE:
            cursor = self._cursor()
            try:
                for relation in instance.schema:
                    cursor.execute(f"DELETE FROM {relation.name}")
                    placeholders = ", ".join("?" for _ in relation.attributes)
                    cursor.executemany(
                        f"INSERT INTO {relation.name} VALUES ({placeholders})",
                        [t.values for t in instance.tuples(relation.name)],
                    )
            except sqlite3.Error as error:
                self._connection.rollback()
                raise BackendError(f"snapshot export failed: {error}") from error
            self._connection.commit()
            self._generation += 1
            return "rewrote tables from repaired snapshot"
        if mode is ExportMode.INSERT_NEW:
            cursor = self._cursor()
            try:
                for relation in instance.schema:
                    table = f"{relation.name}_repaired"
                    cursor.execute(f"DROP TABLE IF EXISTS {table}")
                    cursor.execute(
                        f"CREATE TABLE {table} ({_column_ddl(relation)})"
                    )
                    placeholders = ", ".join("?" for _ in relation.attributes)
                    cursor.executemany(
                        f"INSERT INTO {table} VALUES ({placeholders})",
                        [t.values for t in instance.tuples(relation.name)],
                    )
            except sqlite3.Error as error:
                self._connection.rollback()
                raise BackendError(f"snapshot export failed: {error}") from error
            self._connection.commit()
            self._generation += 1
            return "inserted repaired tables with suffix _repaired"
        if destination is None:
            raise BackendError("DUMP_TEXT export needs a destination path")
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(instance.to_text() + "\n")
        return f"dumped to {destination}"

    # -- pushdown detection -----------------------------------------------------------

    def _column_is_clean(
        self,
        cursor: sqlite3.Cursor,
        schema: Schema,
        kind: str,
        relation_name: str,
        attribute_name: str,
        cache: dict[Any, bool],
    ) -> bool:
        """Cached per-column verdict: ``kind`` is ``"int"`` or ``"null"``.

        ``"int"`` asks whether every stored value has sqlite type class
        INTEGER (``typeof(NULL)`` is ``'null'``, so NULLs fail this too);
        ``"null"`` asks whether the column is NULL-free.  The first miss
        for a relation scans *all* of its columns for both kinds in one
        aggregate pass - one table scan per relation per binding instead
        of one per (constraint, column) - and fills the cache wholesale.
        """
        key = (kind, relation_name, attribute_name)
        if key in cache:
            return cache[key]
        relation = schema.relation(relation_name)
        parts = []
        for attribute in relation.attributes:
            parts.append(f"MAX(typeof({attribute.name}) <> 'integer')")
            parts.append(f"MAX({attribute.name} IS NULL)")
        row = cursor.execute(
            f"SELECT {', '.join(parts)} FROM {relation_name}"
        ).fetchone()
        for index, attribute in enumerate(relation.attributes):
            # MAX over an empty table yields NULL: vacuously clean.
            cache[("int", relation_name, attribute.name)] = not row[2 * index]
            cache[("null", relation_name, attribute.name)] = not row[2 * index + 1]
        return cache[key]

    def _check_pushdown_executable(
        self,
        cursor: sqlite3.Cursor,
        schema: Schema,
        constraint: DenialConstraint,
        cache: dict[Any, bool] | None,
    ) -> None:
        """Refuse data shapes where sqlite semantics diverge from Python.

        Order comparisons and offset arithmetic need all-integer columns
        (sqlite orders text above numbers and coerces text ``+`` operands
        to 0 where Python raises ``TypeError``); every compared column
        must be NULL-free (SQL NULLs never join, Python ``None == None``
        is true).  Raises :class:`PushdownError` naming the first
        offending column.
        """
        if cache is None:
            cache = {}
        required = slot_columns(
            constraint, schema, pushdown_requirements(constraint)
        )
        for relation_name, attribute_name in sorted(required):
            if not self._column_is_clean(
                cursor, schema, "int", relation_name, attribute_name, cache
            ):
                raise PushdownError(
                    f"{constraint.label}: column "
                    f"{relation_name}.{attribute_name} holds non-integer "
                    "data, where sqlite order/offset comparison semantics "
                    "diverge from Python's"
                )
        for relation_name, attribute_name in sorted(
            referenced_columns(constraint, schema)
        ):
            if not self._column_is_clean(
                cursor, schema, "null", relation_name, attribute_name, cache
            ):
                raise PushdownError(
                    f"{constraint.label}: column "
                    f"{relation_name}.{attribute_name} holds NULLs, which "
                    "never satisfy SQL comparisons but compare equal as "
                    "Python None"
                )

    def _pushdown_cursor(
        self,
        constraint: DenialConstraint,
        schema: Schema,
        cache: dict[Any, bool] | None,
    ) -> tuple[sqlite3.Cursor, ViolationQuery]:
        """Validate executability and compile the violation query."""
        compiled = violation_query(constraint, schema)
        cursor = self._cursor()
        try:
            self._check_pushdown_executable(cursor, schema, constraint, cache)
        except sqlite3.Error as error:
            raise PushdownError(
                f"{constraint.label}: pushdown pre-check failed: {error}"
            ) from error
        return cursor, compiled

    def pushdown_witnesses(
        self,
        instance: DatabaseInstance,
        constraint: DenialConstraint,
        max_violations: int | None = None,
        cache: dict[Any, bool] | None = None,
    ) -> set[frozenset[Tuple]]:
        """Witness tuple sets of one constraint, computed in-database.

        The pushdown-engine entry point (see
        :mod:`repro.violations.pushdown`): executes the compiled violation
        SQL and streams the key rows back, resolved against the bound
        in-memory image.  Raises :class:`PushdownError` when the resident
        data is not faithfully executable in sqlite;
        :class:`~repro.exceptions.ConstraintError` when ``max_violations``
        trips (identical contract and message as the in-memory engines).
        """
        cursor, compiled = self._pushdown_cursor(constraint, instance.schema, cache)
        try:
            cursor.execute(compiled.sql)
            return stream_witness_sets(
                cursor.fetchmany,
                compiled,
                instance,
                max_violations=max_violations,
            )
        except sqlite3.Error as error:
            raise PushdownError(
                f"{constraint.label}: violation query failed: "
                f"{compiled.sql!r}: {error}"
            ) from error
        except InstanceError as error:
            raise PushdownError(
                f"{constraint.label}: backend rows diverged from the bound "
                f"instance: {error}"
            ) from error

    def pushdown_has_witness(
        self,
        instance: DatabaseInstance,
        constraint: DenialConstraint,
        cache: dict[Any, bool] | None = None,
    ) -> bool:
        """``LIMIT 1`` probe: does the constraint have any witness?"""
        cursor, compiled = self._pushdown_cursor(constraint, instance.schema, cache)
        try:
            return bool(cursor.execute(compiled.sql + " LIMIT 1").fetchall())
        except sqlite3.Error as error:
            raise PushdownError(
                f"{constraint.label}: violation query failed: "
                f"{compiled.sql!r}: {error}"
            ) from error

    # -- misc -------------------------------------------------------------------------

    def execute(self, sql: str, parameters: Sequence[Any] = ()) -> list[tuple]:
        """Run raw SQL (diagnostics, tests).

        Anything that is not a plain ``SELECT``/``PRAGMA``/``EXPLAIN``
        counts as a write and severs pushdown bindings of previously
        loaded instances.
        """
        try:
            rows = self._connection.execute(sql, parameters).fetchall()
        except sqlite3.Error as error:
            raise BackendError(f"query failed: {sql!r}: {error}") from error
        first_word = sql.lstrip().split(None, 1)[0].upper() if sql.strip() else ""
        if first_word not in self._READONLY_KEYWORDS:
            self._connection.commit()
            self._generation += 1
        return rows

    def close(self) -> None:
        """Close the underlying connection."""
        self._connection.close()

    def __enter__(self) -> "SqliteBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
