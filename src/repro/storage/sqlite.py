"""sqlite backend: SQL violation views (Algorithm 2) + repair export.

The paper stores data in Oracle 10g and retrieves violation sets by posing
one SQL view per constraint (Example 3.6).  sqlite evaluates the identical
SQL, making this backend a faithful stand-in for the paper's connectivity
component while staying in the standard library.

Identifiers (relation and attribute names) are validated by the schema
layer to be alphanumeric/underscore, so interpolating them into SQL text
is safe; all *values* travel through bound parameters.
"""

from __future__ import annotations

import sqlite3
from typing import Any, Iterable, Sequence

from repro.constraints.denial import DenialConstraint
from repro.constraints.sql import violation_query
from repro.exceptions import BackendError
from repro.model.instance import DatabaseInstance
from repro.model.schema import Relation, Schema
from repro.model.tuples import Tuple
from repro.repair.result import RepairResult
from repro.storage.base import ExportMode
from repro.violations.detector import ViolationSet, _minimal_sets


def _column_ddl(relation: Relation) -> str:
    columns = []
    for attribute in relation.attributes:
        type_name = "INTEGER" if attribute.is_flexible else ""
        columns.append(f"{attribute.name} {type_name}".rstrip())
    key = ", ".join(relation.key)
    return ", ".join(columns) + f", PRIMARY KEY ({key})"


class SqliteBackend:
    """Backend over a sqlite database file (or ``:memory:``)."""

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        try:
            self._connection = sqlite3.connect(path)
        except sqlite3.Error as error:
            raise BackendError(f"cannot open sqlite database {path!r}: {error}")

    def _cursor(self) -> sqlite3.Cursor:
        """A cursor, translating closed/broken connections to BackendError."""
        try:
            return self._connection.cursor()
        except sqlite3.Error as error:
            raise BackendError(f"sqlite connection unusable: {error}") from error

    # -- setup -----------------------------------------------------------------

    def create_tables(self, schema: Schema, drop_existing: bool = False) -> None:
        """Create one table per relation (optionally dropping old ones)."""
        cursor = self._cursor()
        for relation in schema:
            if drop_existing:
                cursor.execute(f"DROP TABLE IF EXISTS {relation.name}")
            cursor.execute(
                f"CREATE TABLE IF NOT EXISTS {relation.name} "
                f"({_column_ddl(relation)})"
            )
        self._connection.commit()

    def create_violation_views(
        self,
        schema: Schema,
        constraints: Iterable[DenialConstraint],
        drop_existing: bool = False,
    ) -> tuple[str, ...]:
        """Materialize one ``<ic>_violations`` view per constraint.

        Algorithm 2's literal reading: the constraint is satisfied iff its
        view is empty, so the views double as standing inconsistency
        monitors inside the database.  Returns the view names.
        """
        from repro.constraints.sql import view_name, violation_view_ddl

        cursor = self._cursor()
        names = []
        try:
            for index, constraint in enumerate(constraints, start=1):
                name = view_name(constraint, index)
                if drop_existing:
                    cursor.execute(f"DROP VIEW IF EXISTS {name}")
                cursor.execute(violation_view_ddl(constraint, schema, index))
                names.append(name)
        except sqlite3.Error as error:
            self._connection.rollback()
            raise BackendError(f"creating violation views failed: {error}") from error
        self._connection.commit()
        return tuple(names)

    def write_instance(self, instance: DatabaseInstance) -> None:
        """Insert every tuple of the instance (tables must exist)."""
        cursor = self._cursor()
        try:
            for relation in instance.schema:
                placeholders = ", ".join("?" for _ in relation.attributes)
                sql = f"INSERT INTO {relation.name} VALUES ({placeholders})"
                cursor.executemany(
                    sql, [t.values for t in instance.tuples(relation.name)]
                )
        except sqlite3.Error as error:
            self._connection.rollback()
            raise BackendError(f"insert failed: {error}") from error
        self._connection.commit()

    @classmethod
    def from_instance(
        cls, instance: DatabaseInstance, path: str = ":memory:"
    ) -> "SqliteBackend":
        """Create a database holding ``instance`` (convenience for tests)."""
        backend = cls(path)
        backend.create_tables(instance.schema, drop_existing=True)
        backend.write_instance(instance)
        return backend

    # -- Backend protocol --------------------------------------------------------

    def load_instance(self, schema: Schema) -> DatabaseInstance:
        """Read every table into an in-memory instance."""
        instance = DatabaseInstance(schema)
        cursor = self._cursor()
        for relation in schema:
            try:
                rows = cursor.execute(
                    f"SELECT {', '.join(relation.attribute_names)} "
                    f"FROM {relation.name}"
                )
            except sqlite3.Error as error:
                raise BackendError(
                    f"cannot read table {relation.name!r}: {error}"
                ) from error
            for row in rows:
                instance.insert(Tuple(relation, tuple(row)))
        return instance

    def find_violations(
        self,
        schema: Schema,
        constraints: Iterable[DenialConstraint],
    ) -> tuple[ViolationSet, ...]:
        """Run the Algorithm-2 SQL views and assemble minimal violation sets."""
        instance = self.load_instance(schema)
        results: list[ViolationSet] = []
        cursor = self._cursor()
        for constraint in constraints:
            compiled = violation_query(constraint, schema)
            try:
                rows = cursor.execute(compiled.sql).fetchall()
            except sqlite3.Error as error:
                raise BackendError(
                    f"violation query failed for {constraint.label}: "
                    f"{compiled.sql!r}: {error}"
                ) from error
            used_sets: set[frozenset[Tuple]] = set()
            for row in rows:
                tuples = []
                for atom in compiled.atoms:
                    key = tuple(row[i] for i in atom.key_columns)
                    tuples.append(instance.get(atom.relation_name, key))
                used_sets.add(frozenset(tuples))
            ordered = sorted(
                _minimal_sets(used_sets),
                key=lambda s: sorted(t.ref.sort_key for t in s),
            )
            results.extend(ViolationSet(s, constraint) for s in ordered)
        return tuple(results)

    def export_repair(
        self,
        result: RepairResult,
        mode: ExportMode,
        destination: str | None = None,
    ) -> str:
        """Persist the repair per the configured export mode."""
        if mode is ExportMode.UPDATE:
            return self._export_update(result)
        if mode is ExportMode.INSERT_NEW:
            return self._export_insert_new(result)
        if destination is None:
            raise BackendError("DUMP_TEXT export needs a destination path")
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(result.repaired.to_text() + "\n")
        return f"dumped to {destination}"

    # -- export modes ---------------------------------------------------------------

    def _export_update(self, result: RepairResult) -> str:
        cursor = self._cursor()
        updated = 0
        try:
            for change in result.changes:
                relation = result.repaired.schema.relation(change.ref.relation_name)
                key_clause = " AND ".join(f"{k} = ?" for k in relation.key)
                cursor.execute(
                    f"UPDATE {relation.name} SET {change.attribute} = ? "
                    f"WHERE {key_clause}",
                    (change.new_value, *change.ref.key_values),
                )
                updated += cursor.rowcount
        except sqlite3.Error as error:
            self._connection.rollback()
            raise BackendError(f"update export failed: {error}") from error
        self._connection.commit()
        return f"updated {updated} rows in place"

    def _export_insert_new(self, result: RepairResult) -> str:
        cursor = self._cursor()
        schema = result.repaired.schema
        try:
            for relation in schema:
                table = f"{relation.name}_repaired"
                cursor.execute(f"DROP TABLE IF EXISTS {table}")
                cursor.execute(f"CREATE TABLE {table} ({_column_ddl(relation)})")
                placeholders = ", ".join("?" for _ in relation.attributes)
                cursor.executemany(
                    f"INSERT INTO {table} VALUES ({placeholders})",
                    [t.values for t in result.repaired.tuples(relation.name)],
                )
        except sqlite3.Error as error:
            self._connection.rollback()
            raise BackendError(f"insert export failed: {error}") from error
        self._connection.commit()
        return "inserted repaired tables with suffix _repaired"

    def export_snapshot(
        self,
        instance: DatabaseInstance,
        mode: ExportMode,
        destination: str | None = None,
    ) -> str:
        """Persist a full instance snapshot (used by deletion repairs).

        Tuple-deletion repairs shrink relations, which the per-change
        ``UPDATE`` path cannot express; ``UPDATE`` mode therefore rewrites
        each table from the snapshot inside one transaction.
        """
        if mode is ExportMode.UPDATE:
            cursor = self._cursor()
            try:
                for relation in instance.schema:
                    cursor.execute(f"DELETE FROM {relation.name}")
                    placeholders = ", ".join("?" for _ in relation.attributes)
                    cursor.executemany(
                        f"INSERT INTO {relation.name} VALUES ({placeholders})",
                        [t.values for t in instance.tuples(relation.name)],
                    )
            except sqlite3.Error as error:
                self._connection.rollback()
                raise BackendError(f"snapshot export failed: {error}") from error
            self._connection.commit()
            return "rewrote tables from repaired snapshot"
        if mode is ExportMode.INSERT_NEW:
            cursor = self._cursor()
            try:
                for relation in instance.schema:
                    table = f"{relation.name}_repaired"
                    cursor.execute(f"DROP TABLE IF EXISTS {table}")
                    cursor.execute(
                        f"CREATE TABLE {table} ({_column_ddl(relation)})"
                    )
                    placeholders = ", ".join("?" for _ in relation.attributes)
                    cursor.executemany(
                        f"INSERT INTO {table} VALUES ({placeholders})",
                        [t.values for t in instance.tuples(relation.name)],
                    )
            except sqlite3.Error as error:
                self._connection.rollback()
                raise BackendError(f"snapshot export failed: {error}") from error
            self._connection.commit()
            return "inserted repaired tables with suffix _repaired"
        if destination is None:
            raise BackendError("DUMP_TEXT export needs a destination path")
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(instance.to_text() + "\n")
        return f"dumped to {destination}"

    # -- misc -------------------------------------------------------------------------

    def execute(self, sql: str, parameters: Sequence[Any] = ()) -> list[tuple]:
        """Run raw SQL (diagnostics, tests)."""
        try:
            return self._connection.execute(sql, parameters).fetchall()
        except sqlite3.Error as error:
            raise BackendError(f"query failed: {sql!r}: {error}") from error

    def close(self) -> None:
        """Close the underlying connection."""
        self._connection.close()

    def __enter__(self) -> "SqliteBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
