"""Batched witness streaming shared by the SQL backends.

The violation query of :func:`repro.constraints.sql.violation_query`
returns one row per witness, each row holding the primary-key values of
the participating tuples.  At TPC-H scale a single accidental cartesian
constraint can produce millions of rows, so the backends never
``fetchall``: rows stream in bounded batches through
:func:`stream_witness_sets`, which resolves them to tuple sets against
the in-memory image and enforces the same ``max_violations`` safety
valve (and error message) as the in-memory engines.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

from repro.exceptions import ConstraintError

if TYPE_CHECKING:
    from repro.constraints.sql import ViolationQuery
    from repro.model.instance import DatabaseInstance
    from repro.model.tuples import Tuple

#: Rows fetched per batch.  Bounds peak row-buffer memory while keeping
#: the per-batch driver overhead negligible against the query itself.
DEFAULT_BATCH_ROWS = 4096


def stream_witness_sets(
    fetchmany: Callable[[int], Sequence[Sequence[object]]],
    compiled: "ViolationQuery",
    instance: "DatabaseInstance",
    *,
    max_violations: int | None = None,
    batch_size: int = DEFAULT_BATCH_ROWS,
) -> "set[frozenset[Tuple]]":
    """Drain a violation-query cursor into witness tuple sets.

    ``fetchmany`` is the cursor's batch fetcher (DB-API ``fetchmany``).
    Each row is one satisfying assignment; rows are counted against
    ``max_violations`` exactly like the in-memory engines count
    assignments, and resolved to tuples via ``instance.get`` on the
    primary keys the query projected.  Self-join rows assigning one
    tuple to several atoms collapse into smaller sets, matching the
    interpreted enumeration.
    """
    used: set[frozenset[Tuple]] = set()
    add = used.add
    witnesses = 0
    resolve = instance.get
    atoms = compiled.atoms
    # The violation query projects each atom's key attributes in atom
    # order, so every atom's result columns form one contiguous span -
    # letting the hot loop slice rows (one C-level op) instead of
    # assembling key tuples index by index.  Guarded, with a generic
    # fallback, in case a future query layout breaks the invariant.
    spans = [
        (atom.relation_name, atom.key_columns[0], atom.key_columns[-1] + 1)
        for atom in atoms
    ]
    contiguous = all(
        atom.key_columns == tuple(range(start, stop))
        for atom, (_, start, stop) in zip(atoms, spans)
    )
    single = spans[0] if contiguous and len(spans) == 1 else None
    while True:
        rows = fetchmany(batch_size)
        if not rows:
            return used
        witnesses += len(rows)
        if max_violations is not None and witnesses > max_violations:
            raise ConstraintError(
                f"{compiled.constraint.label}: more than {max_violations} "
                "violation witnesses; refusing to enumerate further"
            )
        if single is not None:
            relation_name, start, stop = single
            for row in rows:
                add(frozenset((resolve(relation_name, row[start:stop]),)))
        elif contiguous:
            for row in rows:
                add(
                    frozenset(
                        resolve(relation_name, row[start:stop])
                        for relation_name, start, stop in spans
                    )
                )
        else:
            for row in rows:
                add(
                    frozenset(
                        resolve(
                            atom.relation_name,
                            tuple(row[i] for i in atom.key_columns),
                        )
                        for atom in atoms
                    )
                )
