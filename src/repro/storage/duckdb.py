"""DuckDB backend: columnar OLAP execution for the pushdown engine.

DuckDB is an optional dependency (``pip install repro[duckdb]``); this
module always imports, and :class:`DuckDBBackend` raises
:class:`~repro.exceptions.BackendError` at construction when the driver
is absent.  The backend mirrors :class:`~repro.storage.sqlite.SqliteBackend`
- same protocol, same export modes, same pushdown API - but executes the
Algorithm-2 violation SQL on DuckDB's vectorized engine, which is where
the pushdown detector earns its keep at TPC-H scale.

Unlike sqlite's dynamic typing, DuckDB columns are strictly typed.
``write_instance`` infers one type per column from the instance data
(all-integer -> BIGINT, all-string -> VARCHAR, all-float -> DOUBLE) and
refuses mixed columns outright; the pushdown executability check then
reads *declared* types instead of scanning rows - a typed column cannot
smuggle in a stray string the way a sqlite column can - and only NULLs
still need a runtime scan.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

try:  # pragma: no cover - exercised only when the extra is installed
    import duckdb
except ImportError:  # pragma: no cover
    duckdb = None  # type: ignore[assignment]

try:  # pragma: no cover
    import pyarrow
except ImportError:  # pragma: no cover
    pyarrow = None  # type: ignore[assignment]

from repro.constraints.denial import DenialConstraint
from repro.constraints.sql import ViolationQuery, violation_query
from repro.exceptions import BackendError, InstanceError, PushdownError
from repro.model.instance import DatabaseInstance
from repro.model.schema import Relation, Schema
from repro.model.tuples import Tuple
from repro.repair.result import RepairResult
from repro.storage.base import ExportMode
from repro.storage.witnesses import stream_witness_sets
from repro.violations.detector import ViolationSet, _ordered_violation_sets
from repro.violations.pushdown import (
    BINDING_ATTR,
    bind_backend,
    prescan_columns,
    pushdown_requirements,
    referenced_columns,
    slot_columns,
)

#: DuckDB type names belonging to the integral type class.
_INTEGER_TYPES = frozenset(
    {
        "TINYINT",
        "SMALLINT",
        "INTEGER",
        "BIGINT",
        "HUGEINT",
        "UTINYINT",
        "USMALLINT",
        "UINTEGER",
        "UBIGINT",
    }
)

#: DuckDB type names belonging to the floating type class.
_FLOAT_TYPES = frozenset({"FLOAT", "REAL", "DOUBLE"})


def duckdb_available() -> bool:
    """True when the optional ``duckdb`` driver is importable."""
    return duckdb is not None


def _type_class(data_type: str) -> str:
    """Coarse type class of a DuckDB column type: int / float / text / other."""
    base = data_type.upper().split("(", 1)[0].strip()
    if base in _INTEGER_TYPES:
        return "int"
    if base in _FLOAT_TYPES or base.startswith("DECIMAL"):
        return "float"
    if base in ("VARCHAR", "TEXT", "STRING", "CHAR", "BPCHAR"):
        return "text"
    return "other"


def _infer_column_type(relation: Relation, position: int, values: list) -> str:
    """One DuckDB type for a column, inferred from the instance data."""
    classes = set()
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            classes.add("mixed")
        elif isinstance(value, int):
            classes.add("int")
        elif isinstance(value, float):
            classes.add("float")
        elif isinstance(value, str):
            classes.add("text")
        else:
            classes.add("mixed")
    if not classes:
        # Empty (or all-NULL) column: the type is unobservable in every
        # query over it, so default to the integral convention of the
        # repair model's flexible attributes.
        return "BIGINT"
    if classes == {"int"}:
        return "BIGINT"
    if classes <= {"int", "float"} and "float" in classes:
        return "DOUBLE"
    if classes == {"text"}:
        return "VARCHAR"
    raise BackendError(
        f"column {relation.name}.{relation.attributes[position].name} mixes "
        "value types; DuckDB columns are strictly typed - clean the data or "
        "use the sqlite backend"
    )


class DuckDBBackend:
    """Backend over a DuckDB database file (or ``:memory:``)."""

    _READONLY_KEYWORDS = frozenset({"SELECT", "PRAGMA", "EXPLAIN", "DESCRIBE"})

    def __init__(self, path: str = ":memory:") -> None:
        if duckdb is None:
            raise BackendError(
                "duckdb is not installed - install the optional extra: "
                "pip install repro[duckdb]"
            )
        self.path = path
        self._generation = 0
        self._column_types: dict[tuple[str, str], str] = {}
        try:
            self._connection = duckdb.connect(path)
        except duckdb.Error as error:
            raise BackendError(
                f"cannot open duckdb database {path!r}: {error}"
            ) from error

    @property
    def generation(self) -> int:
        """Write counter; see :attr:`SqliteBackend.generation`."""
        return self._generation

    def _cursor(self) -> Any:
        try:
            return self._connection.cursor()
        except duckdb.Error as error:
            raise BackendError(f"duckdb connection unusable: {error}") from error

    # -- setup -----------------------------------------------------------------

    def write_instance(self, instance: DatabaseInstance) -> None:
        """(Re)create one typed table per relation and bulk-load the data.

        Column types are inferred from the instance (see module docstring);
        ingestion goes through an Arrow table registration when ``pyarrow``
        is available (zero-copy into DuckDB) and falls back to
        ``executemany`` otherwise.
        """
        cursor = self._cursor()
        try:
            for relation in instance.schema:
                rows = [t.values for t in instance.tuples(relation.name)]
                columns = [
                    [row[i] for row in rows]
                    for i in range(len(relation.attributes))
                ]
                ddl_parts = []
                for position, attribute in enumerate(relation.attributes):
                    type_name = _infer_column_type(
                        relation, position, columns[position]
                    )
                    self._column_types[(relation.name, attribute.name)] = type_name
                    ddl_parts.append(f"{attribute.name} {type_name}")
                key = ", ".join(relation.key)
                cursor.execute(f"DROP TABLE IF EXISTS {relation.name}")
                cursor.execute(
                    f"CREATE TABLE {relation.name} "
                    f"({', '.join(ddl_parts)}, PRIMARY KEY ({key}))"
                )
                if not rows:
                    continue
                self._ingest(cursor, relation, rows, columns)
        except duckdb.Error as error:
            raise BackendError(f"duckdb ingestion failed: {error}") from error
        self._generation += 1

    def _ingest(
        self,
        cursor: Any,
        relation: Relation,
        rows: list[tuple],
        columns: list[list],
    ) -> None:
        names = list(relation.attribute_names)
        if pyarrow is not None:
            table = pyarrow.table(dict(zip(names, columns)))
            view = f"_repro_ingest_{relation.name}"
            cursor.register(view, table)
            try:
                cursor.execute(
                    f"INSERT INTO {relation.name} "
                    f"SELECT {', '.join(names)} FROM {view}"
                )
            finally:
                cursor.unregister(view)
            return
        placeholders = ", ".join("?" for _ in names)
        cursor.executemany(
            f"INSERT INTO {relation.name} VALUES ({placeholders})", rows
        )

    @classmethod
    def from_instance(
        cls, instance: DatabaseInstance, path: str = ":memory:"
    ) -> "DuckDBBackend":
        """Create a database holding ``instance`` (convenience for tests)."""
        backend = cls(path)
        backend.write_instance(instance)
        return backend

    # -- Backend protocol --------------------------------------------------------

    def load_instance(self, schema: Schema) -> DatabaseInstance:
        """Read every table into a backend-resident in-memory instance."""
        instance = DatabaseInstance(schema)
        cursor = self._cursor()
        for relation in schema:
            try:
                cursor.execute(
                    f"SELECT {', '.join(relation.attribute_names)} "
                    f"FROM {relation.name}"
                )
                rows = cursor.fetchall()
            except duckdb.Error as error:
                raise BackendError(
                    f"cannot read table {relation.name!r}: {error}"
                ) from error
            for row in rows:
                instance.insert(Tuple(relation, tuple(row)))
        bind_backend(instance, self)
        # Seed the NULL-scan cache from the rows just read (declared
        # types already settle the integer checks in DuckDB).
        getattr(instance, BINDING_ATTR).cache.update(prescan_columns(instance))
        return instance

    def find_violations(
        self,
        schema: Schema,
        constraints: Iterable[DenialConstraint],
    ) -> tuple[ViolationSet, ...]:
        """Run the Algorithm-2 SQL and assemble minimal violation sets."""
        instance = self.load_instance(schema)
        results: list[ViolationSet] = []
        cursor = self._cursor()
        for constraint in constraints:
            compiled = violation_query(constraint, schema)
            try:
                cursor.execute(compiled.sql)
                used_sets = stream_witness_sets(
                    cursor.fetchmany, compiled, instance
                )
            except duckdb.Error as error:
                raise BackendError(
                    f"violation query failed for {constraint.label}: "
                    f"{compiled.sql!r}: {error}"
                ) from error
            results.extend(_ordered_violation_sets(used_sets, constraint))
        return tuple(results)

    def export_repair(
        self,
        result: RepairResult,
        mode: ExportMode,
        destination: str | None = None,
    ) -> str:
        """Persist the repair per the configured export mode."""
        if mode is ExportMode.UPDATE:
            return self._export_update(result)
        if mode is ExportMode.INSERT_NEW:
            return self._export_tables(result.repaired, suffix="_repaired")
        if destination is None:
            raise BackendError("DUMP_TEXT export needs a destination path")
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(result.repaired.to_text() + "\n")
        return f"dumped to {destination}"

    def export_snapshot(
        self,
        instance: DatabaseInstance,
        mode: ExportMode,
        destination: str | None = None,
    ) -> str:
        """Persist a full instance snapshot (deletion-based repairs)."""
        if mode is ExportMode.UPDATE:
            cursor = self._cursor()
            try:
                for relation in instance.schema:
                    cursor.execute(f"DELETE FROM {relation.name}")
                    rows = [t.values for t in instance.tuples(relation.name)]
                    if rows:
                        columns = [
                            [row[i] for row in rows]
                            for i in range(len(relation.attributes))
                        ]
                        self._ingest(cursor, relation, rows, columns)
            except duckdb.Error as error:
                raise BackendError(f"snapshot export failed: {error}") from error
            self._generation += 1
            return "rewrote tables from repaired snapshot"
        if mode is ExportMode.INSERT_NEW:
            return self._export_tables(instance, suffix="_repaired")
        if destination is None:
            raise BackendError("DUMP_TEXT export needs a destination path")
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(instance.to_text() + "\n")
        return f"dumped to {destination}"

    # -- export modes ---------------------------------------------------------------

    def _export_update(self, result: RepairResult) -> str:
        cursor = self._cursor()
        updated = 0
        try:
            for change in result.changes:
                relation = result.repaired.schema.relation(change.ref.relation_name)
                key_clause = " AND ".join(f"{k} = ?" for k in relation.key)
                cursor.execute(
                    f"UPDATE {relation.name} SET {change.attribute} = ? "
                    f"WHERE {key_clause}",
                    (change.new_value, *change.ref.key_values),
                )
                updated += 1
        except duckdb.Error as error:
            raise BackendError(f"update export failed: {error}") from error
        self._generation += 1
        return f"updated {updated} rows in place"

    def _export_tables(self, instance: DatabaseInstance, suffix: str) -> str:
        cursor = self._cursor()
        try:
            for relation in instance.schema:
                source = relation.name
                target = f"{source}{suffix}"
                cursor.execute(f"DROP TABLE IF EXISTS {target}")
                rows = [t.values for t in instance.tuples(source)]
                columns = [
                    [row[i] for row in rows]
                    for i in range(len(relation.attributes))
                ]
                ddl_parts = []
                for position, attribute in enumerate(relation.attributes):
                    type_name = _infer_column_type(relation, position, columns[position])
                    ddl_parts.append(f"{attribute.name} {type_name}")
                cursor.execute(f"CREATE TABLE {target} ({', '.join(ddl_parts)})")
                if rows:
                    renamed = Relation(
                        name=target,
                        attributes=relation.attributes,
                        key=relation.key,
                    )
                    self._ingest(cursor, renamed, rows, columns)
        except duckdb.Error as error:
            raise BackendError(f"insert export failed: {error}") from error
        self._generation += 1
        return f"inserted repaired tables with suffix {suffix}"

    # -- pushdown detection -----------------------------------------------------------

    def _declared_type(self, cursor: Any, relation_name: str, attribute_name: str) -> str:
        key = (relation_name, attribute_name)
        cached = self._column_types.get(key)
        if cached is not None:
            return cached
        try:
            cursor.execute(
                "SELECT data_type FROM information_schema.columns "
                "WHERE table_name = ? AND column_name = ?",
                (relation_name, attribute_name),
            )
            row = cursor.fetchone()
        except duckdb.Error as error:
            raise PushdownError(
                f"cannot read declared type of "
                f"{relation_name}.{attribute_name}: {error}"
            ) from error
        if row is None:
            raise PushdownError(
                f"no such column {relation_name}.{attribute_name} in the "
                "duckdb database"
            )
        self._column_types[key] = row[0]
        return row[0]

    def _column_null_free(
        self,
        cursor: Any,
        relation_name: str,
        attribute_name: str,
        cache: dict[Any, bool] | None,
    ) -> bool:
        key = ("null", relation_name, attribute_name)
        if cache is not None and key in cache:
            return cache[key]
        cursor.execute(
            f"SELECT 1 FROM {relation_name} "
            f"WHERE {attribute_name} IS NULL LIMIT 1"
        )
        clean = cursor.fetchone() is None
        if cache is not None:
            cache[key] = clean
        return clean

    def _check_pushdown_executable(
        self,
        cursor: Any,
        schema: Schema,
        constraint: DenialConstraint,
        cache: dict[Any, bool] | None,
    ) -> None:
        """Refuse shapes where DuckDB semantics diverge from Python.

        Declared types replace sqlite's per-row ``typeof`` scans: order
        comparisons, offset arithmetic, and builtin constants (always
        integers) need integral columns, and columns the SQL compares to
        each other must share a type class (DuckDB casts across classes
        and errors, where Python just answers ``False``).  Compared
        columns must additionally be NULL-free, as in sqlite.
        """
        from repro.violations.pushdown import comparable_column_groups

        required = set(
            slot_columns(constraint, schema, pushdown_requirements(constraint))
        )
        for builtin in constraint.builtins:
            required |= slot_columns(
                constraint, schema, constraint.occurrences(builtin.variable)
            )
        for relation_name, attribute_name in sorted(required):
            declared = self._declared_type(cursor, relation_name, attribute_name)
            if _type_class(declared) != "int":
                raise PushdownError(
                    f"{constraint.label}: column "
                    f"{relation_name}.{attribute_name} is {declared}, but "
                    "order/offset/builtin comparisons push down only over "
                    "integral columns"
                )
        for group in comparable_column_groups(constraint, schema):
            classes = {
                _type_class(self._declared_type(cursor, rel, attr))
                for rel, attr in group
            }
            if len(classes) > 1 or "other" in classes:
                named = ", ".join(f"{r}.{a}" for r, a in sorted(group))
                raise PushdownError(
                    f"{constraint.label}: compared columns {named} span "
                    "different type classes; DuckDB casts across classes "
                    "where Python compares unequal"
                )
        for relation_name, attribute_name in sorted(
            referenced_columns(constraint, schema)
        ):
            if not self._column_null_free(
                cursor, relation_name, attribute_name, cache
            ):
                raise PushdownError(
                    f"{constraint.label}: column "
                    f"{relation_name}.{attribute_name} holds NULLs, which "
                    "never satisfy SQL comparisons but compare equal as "
                    "Python None"
                )

    def _pushdown_cursor(
        self,
        constraint: DenialConstraint,
        schema: Schema,
        cache: dict[Any, bool] | None,
    ) -> tuple[Any, ViolationQuery]:
        compiled = violation_query(constraint, schema)
        cursor = self._cursor()
        try:
            self._check_pushdown_executable(cursor, schema, constraint, cache)
        except duckdb.Error as error:
            raise PushdownError(
                f"{constraint.label}: pushdown pre-check failed: {error}"
            ) from error
        return cursor, compiled

    def pushdown_witnesses(
        self,
        instance: DatabaseInstance,
        constraint: DenialConstraint,
        max_violations: int | None = None,
        cache: dict[Any, bool] | None = None,
    ) -> set[frozenset[Tuple]]:
        """Witness tuple sets of one constraint, computed in-database.

        Same contract as :meth:`SqliteBackend.pushdown_witnesses`.
        """
        cursor, compiled = self._pushdown_cursor(constraint, instance.schema, cache)
        try:
            cursor.execute(compiled.sql)
            return stream_witness_sets(
                cursor.fetchmany,
                compiled,
                instance,
                max_violations=max_violations,
            )
        except duckdb.Error as error:
            raise PushdownError(
                f"{constraint.label}: violation query failed: "
                f"{compiled.sql!r}: {error}"
            ) from error
        except InstanceError as error:
            raise PushdownError(
                f"{constraint.label}: backend rows diverged from the bound "
                f"instance: {error}"
            ) from error

    def pushdown_has_witness(
        self,
        instance: DatabaseInstance,
        constraint: DenialConstraint,
        cache: dict[Any, bool] | None = None,
    ) -> bool:
        """``LIMIT 1`` probe: does the constraint have any witness?"""
        cursor, compiled = self._pushdown_cursor(constraint, instance.schema, cache)
        try:
            cursor.execute(compiled.sql + " LIMIT 1")
            return cursor.fetchone() is not None
        except duckdb.Error as error:
            raise PushdownError(
                f"{constraint.label}: violation query failed: "
                f"{compiled.sql!r}: {error}"
            ) from error

    # -- misc -------------------------------------------------------------------------

    def execute(self, sql: str, parameters: Sequence[Any] = ()) -> list[tuple]:
        """Run raw SQL (diagnostics, tests); writes bump the generation."""
        try:
            cursor = self._connection.execute(sql, parameters or None)
            rows = cursor.fetchall()
        except duckdb.Error as error:
            raise BackendError(f"query failed: {sql!r}: {error}") from error
        first_word = sql.lstrip().split(None, 1)[0].upper() if sql.strip() else ""
        if first_word not in self._READONLY_KEYWORDS:
            self._generation += 1
        return rows

    def close(self) -> None:
        """Close the underlying connection."""
        self._connection.close()

    def __enter__(self) -> "DuckDBBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
