"""Distance functions and mono-local fixes (Definitions 2.1, 2.6, 2.8)."""

from repro.fixes.distance import (
    CITY_DISTANCE,
    EUCLIDEAN_DISTANCE,
    ZERO_ONE_DISTANCE,
    DistanceMetric,
    database_delta,
    get_metric,
    tuple_delta,
)
from repro.fixes.mlf import (
    FixCandidate,
    mono_local_fix,
    mono_local_fixes_for_tuple,
    solved_violations,
)

__all__ = [
    "CITY_DISTANCE",
    "EUCLIDEAN_DISTANCE",
    "ZERO_ONE_DISTANCE",
    "DistanceMetric",
    "database_delta",
    "get_metric",
    "tuple_delta",
    "FixCandidate",
    "mono_local_fix",
    "mono_local_fixes_for_tuple",
    "solved_violations",
]
