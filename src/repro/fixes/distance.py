"""The Δ-distance between instances (Definition 2.1).

The distance between two instances with the same key sets is::

    Δ(D, D') = Σ_R Σ_{k̄ ∈ val(K_R)} Σ_{A ∈ F ∩ A_R}
               α_A · Dist(π_A(t̄(k̄,R,D)), π_A(t̄(k̄,R,D')))

where ``Dist`` is any function that increases monotonically in the absolute
difference.  The paper names the city distance ``L₁`` (absolute difference)
and the euclidean distance ``L₂`` (squared difference); we also provide a
0/1 distance, under which Δ counts changed cells.  All repair results in
the paper hold for any such ``Dist``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.exceptions import InstanceError, ReproError
from repro.model.instance import DatabaseInstance
from repro.model.tuples import Tuple


@dataclass(frozen=True)
class DistanceMetric:
    """A per-cell distance ``Dist(old, new)``.

    ``point`` must be symmetric, zero iff ``old == new``, and monotonically
    increasing in ``|old - new|`` (the condition Definition 2.1 imposes so
    mono-local fixes are unique and minimal).
    """

    name: str
    point: Callable[[int, int], float]

    def __call__(self, old: int, new: int) -> float:
        return self.point(old, new)

    def __repr__(self) -> str:
        return f"DistanceMetric({self.name})"


CITY_DISTANCE = DistanceMetric("L1", lambda a, b: float(abs(a - b)))
"""The city (L₁) distance: sum of absolute differences."""

EUCLIDEAN_DISTANCE = DistanceMetric("L2", lambda a, b: float((a - b) ** 2))
"""The euclidean (L₂) distance as used in the paper: sum of squared differences."""

ZERO_ONE_DISTANCE = DistanceMetric("L0", lambda a, b: 0.0 if a == b else 1.0)
"""A 0/1 distance: Δ counts updated cells.  Used by the cardinality reduction."""

_METRICS: Mapping[str, DistanceMetric] = {
    "l1": CITY_DISTANCE,
    "city": CITY_DISTANCE,
    "l2": EUCLIDEAN_DISTANCE,
    "euclidean": EUCLIDEAN_DISTANCE,
    "l0": ZERO_ONE_DISTANCE,
    "zero-one": ZERO_ONE_DISTANCE,
}


def get_metric(name: str | DistanceMetric) -> DistanceMetric:
    """Resolve a metric by name (``l1``/``city``, ``l2``/``euclidean``, ``l0``)."""
    if isinstance(name, DistanceMetric):
        return name
    try:
        return _METRICS[name.lower()]
    except KeyError:
        raise ReproError(
            f"unknown distance metric {name!r}; choose from {sorted(_METRICS)}"
        ) from None


def tuple_delta(
    old: Tuple, new: Tuple, metric: DistanceMetric = CITY_DISTANCE
) -> float:
    """``Δ({t}, {t'})``: weighted distance between two versions of a tuple.

    Both tuples must belong to the same relation and share their key; the
    sum ranges over the relation's flexible attributes, each weighted by its
    ``α_A``.
    """
    if old.relation.name != new.relation.name:
        raise InstanceError(
            f"cannot compare tuples of {old.relation.name!r} and "
            f"{new.relation.name!r}"
        )
    if old.key != new.key:
        raise InstanceError(
            f"tuples must share their key to be compared: {old.key!r} vs {new.key!r}"
        )
    total = 0.0
    relation = old.relation
    for attribute in relation.flexible_attributes:
        position = relation.position(attribute.name)
        total += attribute.weight * metric(
            old.values[position], new.values[position]
        )
    return total


def database_delta(
    original: DatabaseInstance,
    repaired: DatabaseInstance,
    metric: DistanceMetric = CITY_DISTANCE,
) -> float:
    """``Δ(D, D')`` over all relations and keys (Definition 2.1).

    Requires both instances to have identical key sets per relation -
    repairs by attribute update never add or remove keys.
    """
    if not original.same_key_sets(repaired):
        raise InstanceError(
            "Δ-distance is only defined between instances with the same "
            "key sets per relation"
        )
    total = 0.0
    for relation in original.schema:
        if not relation.flexible_attributes:
            continue
        for old in original.tuples(relation.name):
            new = repaired.get(relation.name, old.key)
            total += tuple_delta(old, new, metric)
    return total
