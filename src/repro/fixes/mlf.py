"""Mono-local fixes ``MLF(t, ic, A)`` (Definitions 2.6 and 2.8).

A *local fix* of a tuple keeps its hard attributes, solves at least one
violation set, and is distance-minimal among fixes solving the same sets.
A *mono-local* fix changes exactly one attribute; Proposition 2.7 states it
is unique per ``(t, ic, A)``, and Definition 2.8 constructs it:

* normalize ``≤``/``≥`` to strict comparisons over ℤ (footnote 2);
* if ``ic`` contains ``A < c₁, …, A < c_n``, replace ``A`` with
  ``min{c₁, …, c_n}`` (raise the value to the smallest upper bound - the
  tightest atom is falsified, hence the whole conjunction);
* if ``ic`` contains ``A > c₁, …, A > c_n``, replace with ``max{cᵢ}``.

Locality condition (c) guarantees the two cases never mix for one flexible
attribute, so every attribute has one global fix direction and fixes
compose monotonically (moving further never re-satisfies a falsified atom).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.constraints.atoms import Comparator
from repro.constraints.denial import DenialConstraint
from repro.exceptions import LocalityError
from repro.model.schema import Schema
from repro.model.tuples import Tuple, TupleRef
from repro.obs import current_tracer
from repro.violations.detector import ViolationSet


def mono_local_fix(
    tup: Tuple,
    constraint: DenialConstraint,
    attribute_name: str,
    schema: Schema,
) -> Tuple | None:
    """Compute ``MLF(t, ic, A)`` or ``None`` when no fix on ``A`` exists.

    Returns ``None`` when the constraint has no strict comparison over the
    attribute, or when the computed replacement would not move the value in
    the attribute's fix direction (which happens only when ``t`` does not
    actually violate the comparisons - such a candidate solves nothing).
    Raises :class:`LocalityError` if the attribute occurs in both ``<`` and
    ``>`` comparisons within ``ic`` (non-local input).
    """
    relation = tup.relation
    attribute = relation.attribute(attribute_name)
    if not attribute.is_flexible:
        return None
    comparisons = constraint.comparisons_on(schema, relation.name, attribute_name)
    lt_bounds = [
        c.constant for c in comparisons if c.comparator is Comparator.LT
    ]
    gt_bounds = [
        c.constant for c in comparisons if c.comparator is Comparator.GT
    ]
    if lt_bounds and gt_bounds:
        raise LocalityError(
            f"{constraint.label}: attribute {relation.name}.{attribute_name} "
            "occurs in both '<' and '>' comparisons; the constraint is not local"
        )
    old_value = tup[attribute_name]
    if lt_bounds:
        new_value = min(lt_bounds)          # Definition 2.8 case (a)
        if new_value <= old_value:
            return None
    elif gt_bounds:
        new_value = max(gt_bounds)          # Definition 2.8 case (b)
        if new_value >= old_value:
            return None
    else:
        return None
    return tup.replace({attribute_name: new_value})


def mono_local_fixes_for_tuple(
    tup: Tuple,
    constraint: DenialConstraint,
    schema: Schema,
) -> dict[str, Tuple]:
    """All mono-local fixes of ``t`` wrt one constraint, keyed by attribute.

    Iterates the flexible attributes of ``t``'s relation that occur in
    ``A_B(ic)`` - exactly the triple loop of Algorithm 3.
    """
    fixes: dict[str, Tuple] = {}
    builtin_attributes = constraint.attributes_in_builtins(schema)
    for attribute in tup.relation.flexible_attributes:
        if (tup.relation.name, attribute.name) not in builtin_attributes:
            continue
        fixed = mono_local_fix(tup, constraint, attribute.name, schema)
        if fixed is not None:
            fixes[attribute.name] = fixed
    current_tracer().metrics.counter("mlf_evaluations").inc(len(fixes))
    return fixes


def solved_violations(
    old: Tuple,
    new: Tuple,
    violations: Sequence[ViolationSet],
    candidate_indices: Iterable[int] | None = None,
) -> tuple[int, ...]:
    """Indices of violation sets solved by replacing ``old`` with ``new``.

    This computes ``S(t, t′)`` of Definition 2.6(b): a violation set
    ``(I, ic)`` with ``t ∈ I`` is solved when ``(I \\ {t}) ∪ {t'} ⊨ ic``.
    The check is cross-constraint (Algorithm 4): a fix generated for one
    constraint may also solve violation sets of another (Example 3.3).

    ``candidate_indices`` restricts the scan to the given positions - the
    repair builder passes the precomputed ``I(D, IC, t)`` index so the
    overall construction stays linear when the degree of inconsistency is
    bounded.
    """
    if candidate_indices is None:
        candidate_indices = range(len(violations))
    solved: list[int] = []
    for index in candidate_indices:
        violation = violations[index]
        if old not in violation:
            continue
        substituted = [t for t in violation.tuples if t != old]
        substituted.append(new)
        if not violation.constraint.violated_by(substituted):
            solved.append(index)
    return tuple(solved)


@dataclass(frozen=True)
class FixCandidate:
    """A weighted mono-local fix - one *set* of the MWSCP (Definition 3.1(b)).

    Attributes
    ----------
    ref:
        Identity of the tuple being fixed.
    old, new:
        The original tuple and its mono-local fix ``t′``.
    attribute:
        The single attribute the fix updates.
    new_value:
        The replacement value.
    weight:
        ``w(S(t,t′)) = Δ({t}, {t′})`` under the chosen metric
        (Definition 3.1(c)).
    solves:
        Indices (into the violation-set universe) of the elements this fix
        covers - ``S(t, t′)``.
    sources:
        Labels of the constraints whose Definition-2.8 construction produced
        this fix (several constraints can induce the same fix, e.g. ``t₁¹``
        in Example 2.10).
    """

    ref: TupleRef
    old: Tuple
    new: Tuple
    attribute: str
    new_value: int
    weight: float
    solves: tuple[int, ...]
    sources: tuple[str, ...] = ()

    def describe(self) -> str:
        """One-line human-readable description of the update."""
        return (
            f"{self.ref.relation_name}{list(self.ref.key_values)}: "
            f"{self.attribute} {self.old[self.attribute]} -> {self.new_value} "
            f"(weight {self.weight:g}, solves {len(self.solves)})"
        )


def dedupe_candidates(
    candidates: Iterable[FixCandidate],
) -> list[FixCandidate]:
    """Merge candidates describing the same update of the same tuple.

    Two constraints can produce the identical mono-local fix; the MWSCP
    must contain it once, with the union of solved sets and merged sources
    (Example 3.3 lists ``S(t₁, t₁¹)`` once even though both ic₁ and ic₂
    generate it).
    """
    merged: dict[tuple[TupleRef, str, int], FixCandidate] = {}
    for candidate in candidates:
        key = (candidate.ref, candidate.attribute, candidate.new_value)
        existing = merged.get(key)
        if existing is None:
            merged[key] = candidate
        else:
            merged[key] = FixCandidate(
                ref=existing.ref,
                old=existing.old,
                new=existing.new,
                attribute=existing.attribute,
                new_value=existing.new_value,
                weight=existing.weight,
                solves=tuple(sorted(set(existing.solves) | set(candidate.solves))),
                sources=tuple(
                    dict.fromkeys(existing.sources + candidate.sources)
                ),
            )
    return list(merged.values())
