"""Algorithm 1: the plain greedy MWSC approximation (Chvátal).

At every stage the algorithm recomputes the *effective weight*
``w_ef(s) = w(s) / |s \\ E|`` of every live set (``E`` = covered elements)
and adds the set with the smallest effective weight to the cover.  Sets
whose elements are all covered have undefined effective weight and are
dropped.  The approximation factor is ``H_n = O(log n)`` (Chvátal 1979;
Lund & Yannakakis 1994 show this is essentially optimal).

The paper's Proposition 3.5: on the repair instances this runs in O(n³) in
general and O(n²) when the degree of inconsistency is bounded - the cost
is dominated by the per-iteration rescan of all sets, which the *modified*
greedy (:mod:`repro.setcover.modified_greedy`) eliminates.

Tie-breaking is deterministic - smallest ``(w_ef, set_id)`` - and identical
to the modified greedy, so both algorithms return exactly the same cover.
"""

from __future__ import annotations

from repro.obs import traced_solver
from repro.setcover.instance import SetCoverInstance
from repro.setcover.result import Cover


@traced_solver("greedy")
def greedy_cover(instance: SetCoverInstance) -> Cover:
    """Run Algorithm 1 and return the selected cover.

    Raises :class:`~repro.exceptions.UncoverableError` when some element
    belongs to no set.
    """
    instance.check_coverable()

    # Live sets keep their *uncovered* element set; covered sets drop out.
    uncovered_of_set: dict[int, set[int]] = {
        s.set_id: set(s.elements) for s in instance.sets if s.elements
    }
    weights = [s.weight for s in instance.sets]
    n_uncovered = instance.n_elements
    selected: list[int] = []
    total_weight = 0.0
    iterations = 0
    scanned_sets = 0

    while n_uncovered > 0:
        iterations += 1
        best_id = -1
        best_key: tuple[float, int] | None = None
        # "foreach s in S: w_ef(s) <- w(s)/|s|; M <- element with smallest w_ef"
        for set_id, uncovered in uncovered_of_set.items():
            scanned_sets += 1
            effective = weights[set_id] / len(uncovered)
            key = (effective, set_id)
            if best_key is None or key < best_key:
                best_key = key
                best_id = set_id
        # check_coverable guarantees progress: some live set has an
        # uncovered element as long as n_uncovered > 0.
        newly_covered = uncovered_of_set.pop(best_id)
        selected.append(best_id)
        total_weight += weights[best_id]
        n_uncovered -= len(newly_covered)

        # "foreach s in S: s <- s \ M"; empty sets leave S.
        exhausted: list[int] = []
        for set_id, uncovered in uncovered_of_set.items():
            uncovered -= newly_covered
            if not uncovered:
                exhausted.append(set_id)
        for set_id in exhausted:
            del uncovered_of_set[set_id]

    return Cover(
        selected=tuple(selected),
        weight=total_weight,
        algorithm="greedy",
        iterations=iterations,
        stats={"scanned_sets": scanned_sets},
    )
