"""Connected-component decomposition of set-cover instances.

Repair MWSCP instances are *clustered*: a violation set only shares fixes
with violation sets touching the same tuples, so the element/set incidence
graph splits into many small connected components (one per "infected"
group of tuples - e.g. one per household in the census workload).  The
components are independent subproblems:

* any solver runs on each component separately with identical results for
  greedy-style algorithms (their choices never interact across
  components);
* the **exact** solver becomes feasible on large databases whose
  components are small - optimal repairs for real inconsistency profiles,
  something the monolithic branch-and-bound can never do;
* the layer algorithm actually *improves* under decomposition: its global
  minimum-ratio subtraction couples unrelated components (a cheap set in
  one component delays zeroing in another), so per-component layering can
  only produce lighter covers.

``decompose`` returns the components; ``solve_by_components`` runs a
solver per component — serially or fanned out over a
:mod:`repro.runtime` executor — and stitches the covers back together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.setcover.instance import SetCoverInstance, WeightedSet
from repro.setcover.result import Cover


@dataclass(frozen=True)
class Component:
    """One connected component of an instance, with id mappings back.

    ``element_ids[i]`` / ``set_ids[j]`` give the original ids of the
    component-local element ``i`` / set ``j``.
    """

    instance: SetCoverInstance
    element_ids: tuple[int, ...]
    set_ids: tuple[int, ...]


def decompose(instance: SetCoverInstance) -> tuple[Component, ...]:
    """Split an instance into its connected components.

    Two elements are connected when some set contains both; sets join the
    component of their elements.  Sets with no elements are dropped (they
    can never be part of a sensible cover).  Components are ordered by
    their smallest element id, elements and sets keep relative order, so
    the decomposition is deterministic.
    """
    parent = list(range(instance.n_elements))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_b] = root_a

    for weighted_set in instance.sets:
        elements = weighted_set.elements
        for other in elements[1:]:
            union(elements[0], other)

    members: dict[int, list[int]] = {}
    for element in range(instance.n_elements):
        members.setdefault(find(element), []).append(element)

    components: list[Component] = []
    for root in sorted(members, key=lambda r: members[r][0]):
        element_ids = tuple(members[root])
        local_of = {e: i for i, e in enumerate(element_ids)}
        set_ids: list[int] = []
        local_sets: list[WeightedSet] = []
        for weighted_set in instance.sets:
            if not weighted_set.elements:
                continue
            if find(weighted_set.elements[0]) != root:
                continue
            local_sets.append(
                WeightedSet(
                    len(local_sets),
                    weighted_set.weight,
                    tuple(local_of[e] for e in weighted_set.elements),
                    weighted_set.payload,
                )
            )
            set_ids.append(weighted_set.set_id)
        components.append(
            Component(
                instance=SetCoverInstance(len(element_ids), local_sets),
                element_ids=element_ids,
                set_ids=tuple(set_ids),
            )
        )
    return tuple(components)


def _solver_name(solver: Callable[[SetCoverInstance], Cover]) -> str:
    # Flat-engine twins are named ``flat_<object name>``; the prefix is
    # stripped so decomposed covers carry the same ``algorithm`` label on
    # both engines (the funnel compares labels, stats carry the engine).
    name = getattr(solver, "__name__", "solver")
    return name[5:] if name.startswith("flat_") else name


def _solve_components_parallel(
    components: Sequence[Component],
    chosen: Sequence[Callable[[SetCoverInstance], Cover]],
    executor,
) -> list[tuple] | None:
    """Fan component solving out over an executor; ``None`` = stay serial.

    Components are LPT-batched by size (elements + sets) so one large
    component cannot straggle a worker that also drew many small ones.
    Results come back as ``(selected, weight, iterations, stats)`` tuples
    reassembled into original component order, which makes the merge loop
    byte-identical to the serial one.
    """
    from repro.runtime.executor import as_executor, balanced_chunks
    from repro.runtime.workers import (
        component_spec,
        solve_component_batch,
        solver_token,
    )

    ex = as_executor(executor)
    if not ex.is_parallel or len(components) <= 1:
        return None
    # Thread workers record into the active tracer directly (under the
    # solve anchor); process workers export a remote payload instead.
    from repro.obs import current_tracer

    tracer = current_tracer()
    trace_remote = tracer.enabled and ex.backend == "process"
    tokens = [solver_token(use) for use in chosen]
    costs = [
        float(c.instance.n_elements + len(c.instance.sets)) for c in components
    ]
    chunks = balanced_chunks(costs, ex.n_chunks(len(components)))
    payloads = [
        (
            [component_spec(components[i].instance) for i in chunk],
            [tokens[i] for i in chunk],
            trace_remote,
        )
        for chunk in chunks
    ]
    results: list[tuple | None] = [None] * len(components)
    for chunk, outcome in zip(chunks, ex.map(solve_component_batch, payloads)):
        if trace_remote:
            batch, remote = outcome
            tracer.attach_remote(remote)
        else:
            batch = outcome
        for index, result in zip(chunk, batch):
            results[index] = result
    return results  # type: ignore[return-value]


def solve_by_components(
    instance: SetCoverInstance,
    solver: Callable[[SetCoverInstance], Cover],
    max_component_elements: int | None = None,
    fallback: Callable[[SetCoverInstance], Cover] | None = None,
    executor=None,
    max_workers: int | None = None,
) -> Cover:
    """Solve each connected component independently and merge the covers.

    ``max_component_elements`` + ``fallback`` support the practical
    "exact where feasible" policy: components larger than the limit are
    handed to the fallback approximation instead of the main solver.

    ``executor`` (anything :func:`repro.runtime.as_executor` accepts — an
    :class:`~repro.runtime.Executor`, an
    :class:`~repro.runtime.ExecutionPolicy`, a backend name, or ``True``)
    fans the per-component solves out across workers; ``max_workers``
    bounds the pool.  Components are independent subproblems and results
    are merged in component order, so every backend returns the same cover
    as the serial loop, byte for byte.

    The merged ``stats`` carry the component counts plus the key-wise sum
    of every per-component solver stat (heap operations, layers, B&B
    nodes, ...), so decomposition no longer discards solver bookkeeping.
    """
    components = decompose(instance)
    chosen: list[Callable[[SetCoverInstance], Cover]] = []
    oversized = 0
    for component in components:
        use = solver
        if (
            max_component_elements is not None
            and component.instance.n_elements > max_component_elements
        ):
            if fallback is None:
                raise ValueError(
                    f"component with {component.instance.n_elements} elements "
                    f"exceeds the limit {max_component_elements} and no "
                    "fallback solver was given"
                )
            use = fallback
            oversized += 1
        chosen.append(use)

    results = None
    if executor is not None or max_workers is not None:
        results = _solve_components_parallel(components, chosen, _coerce_executor(executor, max_workers))
    if results is None:
        results = []
        for component, use in zip(components, chosen):
            cover = use(component.instance)
            results.append(
                (cover.selected, cover.weight, cover.iterations, cover.stats)
            )

    selected: list[int] = []
    total_weight = 0.0
    iterations = 0
    merged_stats: dict[str, "int | float | str"] = {}
    label_stats: dict[str, list[str]] = {}
    for component, (local_selected, weight, local_iterations, stats) in zip(
        components, results
    ):
        selected.extend(component.set_ids[i] for i in local_selected)
        total_weight += weight
        iterations += local_iterations
        for key, value in stats.items():
            if isinstance(value, str):
                # Label stats (e.g. ``solver_engine``) cannot be summed;
                # they survive the merge when every component agrees.
                label_stats.setdefault(key, []).append(value)
                continue
            # Int counts stay int (see repro.obs.stats for the schema);
            # any float contribution makes the sum float.
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                try:
                    value = float(value)
                except (TypeError, ValueError):
                    continue  # non-numeric solver stat: nothing sensible to merge
            merged_stats[key] = merged_stats.get(key, 0) + value
    for key, values in label_stats.items():
        if len(values) == len(components) and all(v == values[0] for v in values):
            merged_stats[key] = values[0]

    label = _solver_name(solver)
    if oversized:
        label = f"{label}, fallback={_solver_name(fallback)}"
    merged_stats["components"] = len(components)
    merged_stats["oversized_components"] = oversized
    return Cover(
        selected=tuple(selected),
        weight=total_weight,
        algorithm=f"by-components({label})",
        iterations=iterations,
        stats=merged_stats,
    )


def _coerce_executor(executor, max_workers: int | None):
    """Late import indirection so serial users never touch the runtime."""
    from repro.runtime.executor import as_executor

    return as_executor(executor, max_workers)


def component_size_histogram(
    components: Sequence[Component],
) -> dict[int, int]:
    """``{component element count: how many components}`` for diagnostics."""
    histogram: dict[int, int] = {}
    for component in components:
        size = component.instance.n_elements
        histogram[size] = histogram.get(size, 0) + 1
    return dict(sorted(histogram.items()))
