"""Connected-component decomposition of set-cover instances.

Repair MWSCP instances are *clustered*: a violation set only shares fixes
with violation sets touching the same tuples, so the element/set incidence
graph splits into many small connected components (one per "infected"
group of tuples - e.g. one per household in the census workload).  The
components are independent subproblems:

* any solver runs on each component separately with identical results for
  greedy-style algorithms (their choices never interact across
  components);
* the **exact** solver becomes feasible on large databases whose
  components are small - optimal repairs for real inconsistency profiles,
  something the monolithic branch-and-bound can never do;
* the layer algorithm actually *improves* under decomposition: its global
  minimum-ratio subtraction couples unrelated components (a cheap set in
  one component delays zeroing in another), so per-component layering can
  only produce lighter covers.

``decompose`` returns the components; ``solve_by_components`` runs a
solver per component and stitches the covers back together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.setcover.instance import SetCoverInstance, WeightedSet
from repro.setcover.result import Cover


@dataclass(frozen=True)
class Component:
    """One connected component of an instance, with id mappings back.

    ``element_ids[i]`` / ``set_ids[j]`` give the original ids of the
    component-local element ``i`` / set ``j``.
    """

    instance: SetCoverInstance
    element_ids: tuple[int, ...]
    set_ids: tuple[int, ...]


def decompose(instance: SetCoverInstance) -> tuple[Component, ...]:
    """Split an instance into its connected components.

    Two elements are connected when some set contains both; sets join the
    component of their elements.  Sets with no elements are dropped (they
    can never be part of a sensible cover).  Components are ordered by
    their smallest element id, elements and sets keep relative order, so
    the decomposition is deterministic.
    """
    parent = list(range(instance.n_elements))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_b] = root_a

    for weighted_set in instance.sets:
        elements = weighted_set.elements
        for other in elements[1:]:
            union(elements[0], other)

    members: dict[int, list[int]] = {}
    for element in range(instance.n_elements):
        members.setdefault(find(element), []).append(element)

    components: list[Component] = []
    for root in sorted(members, key=lambda r: members[r][0]):
        element_ids = tuple(members[root])
        local_of = {e: i for i, e in enumerate(element_ids)}
        set_ids: list[int] = []
        local_sets: list[WeightedSet] = []
        for weighted_set in instance.sets:
            if not weighted_set.elements:
                continue
            if find(weighted_set.elements[0]) != root:
                continue
            local_sets.append(
                WeightedSet(
                    len(local_sets),
                    weighted_set.weight,
                    tuple(local_of[e] for e in weighted_set.elements),
                    weighted_set.payload,
                )
            )
            set_ids.append(weighted_set.set_id)
        components.append(
            Component(
                instance=SetCoverInstance(len(element_ids), local_sets),
                element_ids=element_ids,
                set_ids=tuple(set_ids),
            )
        )
    return tuple(components)


def solve_by_components(
    instance: SetCoverInstance,
    solver: Callable[[SetCoverInstance], Cover],
    max_component_elements: int | None = None,
    fallback: Callable[[SetCoverInstance], Cover] | None = None,
) -> Cover:
    """Solve each connected component independently and merge the covers.

    ``max_component_elements`` + ``fallback`` support the practical
    "exact where feasible" policy: components larger than the limit are
    handed to the fallback approximation instead of the main solver.
    """
    components = decompose(instance)
    selected: list[int] = []
    total_weight = 0.0
    iterations = 0
    oversized = 0
    for component in components:
        use = solver
        if (
            max_component_elements is not None
            and component.instance.n_elements > max_component_elements
        ):
            if fallback is None:
                raise ValueError(
                    f"component with {component.instance.n_elements} elements "
                    f"exceeds the limit {max_component_elements} and no "
                    "fallback solver was given"
                )
            use = fallback
            oversized += 1
        cover = use(component.instance)
        selected.extend(component.set_ids[i] for i in cover.selected)
        total_weight += cover.weight
        iterations += cover.iterations
    return Cover(
        selected=tuple(selected),
        weight=total_weight,
        algorithm=f"by-components({getattr(solver, '__name__', 'solver')})",
        iterations=iterations,
        stats={
            "components": float(len(components)),
            "oversized_components": float(oversized),
        },
    )


def component_size_histogram(
    components: Sequence[Component],
) -> dict[int, int]:
    """``{component element count: how many components}`` for diagnostics."""
    histogram: dict[int, int] = {}
    for component in components:
        size = component.instance.n_elements
        histogram[size] = histogram.get(size, 0) + 1
    return dict(sorted(histogram.items()))
