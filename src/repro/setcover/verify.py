"""Validation helpers and post-processing for set covers."""

from __future__ import annotations

from typing import Iterable

from repro.setcover.instance import SetCoverInstance
from repro.setcover.result import Cover


def is_cover(instance: SetCoverInstance, selected: Iterable[int]) -> bool:
    """True when the selected sets cover the entire universe."""
    covered: set[int] = set()
    for set_id in selected:
        covered.update(instance.sets[set_id].elements)
    return len(covered) == instance.n_elements


def cover_weight(instance: SetCoverInstance, selected: Iterable[int]) -> float:
    """Total weight of the selected sets (each id counted once)."""
    return sum(instance.sets[set_id].weight for set_id in set(selected))


def minimize_cover(instance: SetCoverInstance, cover: Cover) -> Cover:
    """Drop redundant sets from a cover, heaviest first.

    A set is redundant when every element it contains is covered by the
    other selected sets.  Greedy never *selects* a redundant set, but a
    set picked early can become redundant later - and the layer algorithm
    routinely commits several zero-residual sets of one layer whose
    overlap makes some of them redundant.  On the repair workloads this
    one sweep makes layer covers *lighter than greedy's* (see the Figure-2
    ablation), at O(Σ|s|) cost.

    The result is still a valid cover; the weight can only decrease.
    """
    counts: dict[int, int] = {}
    for set_id in cover.selected:
        for element in instance.sets[set_id].elements:
            counts[element] = counts.get(element, 0) + 1

    dropped: set[int] = set()
    by_weight = sorted(
        set(cover.selected),
        key=lambda s: (-instance.sets[s].weight, -s),
    )
    for set_id in by_weight:
        elements = instance.sets[set_id].elements
        if elements and all(counts[e] > 1 for e in elements):
            for element in elements:
                counts[element] -= 1
            dropped.add(set_id)

    if not dropped:
        return cover
    selected = tuple(s for s in cover.selected if s not in dropped)
    return Cover(
        selected=selected,
        weight=sum(instance.sets[s].weight for s in selected),
        algorithm=f"{cover.algorithm}+prune",
        iterations=cover.iterations,
        stats={**cover.stats, "pruned_sets": float(len(dropped))},
    )


def redundant_sets(
    instance: SetCoverInstance, selected: Iterable[int]
) -> tuple[int, ...]:
    """Sets of the cover that could be removed while staying a cover.

    Greedy never selects a set with zero uncovered elements, so its covers
    contain no set that was redundant *at selection time* - but a set picked
    early can become redundant later.  Useful for quality diagnostics.
    """
    selected = list(selected)
    redundant: list[int] = []
    for candidate in selected:
        rest = [s for s in selected if s != candidate and s not in redundant]
        if is_cover(instance, rest):
            redundant.append(candidate)
    return tuple(redundant)
