"""Algorithms 2-5: the modified greedy algorithm with a priority queue.

The expensive step of Algorithm 1 is finding the set with minimum effective
weight by rescanning all live sets.  The paper's modification (Section 3)
stores the sets in a priority queue keyed by effective weight, keeps the
violation sets (universe elements) in an array with covered marks, and
links each element to the sets containing it (Algorithm 4).  Selecting the
minimum is then O(log |S|); when the chosen set covers elements, only the
sets *sharing* those elements are touched: their uncovered count drops,
their effective weight is recomputed, and their heap position is restored
(the paper performs up-heap; an increased effective weight actually sifts
*down*, which :class:`~repro.setcover.heap.IndexedHeap` handles either
way).

Running time (Proposition 3.7): O(n² log n) in general, O(n log n) when
the degree of inconsistency - and hence ``|S(t,t′)|`` and element
frequency - is bounded by a constant.

Tie-breaking matches :func:`~repro.setcover.greedy.greedy_cover`
(lexicographic ``(w_ef, set_id)``), so the two algorithms provably return
the same cover; the experiments therefore only compare their running time
(Figure 3), not their approximation quality (Figure 2).
"""

from __future__ import annotations

from repro.obs import traced_solver
from repro.setcover.heap import IndexedHeap
from repro.setcover.instance import SetCoverInstance
from repro.setcover.result import Cover


@traced_solver("modified-greedy")
def modified_greedy_cover(instance: SetCoverInstance) -> Cover:
    """Run the modified greedy algorithm (Algorithm 5) and return the cover."""
    instance.check_coverable()

    element_to_sets = instance.element_to_sets   # Algorithm 4's links
    weights = [s.weight for s in instance.sets]
    uncovered_count = [len(s.elements) for s in instance.sets]
    covered = [False] * instance.n_elements

    # Algorithm 3: priority queue of (t, t', w, S(t,t')) keyed by weight...
    # keyed here directly by *effective* weight, which equals w/|S(t,t')|
    # before anything is covered.
    heap = IndexedHeap()
    for weighted_set in instance.sets:
        if weighted_set.elements:
            effective = weighted_set.weight / len(weighted_set.elements)
            heap.push(weighted_set.set_id, (effective, weighted_set.set_id))

    n_uncovered = instance.n_elements
    selected: list[int] = []
    total_weight = 0.0
    iterations = 0
    heap_updates = 0

    while n_uncovered > 0:
        iterations += 1
        set_id, _key = heap.pop()
        # Stale entries cannot occur: counts are maintained eagerly and
        # exhausted sets are removed, so the minimum is always live.
        selected.append(set_id)
        total_weight += weights[set_id]

        # "Mark in A elements in S(t,t') as covered" and update the weights
        # of the sets sharing those elements.
        touched: set[int] = set()
        for element in instance.sets[set_id].elements:
            if covered[element]:
                continue
            covered[element] = True
            n_uncovered -= 1
            for other_id in element_to_sets[element]:
                if other_id == set_id:
                    continue
                uncovered_count[other_id] -= 1
                touched.add(other_id)

        # "Update P to preserve heap structure".
        for other_id in touched:
            if other_id not in heap:
                continue
            remaining = uncovered_count[other_id]
            if remaining == 0:
                heap.remove(other_id)
            else:
                effective = weights[other_id] / remaining
                heap.update(other_id, (effective, other_id))
                heap_updates += 1

    return Cover(
        selected=tuple(selected),
        weight=total_weight,
        algorithm="modified-greedy",
        iterations=iterations,
        stats={"heap_updates": heap_updates},
    )
