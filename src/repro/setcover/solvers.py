"""Solver registry: look up set-cover algorithms by name.

The repair engine, the benchmarks, and the CLI all select algorithms
through this registry, so the four paper algorithms and the exact solver
share one namespace:

========================  =====================================================
name                      algorithm
========================  =====================================================
``greedy``                Algorithm 1, plain greedy (O(n³) / O(n²) bounded)
``modified-greedy``       Algorithms 2-5, priority queue (O(n²logn)/O(nlogn))
``layer``                 layer algorithm, full subtraction per iteration
``modified-layer``        layer algorithm on the priority-queue structures
``exact``                 branch and bound, small instances only
``exact-decomposed``      exact per connected component, greedy fallback
``lp-rounding``           LP relaxation + frequency rounding (needs scipy)
========================  =====================================================
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.exceptions import SetCoverError
from repro.setcover.decompose import solve_by_components
from repro.setcover.exact import exact_cover
from repro.setcover.greedy import greedy_cover
from repro.setcover.instance import SetCoverInstance
from repro.setcover.layer import layer_cover, modified_layer_cover
from repro.setcover.modified_greedy import modified_greedy_cover
from repro.setcover.result import Cover

Solver = Callable[[SetCoverInstance], Cover]


def exact_decomposed_cover(instance: SetCoverInstance) -> Cover:
    """Exact per connected component, modified greedy on oversized ones.

    Repair instances decompose into many small components (one per group
    of mutually-inconsistent tuples), so this computes truly optimal
    covers on databases far beyond the monolithic exact solver's reach;
    only components above the exact solver's element limit fall back to
    the O(n log n) approximation.
    """
    from repro.setcover.exact import MAX_EXACT_ELEMENTS

    return solve_by_components(
        instance,
        exact_cover,
        max_component_elements=MAX_EXACT_ELEMENTS,
        fallback=modified_greedy_cover,
    )


def _lp_rounding(instance: SetCoverInstance) -> Cover:
    # Imported lazily so the core library stays scipy-free.
    from repro.setcover.lp import lp_rounding_cover

    return lp_rounding_cover(instance)


def greedy_pruned_cover(instance: SetCoverInstance) -> Cover:
    """Greedy followed by redundancy pruning (see ``minimize_cover``)."""
    from repro.setcover.verify import minimize_cover

    return minimize_cover(instance, modified_greedy_cover(instance))


def layer_pruned_cover(instance: SetCoverInstance) -> Cover:
    """Modified layer followed by redundancy pruning.

    Pruning pays off most for the layer algorithm, whose per-layer batch
    commits frequently contain mutually-redundant sets; on the paper's
    workload the pruned layer covers undercut even greedy's.
    """
    from repro.setcover.verify import minimize_cover

    return minimize_cover(instance, modified_layer_cover(instance))


SOLVERS: Mapping[str, Solver] = {
    "greedy": greedy_cover,
    "modified-greedy": modified_greedy_cover,
    "layer": layer_cover,
    "modified-layer": modified_layer_cover,
    "exact": exact_cover,
    "exact-decomposed": exact_decomposed_cover,
    "lp-rounding": _lp_rounding,
    "greedy+prune": greedy_pruned_cover,
    "layer+prune": layer_pruned_cover,
}

#: The paper's recommended default (fastest, same quality as greedy).
DEFAULT_SOLVER = "modified-greedy"


def component_solver(
    name: str | Solver,
) -> tuple[Solver, int | None, Solver | None]:
    """Per-component solving policy for a registry algorithm.

    Returns ``(solver, max_component_elements, fallback)`` as accepted by
    :func:`~repro.setcover.decompose.solve_by_components`.  Most
    algorithms run unchanged on every component; ``exact-decomposed`` is
    itself a decomposition wrapper, so it unwraps to the exact solver with
    its size limit and greedy fallback instead of decomposing twice.
    """
    solver = get_solver(name)
    if solver is exact_decomposed_cover:
        from repro.setcover.exact import MAX_EXACT_ELEMENTS

        return exact_cover, MAX_EXACT_ELEMENTS, modified_greedy_cover
    return solver, None, None


def get_solver(name: str | Solver) -> Solver:
    """Resolve a solver by registry name (or pass a callable through)."""
    if callable(name):
        return name
    try:
        return SOLVERS[name.lower()]
    except KeyError:
        raise SetCoverError(
            f"unknown set-cover algorithm {name!r}; choose from {sorted(SOLVERS)}"
        ) from None
