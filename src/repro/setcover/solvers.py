"""Solver registry: look up set-cover algorithms by name.

The repair engine, the benchmarks, and the CLI all select algorithms
through this registry, so the four paper algorithms and the exact solver
share one namespace:

========================  =====================================================
name                      algorithm
========================  =====================================================
``greedy``                Algorithm 1, plain greedy (O(n³) / O(n²) bounded)
``modified-greedy``       Algorithms 2-5, priority queue (O(n²logn)/O(nlogn))
``layer``                 layer algorithm, full subtraction per iteration
``modified-layer``        layer algorithm on the priority-queue structures
``exact``                 branch and bound, small instances only
``exact-decomposed``      exact per connected component, greedy fallback
``lp-rounding``           LP relaxation + frequency rounding (needs scipy)
========================  =====================================================

Every algorithm additionally exists on two **engines**: the ``object``
engine (the per-``WeightedSet`` reference implementations above) and the
``flat`` engine (:mod:`repro.setcover.flat` - CSR incidence arrays,
bitsets, lazy-decrease queues).  Both return byte-identical covers; the
flat engine is near-linear in total incidence and is what ``auto``
resolves to.  :func:`get_solver` / :func:`component_solver` take the
engine as a keyword (default ``object``, the historical behaviour);
:func:`resolve_solver_engine` validates the config/CLI spelling.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.exceptions import SetCoverError
from repro.setcover.decompose import solve_by_components
from repro.setcover.exact import exact_cover
from repro.setcover.flat import (
    flat_exact_cover,
    flat_greedy_cover,
    flat_layer_cover,
    flat_modified_greedy_cover,
    flat_modified_layer_cover,
)
from repro.setcover.greedy import greedy_cover
from repro.setcover.instance import SetCoverInstance
from repro.setcover.layer import layer_cover, modified_layer_cover
from repro.setcover.modified_greedy import modified_greedy_cover
from repro.setcover.result import Cover

Solver = Callable[[SetCoverInstance], Cover]

#: Valid solver-engine spellings (config ``runtime.solver_engine``,
#: CLI ``--solver-engine``), mirroring the detection-engine switch.
SOLVER_ENGINES = ("auto", "flat", "object")


def resolve_solver_engine(engine: str = "auto") -> str:
    """Validate an engine spelling and resolve ``auto``.

    ``auto`` always resolves to ``flat``: the pure-Python flat baseline
    needs no optional dependency (NumPy merely accelerates the incidence
    build under the ``[kernel]`` extra), and it dominates the object
    engine at every scale.
    """
    if engine not in SOLVER_ENGINES:
        raise SetCoverError(
            f"unknown solver engine {engine!r}; choose from {SOLVER_ENGINES}"
        )
    return "flat" if engine == "auto" else engine


def exact_decomposed_cover(instance: SetCoverInstance) -> Cover:
    """Exact per connected component, modified greedy on oversized ones.

    Repair instances decompose into many small components (one per group
    of mutually-inconsistent tuples), so this computes truly optimal
    covers on databases far beyond the monolithic exact solver's reach;
    only components above the exact solver's element limit fall back to
    the O(n log n) approximation.
    """
    from repro.setcover.exact import MAX_EXACT_ELEMENTS

    return solve_by_components(
        instance,
        exact_cover,
        max_component_elements=MAX_EXACT_ELEMENTS,
        fallback=modified_greedy_cover,
    )


def _lp_rounding(instance: SetCoverInstance) -> Cover:
    # Imported lazily so the core library stays scipy-free.
    from repro.setcover.lp import lp_rounding_cover

    return lp_rounding_cover(instance)


def greedy_pruned_cover(instance: SetCoverInstance) -> Cover:
    """Greedy followed by redundancy pruning (see ``minimize_cover``)."""
    from repro.setcover.verify import minimize_cover

    return minimize_cover(instance, modified_greedy_cover(instance))


def layer_pruned_cover(instance: SetCoverInstance) -> Cover:
    """Modified layer followed by redundancy pruning.

    Pruning pays off most for the layer algorithm, whose per-layer batch
    commits frequently contain mutually-redundant sets; on the paper's
    workload the pruned layer covers undercut even greedy's.
    """
    from repro.setcover.verify import minimize_cover

    return minimize_cover(instance, modified_layer_cover(instance))


def flat_exact_decomposed_cover(instance: SetCoverInstance) -> Cover:
    """``exact-decomposed`` on the flat engine (same policy, flat solvers)."""
    from repro.setcover.exact import MAX_EXACT_ELEMENTS

    return solve_by_components(
        instance,
        flat_exact_cover,
        max_component_elements=MAX_EXACT_ELEMENTS,
        fallback=flat_modified_greedy_cover,
    )


def flat_greedy_pruned_cover(instance: SetCoverInstance) -> Cover:
    """``greedy+prune`` on the flat engine."""
    from repro.setcover.verify import minimize_cover

    return minimize_cover(instance, flat_modified_greedy_cover(instance))


def flat_layer_pruned_cover(instance: SetCoverInstance) -> Cover:
    """``layer+prune`` on the flat engine."""
    from repro.setcover.verify import minimize_cover

    return minimize_cover(instance, flat_modified_layer_cover(instance))


SOLVERS: Mapping[str, Solver] = {
    "greedy": greedy_cover,
    "modified-greedy": modified_greedy_cover,
    "layer": layer_cover,
    "modified-layer": modified_layer_cover,
    "exact": exact_cover,
    "exact-decomposed": exact_decomposed_cover,
    "lp-rounding": _lp_rounding,
    "greedy+prune": greedy_pruned_cover,
    "layer+prune": layer_pruned_cover,
}

#: Flat-engine twins, keyed like :data:`SOLVERS`.  ``lp-rounding`` has no
#: flat implementation (it is scipy-bound, not incidence-bound) and falls
#: back to the object path.
FLAT_SOLVERS: Mapping[str, Solver] = {
    "greedy": flat_greedy_cover,
    "modified-greedy": flat_modified_greedy_cover,
    "layer": flat_layer_cover,
    "modified-layer": flat_modified_layer_cover,
    "exact": flat_exact_cover,
    "exact-decomposed": flat_exact_decomposed_cover,
    "greedy+prune": flat_greedy_pruned_cover,
    "layer+prune": flat_layer_pruned_cover,
}

#: The paper's recommended default (fastest, same quality as greedy).
DEFAULT_SOLVER = "modified-greedy"


def component_solver(
    name: str | Solver,
    engine: str = "object",
) -> tuple[Solver, int | None, Solver | None]:
    """Per-component solving policy for a registry algorithm.

    Returns ``(solver, max_component_elements, fallback)`` as accepted by
    :func:`~repro.setcover.decompose.solve_by_components`.  Most
    algorithms run unchanged on every component; ``exact-decomposed`` is
    itself a decomposition wrapper, so it unwraps to the exact solver with
    its size limit and greedy fallback instead of decomposing twice.
    """
    solver = get_solver(name, engine)
    if solver is exact_decomposed_cover:
        from repro.setcover.exact import MAX_EXACT_ELEMENTS

        return exact_cover, MAX_EXACT_ELEMENTS, modified_greedy_cover
    if solver is flat_exact_decomposed_cover:
        from repro.setcover.exact import MAX_EXACT_ELEMENTS

        return flat_exact_cover, MAX_EXACT_ELEMENTS, flat_modified_greedy_cover
    return solver, None, None


def get_solver(name: str | Solver, engine: str = "object") -> Solver:
    """Resolve a solver by registry name (or pass a callable through).

    ``engine`` selects the implementation family: ``object`` (default,
    the historical per-``WeightedSet`` solvers), ``flat`` (the CSR/bitset
    core), or ``auto`` (currently ``flat``).  Callables pass through
    unchanged regardless of engine; names without a flat twin
    (``lp-rounding``) resolve to the object solver on every engine.
    """
    if callable(name):
        return name
    key = name.lower()
    try:
        solver = SOLVERS[key]
    except KeyError:
        raise SetCoverError(
            f"unknown set-cover algorithm {name!r}; choose from {sorted(SOLVERS)}"
        ) from None
    if resolve_solver_engine(engine) == "flat":
        return FLAT_SOLVERS.get(key, solver)
    return solver
