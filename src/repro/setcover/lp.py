"""LP relaxation of MWSC: lower bounds and frequency rounding.

Two standard tools built on ``scipy.optimize.linprog`` (HiGHS):

* :func:`lp_lower_bound` - the optimum of the fractional relaxation
  ``min w·x  s.t.  Σ_{s∋e} x_s >= 1, 0 <= x <= 1``.  It lower-bounds every
  integral cover, so the benchmark harness can report *certified*
  approximation-ratio upper bounds at sizes where the exact
  branch-and-bound is hopeless (Figure-2 anchoring).
* :func:`lp_rounding_cover` - deterministic frequency rounding: select
  every set with ``x_s >= 1/f`` where ``f`` is the maximum element
  frequency.  Each element has some set at fractional value ``>= 1/f``
  among the <= f sets containing it, so the selection is a cover, and its
  weight is at most ``f`` times the LP optimum (Vazirani, ch. 14) - the
  same factor the layer algorithm guarantees, making it a natural third
  quality comparator for the evaluation.

The LP machinery is optional: everything else in :mod:`repro.setcover`
works without scipy installed.
"""

from __future__ import annotations

from repro.exceptions import SetCoverError, UncoverableError
from repro.setcover.instance import SetCoverInstance
from repro.setcover.result import Cover


def _solve_relaxation(instance: SetCoverInstance):
    try:
        import numpy as np
        from scipy.optimize import linprog
        from scipy.sparse import coo_matrix
    except ImportError as error:  # pragma: no cover - scipy is installed here
        raise SetCoverError(
            "the LP solver requires scipy; install scipy or use another algorithm"
        ) from error

    instance.check_coverable()
    n_sets = len(instance.sets)
    if instance.n_elements == 0:
        return np.zeros(n_sets), 0.0

    rows, cols = [], []
    for weighted_set in instance.sets:
        for element in weighted_set.elements:
            rows.append(element)
            cols.append(weighted_set.set_id)
    # linprog uses A_ub x <= b_ub; coverage Σ x >= 1 becomes -Σ x <= -1.
    coverage = coo_matrix(
        (-np.ones(len(rows)), (rows, cols)),
        shape=(instance.n_elements, n_sets),
    )
    weights = np.array([s.weight for s in instance.sets])
    result = linprog(
        c=weights,
        A_ub=coverage.tocsr(),
        b_ub=-np.ones(instance.n_elements),
        bounds=(0.0, 1.0),
        method="highs",
    )
    if not result.success:
        raise SetCoverError(f"LP relaxation failed: {result.message}")
    return result.x, float(result.fun)


def lp_lower_bound(instance: SetCoverInstance) -> float:
    """Optimum of the fractional relaxation (a lower bound on any cover)."""
    _, objective = _solve_relaxation(instance)
    return objective


def lp_rounding_cover(instance: SetCoverInstance) -> Cover:
    """Deterministic LP frequency rounding (factor ``max_frequency``)."""
    fractional, objective = _solve_relaxation(instance)
    if instance.n_elements == 0:
        return Cover((), 0.0, "lp-rounding", stats={"lp_bound": 0.0})

    frequency = instance.max_frequency
    if frequency == 0:
        raise UncoverableError("instance has elements but no sets")
    threshold = 1.0 / frequency - 1e-9
    selected = [
        weighted_set.set_id
        for weighted_set in instance.sets
        if fractional[weighted_set.set_id] >= threshold
    ]
    weight = sum(instance.sets[i].weight for i in selected)

    # Drop sets made redundant by the rounding (cheap reverse sweep): the
    # factor-f guarantee survives, the practical weight only improves.
    covered_by: dict[int, int] = {}
    for set_id in selected:
        for element in instance.sets[set_id].elements:
            covered_by[element] = covered_by.get(element, 0) + 1
    pruned: list[int] = []
    for set_id in sorted(selected, key=lambda s: -instance.sets[s].weight):
        if all(
            covered_by[element] > 1 for element in instance.sets[set_id].elements
        ):
            for element in instance.sets[set_id].elements:
                covered_by[element] -= 1
            pruned.append(set_id)
    if pruned:
        selected = [s for s in selected if s not in set(pruned)]
        weight = sum(instance.sets[i].weight for i in selected)

    return Cover(
        selected=tuple(selected),
        weight=weight,
        algorithm="lp-rounding",
        iterations=1,
        stats={"lp_bound": objective, "pruned": float(len(pruned))},
    )
