"""An indexed binary min-heap with O(log n) key updates.

This is the priority queue of Algorithms 3 and 5: the modified greedy
algorithm needs *decrease/increase-key* on arbitrary entries when a
selected set covers elements and the effective weights of the sets sharing
those elements change.  ``heapq`` cannot reposition an entry, so we keep an
explicit ``item -> slot`` index and sift entries in both directions.

Keys are compared as plain tuples; callers use ``(effective_weight,
set_id)`` keys to get deterministic tie-breaking.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator

from repro.exceptions import SetCoverError


class IndexedHeap:
    """Binary min-heap over hashable items with updatable keys."""

    def __init__(self) -> None:
        self._keys: list[Any] = []
        self._items: list[Hashable] = []
        self._slots: dict[Hashable, int] = {}

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._slots

    def key_of(self, item: Hashable) -> Any:
        """Current key of ``item``; raises if absent."""
        try:
            return self._keys[self._slots[item]]
        except KeyError:
            raise SetCoverError(f"item {item!r} not in heap") from None

    def push(self, item: Hashable, key: Any) -> None:
        """Insert a new item; raises if it is already present."""
        if item in self._slots:
            raise SetCoverError(f"item {item!r} already in heap")
        slot = len(self._items)
        self._keys.append(key)
        self._items.append(item)
        self._slots[item] = slot
        self._sift_up(slot)

    def peek(self) -> tuple[Hashable, Any]:
        """The (item, key) pair with the minimum key, without removing it."""
        if not self._items:
            raise SetCoverError("peek on empty heap")
        return self._items[0], self._keys[0]

    def pop(self) -> tuple[Hashable, Any]:
        """Remove and return the (item, key) pair with the minimum key."""
        if not self._items:
            raise SetCoverError("pop on empty heap")
        item, key = self._items[0], self._keys[0]
        self._delete_slot(0)
        return item, key

    def update(self, item: Hashable, key: Any) -> None:
        """Change the key of ``item`` (up-heap or down-heap as needed)."""
        slot = self._slots.get(item)
        if slot is None:
            raise SetCoverError(f"item {item!r} not in heap")
        old_key = self._keys[slot]
        self._keys[slot] = key
        if key < old_key:
            self._sift_up(slot)
        elif old_key < key:
            self._sift_down(slot)

    def push_or_update(self, item: Hashable, key: Any) -> None:
        """Insert ``item`` or update its key when already present."""
        if item in self._slots:
            self.update(item, key)
        else:
            self.push(item, key)

    def remove(self, item: Hashable) -> None:
        """Delete ``item`` regardless of its position."""
        slot = self._slots.get(item)
        if slot is None:
            raise SetCoverError(f"item {item!r} not in heap")
        self._delete_slot(slot)

    def items(self) -> Iterator[tuple[Hashable, Any]]:
        """Iterate (item, key) pairs in arbitrary (heap) order."""
        return iter(zip(self._items, self._keys))

    # -- internals ----------------------------------------------------------------

    def _delete_slot(self, slot: int) -> None:
        last = len(self._items) - 1
        item = self._items[slot]
        if slot != last:
            self._move(last, slot)
            self._items.pop()
            self._keys.pop()
            del self._slots[item]
            # The moved entry may need to travel either way.
            self._sift_up(slot)
            self._sift_down(slot)
        else:
            self._items.pop()
            self._keys.pop()
            del self._slots[item]

    def _move(self, source: int, destination: int) -> None:
        self._items[destination] = self._items[source]
        self._keys[destination] = self._keys[source]
        self._slots[self._items[destination]] = destination

    def _swap(self, a: int, b: int) -> None:
        self._items[a], self._items[b] = self._items[b], self._items[a]
        self._keys[a], self._keys[b] = self._keys[b], self._keys[a]
        self._slots[self._items[a]] = a
        self._slots[self._items[b]] = b

    def _sift_up(self, slot: int) -> None:
        while slot > 0:
            parent = (slot - 1) >> 1
            if self._keys[slot] < self._keys[parent]:
                self._swap(slot, parent)
                slot = parent
            else:
                break

    def _sift_down(self, slot: int) -> None:
        size = len(self._items)
        while True:
            left = 2 * slot + 1
            right = left + 1
            smallest = slot
            if left < size and self._keys[left] < self._keys[smallest]:
                smallest = left
            if right < size and self._keys[right] < self._keys[smallest]:
                smallest = right
            if smallest == slot:
                break
            self._swap(slot, smallest)
            slot = smallest

    def check_invariant(self) -> None:
        """Assert the heap property and index consistency (for tests)."""
        for slot in range(1, len(self._items)):
            parent = (slot - 1) >> 1
            if self._keys[slot] < self._keys[parent]:
                raise SetCoverError(
                    f"heap property violated at slot {slot}"
                )
        for item, slot in self._slots.items():
            if self._items[slot] != item:
                raise SetCoverError(f"index inconsistent for item {item!r}")
        if len(self._slots) != len(self._items):
            raise SetCoverError("index size mismatch")
