"""The layer algorithm and its priority-queue ("modified") version.

The layer algorithm (Hochbaum ch. 3 / Vazirani's layering) approximates
MWSC within the maximum element *frequency* - a constant for the repair
reduction, where each violation set has a bounded number of candidate
fixes.  Following the paper's description: in each iteration compute
``c = min { w_i(s) / |s| : s ∈ S_i }`` over the live sets (``|s|`` counts
*uncovered* elements), lower every live set's weight by ``c·|s|``, move the
sets whose residual weight reached zero into the cover, and drop their
elements; repeat until everything is covered.

``modified_layer_cover`` reuses the data structures of the modified greedy
algorithm (the paper: "The new data structure ... can also be used for the
layer approximation algorithm").  The key observation making the heap work:
subtracting ``c·|s|`` from every residual weight lowers every ratio
``w_res(s)/|s|`` by exactly ``c``, so a single global offset ``Φ = Σ c_j``
replaces the per-set subtraction and the heap stores *absolute* ratios
``Φ_at_touch + ratio_at_touch``; a set is re-keyed only when it loses
elements.  Both versions use the same tie-breaking (set id) and return the
same cover.

The experiments (Figures 2 and 3) show the surprise the paper reports:
despite the better worst-case factor, the layer algorithm gives *worse*
covers than greedy in practice, and runs slower.
"""

from __future__ import annotations

from repro.obs import traced_solver
from repro.setcover.heap import IndexedHeap
from repro.setcover.instance import SetCoverInstance
from repro.setcover.result import Cover


def _tolerance(weight: float) -> float:
    """Absolute tolerance for "residual weight reached zero" tests."""
    return 1e-9 * (1.0 + abs(weight))


@traced_solver("layer")
def layer_cover(instance: SetCoverInstance) -> Cover:
    """Run the plain layer algorithm (per-iteration full subtraction)."""
    instance.check_coverable()

    residual = {s.set_id: s.weight for s in instance.sets if s.elements}
    uncovered_of_set: dict[int, set[int]] = {
        s.set_id: set(s.elements) for s in instance.sets if s.elements
    }
    original_weight = [s.weight for s in instance.sets]
    covered = [False] * instance.n_elements
    n_uncovered = instance.n_elements
    selected: list[int] = []
    total_weight = 0.0
    iterations = 0

    while n_uncovered > 0:
        iterations += 1
        # c = min effective residual weight over live sets.
        c = min(
            residual[set_id] / len(uncovered)
            for set_id, uncovered in uncovered_of_set.items()
        )
        c = max(c, 0.0)

        # w_i(s) = w_{i-1}(s) - c * |s|  for every live set.
        zero_sets: list[int] = []
        for set_id, uncovered in uncovered_of_set.items():
            residual[set_id] -= c * len(uncovered)
            if residual[set_id] <= _tolerance(original_weight[set_id]):
                zero_sets.append(set_id)

        # Move zero-residual sets into the cover (set-id order for
        # determinism); a zero set whose elements were all covered by an
        # earlier zero set of the same layer is dropped instead.
        for set_id in sorted(zero_sets):
            uncovered = uncovered_of_set.pop(set_id)
            live_elements = [e for e in uncovered if not covered[e]]
            if not live_elements:
                continue
            selected.append(set_id)
            total_weight += original_weight[set_id]
            for element in live_elements:
                covered[element] = True
                n_uncovered -= 1

        # Shrink the remaining live sets; exhausted ones leave S.
        exhausted = []
        for set_id, uncovered in uncovered_of_set.items():
            uncovered.difference_update(
                [e for e in uncovered if covered[e]]
            )
            if not uncovered:
                exhausted.append(set_id)
        for set_id in exhausted:
            del uncovered_of_set[set_id]

    return Cover(
        selected=tuple(selected),
        weight=total_weight,
        algorithm="layer",
        iterations=iterations,
        stats={"frequency": float(instance.max_frequency)},
    )


@traced_solver("modified-layer")
def modified_layer_cover(instance: SetCoverInstance) -> Cover:
    """Run the layer algorithm on the modified-greedy data structures.

    Heap keys are ``(absolute_ratio, set_id)`` where
    ``absolute_ratio = Φ + w_res(s)/|uncovered(s)|`` and ``Φ`` accumulates
    the subtracted layer constants; popping the minimum yields the next set
    whose residual hits zero.
    """
    instance.check_coverable()

    element_to_sets = instance.element_to_sets
    original_weight = [s.weight for s in instance.sets]
    uncovered_count = [len(s.elements) for s in instance.sets]
    covered = [False] * instance.n_elements

    heap = IndexedHeap()
    # absolute_ratio bookkeeping: residual(s) = (abs_ratio(s) - Φ) * uncov(s)
    for weighted_set in instance.sets:
        if weighted_set.elements:
            ratio = weighted_set.weight / len(weighted_set.elements)
            heap.push(weighted_set.set_id, (ratio, weighted_set.set_id))

    phi = 0.0
    n_uncovered = instance.n_elements
    selected: list[int] = []
    total_weight = 0.0
    iterations = 0

    while n_uncovered > 0:
        iterations += 1
        set_id, (absolute_ratio, _) = heap.pop()
        # Advance the global offset: this set's residual is now zero.
        phi = max(phi, absolute_ratio)

        # Gather the whole zero layer: every set whose residual at Φ is
        # within the same tolerance the plain algorithm applies.  This
        # keeps the two implementations identical at floating-point ties
        # (the plain version processes a layer's zero sets in id order).
        batch = [set_id]
        while heap:
            next_id, (next_ratio, _) = heap.peek()
            remaining = uncovered_count[next_id]
            residual = (next_ratio - phi) * remaining
            if residual <= _tolerance(original_weight[next_id]):
                heap.pop()
                batch.append(next_id)
            else:
                break

        for member in sorted(batch):
            if uncovered_count[member] == 0:
                # all its elements were taken by an earlier zero set of
                # this same layer; it is dropped, not selected.
                continue
            selected.append(member)
            total_weight += original_weight[member]

            lost: dict[int, int] = {}
            for element in instance.sets[member].elements:
                if covered[element]:
                    continue
                covered[element] = True
                n_uncovered -= 1
                for other_id in element_to_sets[element]:
                    if other_id != member:
                        lost[other_id] = lost.get(other_id, 0) + 1

            for other_id, delta in lost.items():
                before = uncovered_count[other_id]
                uncovered_count[other_id] = before - delta
                if other_id not in heap:
                    continue
                remaining = before - delta
                if remaining == 0:
                    heap.remove(other_id)
                    continue
                old_ratio = heap.key_of(other_id)[0]
                # residual_now = (abs_ratio - Φ) * uncovered_before;
                # re-spread it over the remaining uncovered elements.
                residual = max((old_ratio - phi) * before, 0.0)
                new_ratio = phi + residual / remaining
                heap.update(other_id, (new_ratio, other_id))

    return Cover(
        selected=tuple(selected),
        weight=total_weight,
        algorithm="modified-layer",
        iterations=iterations,
        stats={"phi": phi, "frequency": float(instance.max_frequency)},
    )
