"""Minimum-Weight Set Cover: instance model and the paper's four solvers.

The repair problem reduces to MWSCP (Definition 3.1).  This package holds
the generic set-cover machinery: the instance representation, the plain
greedy algorithm (Algorithm 1), the *modified* greedy with an indexed
priority queue (Algorithms 2-5, the paper's contribution), the layer
algorithm and its modified version (Section 3 end), and an exact
branch-and-bound solver used to measure true approximation ratios on small
instances.
"""

from repro.setcover.instance import SetCoverInstance, WeightedSet
from repro.setcover.heap import IndexedHeap
from repro.setcover.greedy import greedy_cover
from repro.setcover.modified_greedy import modified_greedy_cover
from repro.setcover.layer import layer_cover, modified_layer_cover
from repro.setcover.exact import exact_cover
from repro.setcover.flat import (
    ENGINE_STAT_KEYS,
    FlatSetCover,
    flat_exact_cover,
    flat_greedy_cover,
    flat_layer_cover,
    flat_modified_greedy_cover,
    flat_modified_layer_cover,
    strip_engine_stats,
)
from repro.setcover.decompose import (
    Component,
    component_size_histogram,
    decompose,
    solve_by_components,
)
from repro.setcover.verify import is_cover, cover_weight, minimize_cover
from repro.setcover.solvers import (
    FLAT_SOLVERS,
    SOLVER_ENGINES,
    SOLVERS,
    Cover,
    exact_decomposed_cover,
    get_solver,
    resolve_solver_engine,
)

__all__ = [
    "SetCoverInstance",
    "WeightedSet",
    "IndexedHeap",
    "greedy_cover",
    "modified_greedy_cover",
    "layer_cover",
    "modified_layer_cover",
    "exact_cover",
    "exact_decomposed_cover",
    "FlatSetCover",
    "ENGINE_STAT_KEYS",
    "strip_engine_stats",
    "flat_greedy_cover",
    "flat_modified_greedy_cover",
    "flat_layer_cover",
    "flat_modified_layer_cover",
    "flat_exact_cover",
    "FLAT_SOLVERS",
    "SOLVER_ENGINES",
    "resolve_solver_engine",
    "Component",
    "component_size_histogram",
    "decompose",
    "solve_by_components",
    "is_cover",
    "cover_weight",
    "minimize_cover",
    "SOLVERS",
    "Cover",
    "get_solver",
]
