"""Flat-array MWSC core: CSR incidence, bitsets, and lazy-decrease queues.

The object solvers (:mod:`repro.setcover.greedy`, ``modified_greedy``,
``layer``) walk per-set ``dict[int, set[int]]`` structures, which caps
cover computation far below the scale the columnar detection kernels
reach.  This module re-hosts the same five algorithms on flat arrays:

* an **integer-id universe** with both incidence directions stored CSR
  style - ``set_start``/``set_elements`` (set → its element ids) and
  ``element_start``/``element_sets`` (element → ids of sets containing
  it, ascending).  The baseline build is pure Python; when NumPy is
  importable (the optional ``repro[kernel]`` extra) the element → set
  inversion runs as a stable argsort + bincount, producing the exact
  same arrays;
* **bytearray coverage marks** instead of per-set Python sets, with
  per-set *uncovered counters* maintained by walking the element rows of
  a selected set (total work = total incidence, not |S|² rescans);
* a **lazy-decrease priority queue** (``heapq`` with re-push on stale
  pop) for greedy/modified-greedy: effective weights only ever increase,
  so every queue entry is a lower bound and the first up-to-date entry
  popped is the true ``(w_ef, set_id)`` minimum.  Greedy drops from
  O(|S|) per selection to amortized O(log |S|), i.e. near-linear in the
  total incidence;
* **bitset universes** (Python ints) for the exact branch-and-bound.

Every flat solver is **byte-identical** to its object twin: the same
cover (same ``selected`` order, same float ``weight``, same
``iterations``) and the same core ``Cover.stats`` - the funnel the
parity suite enforces.  Flat covers additionally carry the engine
identity keys :data:`ENGINE_STAT_KEYS` (``solver_engine`` and the
``incidence`` size); :func:`strip_engine_stats` projects them away for
cross-engine comparison.  Wall-clock of the incidence build is *not* a
stat (stats must be run-deterministic); it is tagged on the
``setcover:flat-build`` span and exposed as
:attr:`FlatSetCover.build_seconds` for the benchmarks.
"""

from __future__ import annotations

import heapq
import time
from typing import Iterator, Mapping

from repro.exceptions import SetCoverError, UncoverableError
from repro.obs import current_tracer, traced_solver
from repro.setcover.heap import IndexedHeap
from repro.setcover.instance import SetCoverInstance
from repro.setcover.layer import _tolerance
from repro.setcover.result import Cover

#: Engine-identity keys added to flat covers on top of the object stats.
ENGINE_STAT_KEYS = frozenset({"solver_engine", "incidence"})


def strip_engine_stats(stats: Mapping[str, object]) -> dict[str, object]:
    """The cross-engine comparable view of a cover's stats."""
    return {k: v for k, v in stats.items() if k not in ENGINE_STAT_KEYS}


class FlatSetCover:
    """CSR incidence view of a :class:`SetCoverInstance`.

    Immutable after construction and shared by every flat solver run on
    the same instance (:meth:`SetCoverInstance.flat` caches it), so the
    build cost is paid once per instance, not once per solve.
    """

    __slots__ = (
        "n_elements",
        "n_sets",
        "weights",
        "set_start",
        "set_elements",
        "element_start",
        "element_sets",
        "nnz",
        "build_seconds",
        "accelerated",
    )

    def __init__(self, instance: SetCoverInstance) -> None:
        tracer = current_tracer()
        started = time.perf_counter()
        sets = instance.sets
        self.n_elements = instance.n_elements
        self.n_sets = len(sets)
        self.weights = [s.weight for s in sets]

        # set -> elements (CSR): a straight flatten of the tuples.
        set_start = [0] * (self.n_sets + 1)
        set_elements: list[int] = []
        for index, weighted_set in enumerate(sets):
            set_elements.extend(weighted_set.elements)
            set_start[index + 1] = len(set_elements)
        self.set_start = set_start
        self.set_elements = set_elements
        self.nnz = len(set_elements)

        self.accelerated = False
        built = self._invert_numpy()
        if built is None:
            built = self._invert_pure()
        self.element_start, self.element_sets = built
        self.build_seconds = time.perf_counter() - started

        if tracer.enabled:
            with tracer.span(
                "setcover:flat-build",
                category="solver",
                sets=self.n_sets,
                elements=self.n_elements,
            ) as span:
                span.tag(
                    nnz=self.nnz,
                    seconds=self.build_seconds,
                    accelerated=self.accelerated,
                )
            tracer.metrics.counter("flat_builds").inc()
            tracer.metrics.gauge("flat_incidence").set_max(self.nnz)

    # -- element -> sets inversion -----------------------------------------

    def _invert_pure(self) -> tuple[list[int], list[int]]:
        """Counting-sort inversion; rows come out ascending by set id."""
        n = self.n_elements
        counts = [0] * n
        for element in self.set_elements:
            counts[element] += 1
        element_start = [0] * (n + 1)
        for element in range(n):
            element_start[element + 1] = element_start[element] + counts[element]
        element_sets = [0] * self.nnz
        cursor = element_start[:n]
        set_start = self.set_start
        set_elements = self.set_elements
        for set_id in range(self.n_sets):
            for index in range(set_start[set_id], set_start[set_id + 1]):
                element = set_elements[index]
                element_sets[cursor[element]] = set_id
                cursor[element] += 1
        return element_start, element_sets

    def _invert_numpy(self) -> tuple[list[int], list[int]] | None:
        """NumPy inversion (stable argsort); identical arrays, faster.

        Returns ``None`` when NumPy is not importable - the pure-Python
        counting sort is the baseline, NumPy only accelerates it.
        """
        try:
            import numpy as np
        except ImportError:
            return None
        if self.nnz == 0:
            return [0] * (self.n_elements + 1), []
        elements = np.asarray(self.set_elements, dtype=np.int64)
        lengths = np.diff(np.asarray(self.set_start, dtype=np.int64))
        owners = np.repeat(np.arange(self.n_sets, dtype=np.int64), lengths)
        # Stable sort keeps equal elements in set-id order, matching the
        # append order of the object adjacency (and the pure inversion).
        order = np.argsort(elements, kind="stable")
        element_sets = owners[order].tolist()
        counts = np.bincount(elements, minlength=self.n_elements)
        element_start = np.concatenate(
            ([0], np.cumsum(counts))
        ).tolist()
        self.accelerated = True
        return element_start, element_sets

    # -- derived ------------------------------------------------------------

    def set_sizes(self) -> list[int]:
        start = self.set_start
        return [start[i + 1] - start[i] for i in range(self.n_sets)]

    def max_frequency(self) -> int:
        start = self.element_start
        return max(
            (start[e + 1] - start[e] for e in range(self.n_elements)),
            default=0,
        )

    def check_coverable(self) -> None:
        """Raise :class:`UncoverableError` exactly as the object instance."""
        start = self.element_start
        for element in range(self.n_elements):
            if start[element] == start[element + 1]:
                raise UncoverableError(
                    f"element {element} belongs to no set; no cover exists"
                )

    def __repr__(self) -> str:
        return (
            f"FlatSetCover(|U|={self.n_elements}, |S|={self.n_sets}, "
            f"nnz={self.nnz})"
        )


def flat_view(instance: SetCoverInstance) -> FlatSetCover:
    """The (cached) flat incidence view of an instance."""
    return instance.flat()


def _engine_stats(view: FlatSetCover) -> dict[str, object]:
    return {"solver_engine": "flat", "incidence": view.nnz}


# ---------------------------------------------------------------------------
# greedy / modified greedy


def _greedy_core(view: FlatSetCover) -> tuple[list[int], float, int, int, int]:
    """One selection loop serving both greedy flavours.

    Greedy and modified greedy provably select the same sequence (both
    take the ``(w_ef, set_id)`` minimum each round); they differ only in
    the bookkeeping they report.  This core runs the selection on the
    lazy-decrease queue and maintains *both* counters - the live-set
    count the plain greedy would have scanned and the heap updates the
    modified greedy would have performed - each in O(1)/O(row) extra.

    Returns ``(selected, weight, iterations, scanned_sets, heap_updates)``.
    """
    n = view.n_elements
    weights = view.weights
    set_start, set_elements = view.set_start, view.set_elements
    element_start, element_sets = view.element_start, view.element_sets

    count = view.set_sizes()
    covered = bytearray(n)
    queue: list[tuple[float, int]] = []
    live = 0
    for set_id in range(view.n_sets):
        size = count[set_id]
        if size:
            live += 1
            queue.append((weights[set_id] / size, set_id))
    heapq.heapify(queue)
    push, pop = heapq.heappush, heapq.heappop

    stamp = [0] * view.n_sets
    touched: list[int] = []
    n_uncovered = n
    selected: list[int] = []
    total_weight = 0.0
    iterations = 0
    scanned_sets = 0
    heap_updates = 0

    while n_uncovered > 0:
        iterations += 1
        scanned_sets += live
        # Lazy-decrease pop: every entry is a lower bound (effective
        # weights only grow), so the first entry whose key matches its
        # current effective weight is the true (w_ef, set_id) minimum.
        while True:
            effective, set_id = pop(queue)
            remaining = count[set_id]
            if remaining == 0:
                continue  # selected or exhausted since pushed
            current = weights[set_id] / remaining
            if current > effective:
                push(queue, (current, set_id))
                continue
            break

        count[set_id] = 0
        live -= 1
        selected.append(set_id)
        total_weight += weights[set_id]

        del touched[:]
        for index in range(set_start[set_id], set_start[set_id + 1]):
            element = set_elements[index]
            if covered[element]:
                continue
            covered[element] = 1
            n_uncovered -= 1
            for cursor in range(element_start[element], element_start[element + 1]):
                other = element_sets[cursor]
                remaining = count[other]
                if remaining == 0:
                    continue  # the selected set itself
                remaining -= 1
                count[other] = remaining
                if remaining == 0:
                    live -= 1
                if stamp[other] != iterations:
                    stamp[other] = iterations
                    touched.append(other)
        # The modified greedy re-keys each still-live touched set once
        # per round (exhausted ones are removed instead).
        for other in touched:
            if count[other]:
                heap_updates += 1

    return selected, total_weight, iterations, scanned_sets, heap_updates


@traced_solver("greedy")
def flat_greedy_cover(instance: SetCoverInstance) -> Cover:
    """Algorithm 1 on the flat core; byte-identical to ``greedy_cover``."""
    view = flat_view(instance)
    view.check_coverable()
    selected, weight, iterations, scanned_sets, _ = _greedy_core(view)
    return Cover(
        selected=tuple(selected),
        weight=weight,
        algorithm="greedy",
        iterations=iterations,
        stats={"scanned_sets": scanned_sets, **_engine_stats(view)},
    )


@traced_solver("modified-greedy")
def flat_modified_greedy_cover(instance: SetCoverInstance) -> Cover:
    """Algorithm 5 on the flat core; byte-identical to the object twin."""
    view = flat_view(instance)
    view.check_coverable()
    selected, weight, iterations, _, heap_updates = _greedy_core(view)
    return Cover(
        selected=tuple(selected),
        weight=weight,
        algorithm="modified-greedy",
        iterations=iterations,
        stats={"heap_updates": heap_updates, **_engine_stats(view)},
    )


# ---------------------------------------------------------------------------
# layer / modified layer


@traced_solver("layer")
def flat_layer_cover(instance: SetCoverInstance) -> Cover:
    """The plain layer algorithm on flat arrays.

    Same per-layer arithmetic as the object version, in the same order
    (live sets ascending by id, zero sets committed in sorted id order),
    so the float residuals - and therefore the cover - are identical;
    the per-set Python-set shrinking is replaced by uncovered counters
    maintained through the element rows.
    """
    view = flat_view(instance)
    view.check_coverable()

    weights = view.weights
    set_start, set_elements = view.set_start, view.set_elements
    element_start, element_sets = view.element_start, view.element_sets
    count = view.set_sizes()
    residual = list(weights)
    covered = bytearray(view.n_elements)
    live = [s for s in range(view.n_sets) if count[s]]

    n_uncovered = view.n_elements
    selected: list[int] = []
    total_weight = 0.0
    iterations = 0

    while n_uncovered > 0:
        iterations += 1
        c = min(residual[s] / count[s] for s in live)
        c = max(c, 0.0)

        zero_sets: list[int] = []
        for s in live:
            residual[s] -= c * count[s]
            if residual[s] <= _tolerance(weights[s]):
                zero_sets.append(s)

        dead = set(zero_sets)
        for s in sorted(zero_sets):
            taken = False
            for index in range(set_start[s], set_start[s + 1]):
                element = set_elements[index]
                if covered[element]:
                    continue
                if not taken:
                    taken = True
                    selected.append(s)
                    total_weight += weights[s]
                covered[element] = 1
                n_uncovered -= 1
                for cursor in range(
                    element_start[element], element_start[element + 1]
                ):
                    count[element_sets[cursor]] -= 1

        live = [s for s in live if s not in dead and count[s] > 0]

    return Cover(
        selected=tuple(selected),
        weight=total_weight,
        algorithm="layer",
        iterations=iterations,
        stats={"frequency": float(view.max_frequency()), **_engine_stats(view)},
    )


@traced_solver("modified-layer")
def flat_modified_layer_cover(instance: SetCoverInstance) -> Cover:
    """The layer algorithm on the indexed heap, over flat incidence.

    The absolute-ratio/global-offset bookkeeping is copied verbatim from
    the object version (same :class:`IndexedHeap` op sequence, same float
    expressions), with the tuple-of-tuples adjacency and per-object set
    structures replaced by the CSR rows.
    """
    view = flat_view(instance)
    view.check_coverable()

    weights = view.weights
    set_start, set_elements = view.set_start, view.set_elements
    element_start, element_sets = view.element_start, view.element_sets
    count = view.set_sizes()
    covered = bytearray(view.n_elements)

    heap = IndexedHeap()
    for set_id in range(view.n_sets):
        size = count[set_id]
        if size:
            heap.push(set_id, (weights[set_id] / size, set_id))

    phi = 0.0
    n_uncovered = view.n_elements
    selected: list[int] = []
    total_weight = 0.0
    iterations = 0

    while n_uncovered > 0:
        iterations += 1
        set_id, (absolute_ratio, _) = heap.pop()
        phi = max(phi, absolute_ratio)

        batch = [set_id]
        while heap:
            next_id, (next_ratio, _) = heap.peek()
            remaining = count[next_id]
            residual = (next_ratio - phi) * remaining
            if residual <= _tolerance(weights[next_id]):
                heap.pop()
                batch.append(next_id)
            else:
                break

        for member in sorted(batch):
            if count[member] == 0:
                continue
            selected.append(member)
            total_weight += weights[member]

            lost: dict[int, int] = {}
            for index in range(set_start[member], set_start[member + 1]):
                element = set_elements[index]
                if covered[element]:
                    continue
                covered[element] = 1
                n_uncovered -= 1
                for cursor in range(
                    element_start[element], element_start[element + 1]
                ):
                    other = element_sets[cursor]
                    if other != member:
                        lost[other] = lost.get(other, 0) + 1

            for other, delta in lost.items():
                before = count[other]
                count[other] = before - delta
                if other not in heap:
                    continue
                remaining = before - delta
                if remaining == 0:
                    heap.remove(other)
                    continue
                old_ratio = heap.key_of(other)[0]
                residual = max((old_ratio - phi) * before, 0.0)
                heap.update(other, (phi + residual / remaining, other))

    return Cover(
        selected=tuple(selected),
        weight=total_weight,
        algorithm="modified-layer",
        iterations=iterations,
        stats={
            "phi": phi,
            "frequency": float(view.max_frequency()),
            **_engine_stats(view),
        },
    )


# ---------------------------------------------------------------------------
# exact (bitset branch and bound)


def _iter_bits(mask: int) -> Iterator[int]:
    """Set bit positions of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


@traced_solver("exact")
def flat_exact_cover(instance: SetCoverInstance, max_elements: int | None = None) -> Cover:
    """Bitset branch-and-bound; byte-identical to ``exact_cover``.

    The universe fits a machine-word-scale Python int (the exact solver
    is capped at :data:`~repro.setcover.exact.MAX_EXACT_ELEMENTS`
    elements), so uncovered tracking, set intersection and the
    ascending-id iteration the object solver's deterministic tie-breaks
    prescribe all become integer bit operations.
    """
    from repro.setcover.exact import MAX_EXACT_ELEMENTS

    if max_elements is None:
        max_elements = MAX_EXACT_ELEMENTS
    if instance.n_elements > max_elements:
        raise SetCoverError(
            f"exact solver limited to {max_elements} elements "
            f"(instance has {instance.n_elements}); use an approximation"
        )
    view = flat_view(instance)
    view.check_coverable()

    weights = view.weights
    set_start, set_elements = view.set_start, view.set_elements
    element_start, element_sets = view.element_start, view.element_sets
    sizes = view.set_sizes()

    # Greedy incumbent: the flat core returns the object greedy's exact
    # cover and float weight, so the pruning threshold matches.
    seed_selected, seed_weight, _, _, _ = _greedy_core(view)
    best_weight = seed_weight
    best_selection = tuple(sorted(seed_selected))

    min_rate = [
        min(
            weights[element_sets[cursor]] / sizes[element_sets[cursor]]
            for cursor in range(element_start[element], element_start[element + 1])
        )
        for element in range(view.n_elements)
    ]
    degree = [
        element_start[element + 1] - element_start[element]
        for element in range(view.n_elements)
    ]
    set_mask = [0] * view.n_sets
    for set_id in range(view.n_sets):
        mask = 0
        for index in range(set_start[set_id], set_start[set_id + 1]):
            mask |= 1 << set_elements[index]
        set_mask[set_id] = mask

    uncovered = (1 << view.n_elements) - 1
    chosen: list[int] = []
    nodes = 0

    def lower_bound() -> float:
        return sum(min_rate[element] for element in _iter_bits(uncovered))

    def branch(current_weight: float) -> None:
        nonlocal best_weight, best_selection, nodes, uncovered
        nodes += 1
        if not uncovered:
            if current_weight < best_weight - 1e-12:
                best_weight = current_weight
                best_selection = tuple(sorted(chosen))
            return
        if current_weight + lower_bound() >= best_weight - 1e-12:
            return
        # Fail-first with the object solver's (degree, id) tie-break.
        element = min(_iter_bits(uncovered), key=lambda e: (degree[e], e))
        candidates = sorted(
            element_sets[element_start[element] : element_start[element + 1]],
            key=lambda s: (weights[s], s),
        )
        for set_id in candidates:
            newly = set_mask[set_id] & uncovered
            uncovered &= ~newly
            chosen.append(set_id)
            branch(current_weight + weights[set_id])
            chosen.pop()
            uncovered |= newly

    branch(0.0)

    return Cover(
        selected=best_selection,
        weight=best_weight,
        algorithm="exact",
        iterations=nodes,
        stats={"nodes": float(nodes), **_engine_stats(view)},
    )
