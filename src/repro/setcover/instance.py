"""Set-cover instance representation ``(U, S, w)``.

Elements of the universe ``U`` are integers ``0 .. n_elements-1``; each
:class:`WeightedSet` lists the element ids it contains, carries a positive
weight, and an opaque ``payload`` (the repair layer stores the
:class:`~repro.fixes.mlf.FixCandidate` there).  The representation is
deliberately array-based: both the plain and the modified algorithms index
sets by id, and the modified algorithms additionally build the
element -> sets adjacency once (Algorithm 4's links).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.exceptions import SetCoverError, UncoverableError


@dataclass(frozen=True)
class WeightedSet:
    """One candidate set ``S_i ∈ S`` with weight ``w(S_i)``."""

    set_id: int
    weight: float
    elements: tuple[int, ...]
    payload: Any = None

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise SetCoverError(
                f"set {self.set_id}: weight must be non-negative, got {self.weight}"
            )
        if len(set(self.elements)) != len(self.elements):
            raise SetCoverError(
                f"set {self.set_id}: duplicate element ids {self.elements}"
            )

    def __len__(self) -> int:
        return len(self.elements)


class SetCoverInstance:
    """An MWSCP instance ``(U, S, w)``.

    Parameters
    ----------
    n_elements:
        Size of the universe ``U`` (element ids are ``0..n_elements-1``).
    sets:
        The weighted sets.  Empty sets are allowed but never useful; sets
        referencing out-of-range elements are rejected.
    """

    def __init__(
        self,
        n_elements: int,
        sets: Iterable[WeightedSet],
    ) -> None:
        if n_elements < 0:
            raise SetCoverError(f"n_elements must be >= 0, got {n_elements}")
        self.n_elements = n_elements
        self.sets: tuple[WeightedSet, ...] = tuple(sets)
        seen_ids: set[int] = set()
        for index, weighted_set in enumerate(self.sets):
            if weighted_set.set_id in seen_ids:
                raise SetCoverError(
                    f"duplicate set id {weighted_set.set_id}: set ids must "
                    "be unique (duplicate *contents* under distinct ids are "
                    "fine)"
                )
            seen_ids.add(weighted_set.set_id)
            if weighted_set.set_id != index:
                raise SetCoverError(
                    f"set ids must be consecutive: expected {index}, "
                    f"got {weighted_set.set_id}"
                )
            for element in weighted_set.elements:
                if not 0 <= element < n_elements:
                    raise SetCoverError(
                        f"set {index} references element {element} outside "
                        f"universe of size {n_elements}"
                    )
        self._element_to_sets: tuple[tuple[int, ...], ...] | None = None
        self._flat: Any = None

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_collections(
        cls,
        n_elements: int,
        collections: Sequence[tuple[float, Iterable[int]]],
        payloads: Sequence[Any] | None = None,
    ) -> "SetCoverInstance":
        """Build from ``[(weight, elements), ...]`` pairs."""
        sets = []
        for index, (weight, elements) in enumerate(collections):
            payload = payloads[index] if payloads is not None else None
            sets.append(
                WeightedSet(index, weight, tuple(elements), payload)
            )
        return cls(n_elements, sets)

    # -- derived structure ------------------------------------------------------

    @property
    def element_to_sets(self) -> tuple[tuple[int, ...], ...]:
        """Adjacency ``element id -> ids of sets containing it`` (cached).

        This is the link structure of Algorithm 4, shared by the modified
        greedy and modified layer algorithms.
        """
        if self._element_to_sets is None:
            adjacency: list[list[int]] = [[] for _ in range(self.n_elements)]
            for weighted_set in self.sets:
                for element in weighted_set.elements:
                    adjacency[element].append(weighted_set.set_id)
            self._element_to_sets = tuple(tuple(a) for a in adjacency)
        return self._element_to_sets

    @property
    def max_frequency(self) -> int:
        """Largest number of sets any element belongs to.

        The layer algorithm approximates within this factor (bounded for
        the repair reduction: a violation set has a bounded number of
        candidate fixes).
        """
        return max((len(a) for a in self.element_to_sets), default=0)

    def flat(self) -> Any:
        """The cached :class:`~repro.setcover.flat.FlatSetCover` view.

        Built on first use and shared by every flat-engine solver run on
        this instance, so the CSR incidence construction is paid once.
        """
        if self._flat is None:
            from repro.setcover.flat import FlatSetCover

            self._flat = FlatSetCover(self)
        return self._flat

    def check_coverable(self) -> None:
        """Raise :class:`UncoverableError` when some element is in no set."""
        for element, adjacent in enumerate(self.element_to_sets):
            if not adjacent:
                raise UncoverableError(
                    f"element {element} belongs to no set; no cover exists"
                )

    def __repr__(self) -> str:
        return (
            f"SetCoverInstance(|U|={self.n_elements}, |S|={len(self.sets)})"
        )
