"""Enumerate *all* minimum-weight covers of a small MWSC instance.

The paper's examples reason about the full repair set ("the two repairs of
the database", Example 2.3; "the following are the attribute-update
repairs", Example 5.4).  Enumerating every optimal cover makes those
statements testable and powers the consistent-query-answering layer
(:mod:`repro.cqa`), which needs *all* repairs to decide certainty.

The search reuses the branch-and-bound of :mod:`repro.setcover.exact` with
the pruning relaxed to "<= incumbent + ε" so ties survive, and returns the
distinct optimal covers as frozensets of set ids.  Exponential, small
instances only - exactly like the exact solver.
"""

from __future__ import annotations

from repro.exceptions import SetCoverError
from repro.setcover.exact import MAX_EXACT_ELEMENTS, exact_cover
from repro.setcover.instance import SetCoverInstance

#: Safety valve: stop after this many optimal covers.
MAX_ENUMERATED = 10_000


def enumerate_optimal_covers(
    instance: SetCoverInstance,
    max_elements: int = MAX_EXACT_ELEMENTS,
    max_covers: int = MAX_ENUMERATED,
) -> tuple[frozenset[int], ...]:
    """All minimum-weight covers, as frozensets of set ids.

    Only *irredundant* covers are produced (no cover contains a set whose
    elements are all covered by the others) - redundant optimal covers
    exist only with zero-weight sets and would be infinite families
    otherwise.
    """
    if instance.n_elements == 0:
        return (frozenset(),)
    if instance.n_elements > max_elements:
        raise SetCoverError(
            f"cover enumeration limited to {max_elements} elements "
            f"(instance has {instance.n_elements})"
        )
    instance.check_coverable()

    best_weight = exact_cover(instance, max_elements=max_elements).weight
    epsilon = 1e-9 * (1.0 + abs(best_weight))

    element_to_sets = instance.element_to_sets
    sets = instance.sets
    min_rate = [
        min(sets[s].weight / len(sets[s].elements) for s in adjacent)
        for adjacent in element_to_sets
    ]

    found: set[frozenset[int]] = set()
    uncovered = set(range(instance.n_elements))
    chosen: list[int] = []

    def lower_bound() -> float:
        return sum(min_rate[e] for e in uncovered)

    def branch(current_weight: float) -> None:
        if len(found) >= max_covers:
            return
        if not uncovered:
            if current_weight <= best_weight + epsilon:
                cover = frozenset(chosen)
                if _is_irredundant(instance, cover):
                    found.add(cover)
            return
        if current_weight + lower_bound() > best_weight + epsilon:
            return
        element = min(uncovered, key=lambda e: len(element_to_sets[e]))
        for set_id in sorted(
            element_to_sets[element], key=lambda s: (sets[s].weight, s)
        ):
            if set_id in chosen:
                continue
            weighted_set = sets[set_id]
            newly = [e for e in weighted_set.elements if e in uncovered]
            uncovered.difference_update(newly)
            chosen.append(set_id)
            branch(current_weight + weighted_set.weight)
            chosen.pop()
            uncovered.update(newly)

    branch(0.0)
    return tuple(sorted(found, key=sorted))


def _is_irredundant(instance: SetCoverInstance, cover: frozenset[int]) -> bool:
    for candidate in cover:
        others: set[int] = set()
        for set_id in cover:
            if set_id != candidate:
                others.update(instance.sets[set_id].elements)
        if set(instance.sets[candidate].elements) <= others:
            return False
    return True
