"""Common result type returned by every set-cover solver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping


@dataclass(frozen=True)
class Cover:
    """A set cover ``C`` plus solver bookkeeping.

    Attributes
    ----------
    selected:
        Ids of the chosen sets, in selection order.
    weight:
        Total weight ``Σ_{s ∈ C} w(s)``.
    algorithm:
        Name of the solver that produced the cover.
    iterations:
        Number of main-loop iterations the solver performed.
    stats:
        Solver-specific extras (e.g. heap operations, layers, B&B nodes).
    """

    selected: tuple[int, ...]
    weight: float
    algorithm: str
    iterations: int = 0
    stats: Mapping[str, float] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.selected)

    def __contains__(self, set_id: int) -> bool:
        return set_id in self.selected

    def __repr__(self) -> str:
        return (
            f"Cover(algorithm={self.algorithm!r}, |C|={len(self.selected)}, "
            f"weight={self.weight:g})"
        )
