"""Exact branch-and-bound MWSC solver for small instances.

MWSC is NP-hard, so this solver is *not* part of the repair pipeline for
real databases; it exists to measure true approximation ratios in tests
and in the Figure-2 harness on small instances, where "small" means a few
dozen universe elements.

Search strategy: branch on the uncovered element contained in the fewest
candidate sets (fail-first), trying the candidate sets in increasing weight
order.  Pruning uses the admissible lower bound
``Σ_{e uncovered} min_{s ∋ e} w(s)/|s|`` - every cover pays at least that,
because a chosen set ``s`` distributes ``w(s)`` over at most ``|s|``
elements.
"""

from __future__ import annotations

from repro.exceptions import SetCoverError
from repro.obs import traced_solver
from repro.setcover.greedy import greedy_cover
from repro.setcover.instance import SetCoverInstance
from repro.setcover.result import Cover

#: Refuse instances larger than this; branch-and-bound is exponential.
MAX_EXACT_ELEMENTS = 64


@traced_solver("exact")
def exact_cover(
    instance: SetCoverInstance, max_elements: int = MAX_EXACT_ELEMENTS
) -> Cover:
    """Compute a minimum-weight cover exactly.

    Raises :class:`SetCoverError` for instances with more than
    ``max_elements`` universe elements.
    """
    if instance.n_elements > max_elements:
        raise SetCoverError(
            f"exact solver limited to {max_elements} elements "
            f"(instance has {instance.n_elements}); use an approximation"
        )
    instance.check_coverable()

    element_to_sets = instance.element_to_sets
    sets = instance.sets

    # Seed the incumbent with the greedy solution - a strong initial upper
    # bound that lets the bound prune early.
    incumbent = greedy_cover(instance)
    best_weight = incumbent.weight
    best_selection: tuple[int, ...] = tuple(sorted(incumbent.selected))

    # Cheapest per-element rate of any set containing each element, for the
    # admissible lower bound.
    min_rate = [
        min(sets[s].weight / len(sets[s].elements) for s in adjacent)
        for adjacent in element_to_sets
    ]

    uncovered = set(range(instance.n_elements))
    chosen: list[int] = []
    nodes = 0

    def lower_bound() -> float:
        # Summed in ascending element order: float addition is not
        # associative, and the flat (bitset) exact solver must reproduce
        # the same bound - and hence the same pruning decisions - bit
        # for bit.
        return sum(min_rate[e] for e in sorted(uncovered))

    def branch(current_weight: float) -> None:
        nonlocal best_weight, best_selection, nodes
        nodes += 1
        if not uncovered:
            if current_weight < best_weight - 1e-12:
                best_weight = current_weight
                best_selection = tuple(sorted(chosen))
            return
        if current_weight + lower_bound() >= best_weight - 1e-12:
            return
        # Fail-first: element with fewest candidate sets (id tie-break,
        # so the branching order does not depend on set iteration order).
        element = min(uncovered, key=lambda e: (len(element_to_sets[e]), e))
        candidates = sorted(
            element_to_sets[element], key=lambda s: (sets[s].weight, s)
        )
        for set_id in candidates:
            weighted_set = sets[set_id]
            newly = [e for e in weighted_set.elements if e in uncovered]
            uncovered.difference_update(newly)
            chosen.append(set_id)
            branch(current_weight + weighted_set.weight)
            chosen.pop()
            uncovered.update(newly)

    branch(0.0)

    return Cover(
        selected=best_selection,
        weight=best_weight,
        algorithm="exact",
        iterations=nodes,
        stats={"nodes": float(nodes)},
    )
