"""Consistent query answering over the repair set (the paper's context).

The introduction positions repairs inside CQA [1, 3]: instead of fixing
the database, answer queries with the tuples that are true in *every*
repair ("consistent answers").  With the repair-enumeration machinery
(Definition 2.2's ``Rep^At`` via :mod:`repro.repair.enumerate`, Section 5's
``Rep#`` via :mod:`repro.cardinality`) this package evaluates conjunctive
queries under both semantics on small databases:

* **certain answers** - rows returned by the query in every optimal repair;
* **possible answers** - rows returned in at least one optimal repair.
"""

from repro.cqa.query import ConjunctiveQuery, parse_query
from repro.cqa.answers import QueryAnswers, consistent_answers
from repro.cqa.aggregates import AggregateRange, aggregate_range

__all__ = [
    "ConjunctiveQuery",
    "parse_query",
    "QueryAnswers",
    "consistent_answers",
    "AggregateRange",
    "aggregate_range",
]
