"""Certain and possible answers over the optimal repair set.

``consistent_answers`` enumerates every optimal repair under the chosen
semantics and intersects/unions the query results:

* ``semantics="update"`` - attribute-update repairs (``Rep^At``,
  Definition 2.2), enumerated through the MWSCP reduction;
* ``semantics="delete"`` - minimum-cardinality deletion repairs
  (``Rep#``, Section 5), via the δ transformation.

Repair enumeration is exponential; like the exact solver this is meant
for small databases (tests, examples, ground-truthing the approximation
engine) - the practical cleaning path remains ``repair_database``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Literal, Mapping

from repro.cardinality.engine import all_optimal_deletion_repairs
from repro.constraints.denial import DenialConstraint
from repro.cqa.query import ConjunctiveQuery
from repro.exceptions import ReproError
from repro.fixes.distance import CITY_DISTANCE, DistanceMetric
from repro.model.instance import DatabaseInstance
from repro.repair.enumerate import all_optimal_repairs

Semantics = Literal["update", "delete"]


@dataclass(frozen=True)
class QueryAnswers:
    """Answers of one query over the repair set."""

    query: ConjunctiveQuery
    semantics: str
    n_repairs: int
    certain: tuple[tuple[Any, ...], ...]
    possible: tuple[tuple[Any, ...], ...]

    @property
    def disputed(self) -> tuple[tuple[Any, ...], ...]:
        """Rows true in some but not all repairs."""
        certain = set(self.certain)
        return tuple(row for row in self.possible if row not in certain)

    def summary(self) -> str:
        """Human-readable report."""
        lines = [
            f"query    : {self.query}",
            f"semantics: {self.semantics} ({self.n_repairs} optimal repairs)",
            f"certain  : {sorted(map(str, self.certain))}",
        ]
        if self.disputed:
            lines.append(f"disputed : {sorted(map(str, self.disputed))}")
        return "\n".join(lines)


def consistent_answers(
    instance: DatabaseInstance,
    constraints: Iterable[DenialConstraint],
    query: ConjunctiveQuery,
    semantics: Semantics = "update",
    metric: str | DistanceMetric = CITY_DISTANCE,
    table_weights: Mapping[str, float] | None = None,
    max_elements: int = 64,
) -> QueryAnswers:
    """Evaluate a query under consistent-query-answering semantics.

    Returns the certain answers (rows in *every* optimal repair) and the
    possible answers (rows in *some* optimal repair).  On a consistent
    database both coincide with the ordinary query result.
    """
    constraints = tuple(constraints)
    if semantics == "update":
        repairs = all_optimal_repairs(
            instance, constraints, metric=metric, max_elements=max_elements
        )
    elif semantics == "delete":
        repairs = all_optimal_deletion_repairs(
            instance,
            constraints,
            table_weights=table_weights,
            max_elements=max_elements,
        )
    else:
        raise ReproError(
            f"unknown CQA semantics {semantics!r}; use 'update' or 'delete'"
        )

    results = [query.evaluate(repair) for repair in repairs]
    certain = frozenset.intersection(*results) if results else frozenset()
    possible = frozenset.union(*results) if results else frozenset()
    return QueryAnswers(
        query=query,
        semantics=semantics,
        n_repairs=len(repairs),
        certain=tuple(sorted(certain, key=str)),
        possible=tuple(sorted(possible, key=str)),
    )
