"""Conjunctive queries: model, parser, and evaluation.

A conjunctive query has the Datalog-style form::

    q(x, p) :- Buy(id, i, p), Client(id, a, c), a < 18, p > 25

The body is syntactically a denial body (database atoms + built-ins), so
parsing and evaluation reuse the constraint machinery: the body is wrapped
in a :class:`DenialConstraint` and the join enumerator produces the
satisfying assignments, from which head rows are projected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.constraints.denial import DenialConstraint
from repro.constraints.parser import parse_denial
from repro.exceptions import ConstraintParseError
from repro.model.instance import DatabaseInstance
from repro.violations.detector import _satisfying_assignments


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query ``head :- body``.

    ``head`` lists the projected variables; ``body`` is the conjunction,
    stored as a :class:`DenialConstraint` (only its body is meaningful).
    """

    head: tuple[str, ...]
    body: DenialConstraint
    name: str = "q"

    def __post_init__(self) -> None:
        bound = set(self.body.variables)
        for variable in self.head:
            if variable not in bound:
                raise ConstraintParseError(
                    f"head variable {variable!r} does not occur in the body"
                )

    def evaluate(self, instance: DatabaseInstance) -> frozenset[tuple[Any, ...]]:
        """Set semantics: the distinct head rows over all body matches."""
        rows: set[tuple[Any, ...]] = set()
        for bindings in self.bindings(instance):
            rows.add(tuple(bindings[v] for v in self.head))
        return frozenset(rows)

    def bindings(self, instance: DatabaseInstance) -> Iterator[dict[str, Any]]:
        """Yield one variable-binding dict per body match."""
        for assignment in _satisfying_assignments(instance, self.body):
            bindings: dict[str, Any] = {}
            for atom, tup in zip(self.body.relation_atoms, assignment):
                for position, variable in enumerate(atom.variables):
                    bindings[variable] = tup.values[position]
            yield bindings

    def __str__(self) -> str:
        body = str(self.body)
        # strip the NOT(...) wrapper for display.
        inner = body[4:-1] if body.startswith("NOT(") else body
        return f"{self.name}({', '.join(self.head)}) :- {inner}"


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse ``name(v1, ..., vk) :- atom, atom, ...``.

    The head is optional: a bare body is treated as a boolean query
    (empty head; it answers ``()`` when the body has a match).
    """
    head_text, separator, body_text = text.partition(":-")
    if not separator:
        body = parse_denial(text.strip())
        return ConjunctiveQuery(head=(), body=body)

    head_text = head_text.strip()
    if not head_text.endswith(")") or "(" not in head_text:
        raise ConstraintParseError(
            f"malformed query head {head_text!r}; expected name(v1, ...)"
        )
    name, _, variables_text = head_text[:-1].partition("(")
    name = name.strip()
    variables = tuple(
        v.strip() for v in variables_text.split(",") if v.strip()
    )
    body = parse_denial(body_text.strip())
    return ConjunctiveQuery(head=variables, body=body, name=name or "q")
