"""Range-consistent aggregate answers over the repair set.

Aggregates over an inconsistent database have no single consistent value;
the classic semantics (Arenas et al., "Scalar aggregation in inconsistent
databases" - reference [2] of the paper) answers with the **range**
``[glb, lub]``: the tightest interval containing the aggregate's value in
*every* repair.  With the repair sets enumerable on small databases
(``Rep^At`` / ``Rep#``), the range is computed exactly here.

Supported aggregates: ``count``, ``sum``, ``min``, ``max``, ``avg``, over
the rows of a conjunctive query's first head variable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from repro.cardinality.engine import all_optimal_deletion_repairs
from repro.constraints.denial import DenialConstraint
from repro.cqa.query import ConjunctiveQuery
from repro.exceptions import ReproError
from repro.fixes.distance import CITY_DISTANCE, DistanceMetric
from repro.model.instance import DatabaseInstance
from repro.repair.enumerate import all_optimal_repairs


def _agg_count(values: list) -> float:
    return float(len(values))


def _agg_sum(values: list) -> float:
    return float(sum(values))


def _agg_min(values: list) -> float:
    if not values:
        raise ReproError("min over an empty result is undefined")
    return float(min(values))


def _agg_max(values: list) -> float:
    if not values:
        raise ReproError("max over an empty result is undefined")
    return float(max(values))


def _agg_avg(values: list) -> float:
    if not values:
        raise ReproError("avg over an empty result is undefined")
    return float(sum(values)) / len(values)


_AGGREGATES: Mapping[str, Callable[[list], float]] = {
    "count": _agg_count,
    "sum": _agg_sum,
    "min": _agg_min,
    "max": _agg_max,
    "avg": _agg_avg,
}


@dataclass(frozen=True)
class AggregateRange:
    """The range answer ``[glb, lub]`` of one aggregate query."""

    aggregate: str
    query: ConjunctiveQuery
    semantics: str
    n_repairs: int
    glb: float
    lub: float

    @property
    def is_certain(self) -> bool:
        """True when every repair agrees on the value."""
        return self.glb == self.lub

    def summary(self) -> str:
        """Human-readable report."""
        value = (
            f"= {self.glb:g}"
            if self.is_certain
            else f"in [{self.glb:g}, {self.lub:g}]"
        )
        return (
            f"{self.aggregate}({self.query}) {value} "
            f"({self.semantics} semantics, {self.n_repairs} repairs)"
        )


def aggregate_range(
    instance: DatabaseInstance,
    constraints: Iterable[DenialConstraint],
    query: ConjunctiveQuery,
    aggregate: str = "count",
    semantics: str = "update",
    metric: str | DistanceMetric = CITY_DISTANCE,
    max_elements: int = 64,
) -> AggregateRange:
    """The tightest interval containing the aggregate in every repair.

    ``count`` aggregates the number of *distinct* query rows; the other
    aggregates apply to the first head variable's values (multiset over
    body matches collapses to the projected set, consistent with the set
    semantics of :meth:`ConjunctiveQuery.evaluate`).
    """
    try:
        fold = _AGGREGATES[aggregate.lower()]
    except KeyError:
        raise ReproError(
            f"unknown aggregate {aggregate!r}; choose from {sorted(_AGGREGATES)}"
        ) from None
    if aggregate.lower() != "count" and not query.head:
        raise ReproError(f"{aggregate} needs a head variable to aggregate")

    constraints = tuple(constraints)
    if semantics == "update":
        repairs = all_optimal_repairs(
            instance, constraints, metric=metric, max_elements=max_elements
        )
    elif semantics == "delete":
        repairs = all_optimal_deletion_repairs(
            instance, constraints, max_elements=max_elements
        )
    else:
        raise ReproError(
            f"unknown CQA semantics {semantics!r}; use 'update' or 'delete'"
        )

    values = []
    for repair in repairs:
        rows = query.evaluate(repair)
        if aggregate.lower() == "count":
            values.append(fold(list(rows)))
        else:
            values.append(fold([row[0] for row in rows]))
    return AggregateRange(
        aggregate=aggregate.lower(),
        query=query,
        semantics=semantics,
        n_repairs=len(repairs),
        glb=min(values),
        lub=max(values),
    )
