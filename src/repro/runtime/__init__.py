"""Parallel-execution runtime for the repair pipeline.

The pipeline's two hot stages fan out over independent work items —
violation detection over constraints, set-cover solving over connected
components — and this package provides the shared machinery: an
:class:`Executor` with ``serial`` / ``thread`` / ``process`` backends,
:class:`ExecutionPolicy` for configuring it, LPT :func:`balanced_chunks`
batching, and the picklable worker functions the process backend runs.

Every backend preserves input order and produces byte-identical results;
see DESIGN.md ("Parallel runtime") for backend selection guidance.
"""

from repro.runtime.executor import (
    BACKENDS,
    ExecutionPolicy,
    Executor,
    as_executor,
    balanced_chunks,
)

__all__ = [
    "BACKENDS",
    "ExecutionPolicy",
    "Executor",
    "as_executor",
    "balanced_chunks",
]
