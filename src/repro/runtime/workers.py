"""Picklable work descriptions for the process execution backend.

Process pools ship arguments and results through pickle, so the parallel
pipeline stages describe their work with plain data + top-level functions
from this module:

* **solving** — a batch of connected components travels as bare
  ``(n_elements, ((weight, elements), ...))`` specs (payloads stripped:
  solvers never read them, and :class:`~repro.fixes.mlf.FixCandidate`
  graphs would dominate the pickle size).  Solvers are named by registry
  key when possible so only a short string crosses the process boundary;
  unregistered callables are pickled by reference and must therefore be
  module-level functions — anything else trips the executor's serial
  fallback.
* **detection** — a batch of constraints travels together with the
  instance, so the instance is pickled once per batch instead of once per
  constraint.

Result shapes are plain tuples; the calling stage reassembles them into
:class:`~repro.setcover.result.Cover` / ``ViolationSet`` values in the
original input order, which keeps the parallel paths byte-identical to the
serial ones.

Tracing crosses the process boundary the same way: each batch payload
optionally ends with a ``trace`` flag.  When set, the worker runs its
batch under a fresh local :class:`~repro.obs.Tracer` and the result
becomes ``(results, remote)`` where ``remote`` is the picklable
:meth:`~repro.obs.Tracer.export_remote` payload; the dispatching stage
folds it back with :meth:`~repro.obs.Tracer.attach_remote`.  The flag is
only sent for the process backend — thread workers already see the
parent's active tracer.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.setcover.instance import SetCoverInstance, WeightedSet
from repro.setcover.result import Cover

#: ``(n_elements, ((weight, elements), ...))`` — a payload-free component.
ComponentSpec = "tuple[int, tuple[tuple[float, tuple[int, ...]], ...]]"

#: A solver shipped by registry name (str) or as a module-level callable.
SolverToken = "str | Callable[[SetCoverInstance], Cover]"


def solver_token(solver: Callable) -> "str | Callable":
    """Prefer the registry name over pickling the callable itself.

    Flat-engine solvers travel as ``"flat:<name>"`` so the worker process
    resolves the same engine it would have run in-process.
    """
    from repro.setcover.solvers import FLAT_SOLVERS, SOLVERS

    for name, registered in SOLVERS.items():
        if registered is solver:
            return name
    for name, registered in FLAT_SOLVERS.items():
        if registered is solver:
            return f"flat:{name}"
    return solver


def resolve_solver(token: "str | Callable") -> Callable:
    """Inverse of :func:`solver_token` (runs inside the worker process)."""
    from repro.setcover.solvers import get_solver

    if isinstance(token, str) and token.startswith("flat:"):
        return get_solver(token[5:], engine="flat")
    return get_solver(token)


def component_spec(instance: SetCoverInstance) -> tuple:
    """Strip a component instance down to its picklable skeleton."""
    return (
        instance.n_elements,
        tuple((s.weight, s.elements) for s in instance.sets),
    )


def _instance_from_spec(spec: tuple) -> SetCoverInstance:
    n_elements, sets = spec
    return SetCoverInstance(
        n_elements,
        [
            WeightedSet(index, weight, elements)
            for index, (weight, elements) in enumerate(sets)
        ],
    )


class _WorkerTrace:
    """Context manager running a worker batch under a fresh local tracer.

    ``remote()`` yields the picklable export once the batch finished, or
    ``None`` when tracing was off (so callers can uniformly build their
    result shape).
    """

    __slots__ = ("_enabled", "_tracer", "_activation")

    def __init__(self, enabled: bool) -> None:
        self._enabled = enabled
        self._tracer = None
        self._activation = None

    def __enter__(self) -> "_WorkerTrace":
        if self._enabled:
            from repro.obs import Tracer

            self._tracer = Tracer("worker")
            self._activation = self._tracer.activate()
            self._activation.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._activation is not None:
            self._activation.__exit__(exc_type, exc, tb)
        return False

    def remote(self) -> "dict | None":
        if self._tracer is None:
            return None
        return self._tracer.export_remote()


def solve_component_batch(
    payload: "tuple[Sequence[tuple], Sequence[str | Callable]]",
) -> "list[tuple] | tuple[list[tuple], dict]":
    """Solve one batch of components; one solver token per component.

    ``payload`` is ``(specs, tokens)`` or ``(specs, tokens, trace)``.
    Returns ``[(selected, weight, iterations, stats), ...]`` aligned with
    the input batch — wrapped as ``(results, remote_trace)`` when the
    trace flag is set.
    """
    specs, tokens, trace = (*payload, False)[:3]
    results: list[tuple] = []
    with _WorkerTrace(trace) as wt:
        for spec, token in zip(specs, tokens):
            cover = resolve_solver(token)(_instance_from_spec(spec))
            results.append(
                (cover.selected, cover.weight, cover.iterations, dict(cover.stats))
            )
    if trace:
        return results, wt.remote()
    return results


def detect_constraint_batch(payload: tuple) -> "list[tuple] | tuple[list[tuple], dict]":
    """Run ``find_violations`` for one batch of constraints.

    ``payload`` is ``(instance, constraints, max_violations, engine)`` plus
    an optional trailing ``trace`` flag; the result is one tuple of
    :class:`~repro.violations.detector.ViolationSet` per constraint, in
    batch order — wrapped as ``(results, remote_trace)`` when tracing.  A
    tripped ``max_violations`` safety valve raises
    :class:`~repro.exceptions.ConstraintError`, which the executor
    re-raises in the parent.  Process workers receive a pickled instance
    copy and build their own columnar snapshots for the kernel engine.
    """
    instance, constraints, max_violations, engine, trace = (*payload, False)[:5]
    from repro.violations.detector import find_violations

    with _WorkerTrace(trace) as wt:
        results = [
            find_violations(instance, constraint, max_violations, engine)
            for constraint in constraints
        ]
    if trace:
        return results, wt.remote()
    return results


def detect_planned_batch(payload: tuple) -> "list[tuple] | tuple[list[tuple], dict]":
    """Plan-driven detection for one batch of ``(constraint, chain)`` pairs.

    ``payload`` is ``(instance, work, max_violations)`` plus an optional
    trailing ``trace`` flag, where ``work`` is a list of
    ``(constraint, engine_chain)`` pairs from a
    :class:`~repro.plan.program.CompiledProgram`; the result is one tuple
    of ``ViolationSet`` per pair, in batch order - wrapped as
    ``(results, remote_trace)`` when tracing.  Chain fallback (and its
    ``plan_engine_downgrades`` counter) runs inside the worker, so the
    parallel path records the same downgrades the serial one would.
    """
    instance, work, max_violations, trace = (*payload, False)[:4]
    from repro.plan.runtime import planned_find_violations

    with _WorkerTrace(trace) as wt:
        results = [
            planned_find_violations(instance, constraint, chain, max_violations)
            for constraint, chain in work
        ]
    if trace:
        return results, wt.remote()
    return results


def detect_anchored_batch(payload: tuple) -> "list[tuple] | tuple[list[tuple], dict]":
    """Anchored (incremental) detection for one batch of constraints.

    ``payload`` is ``(instance, constraints, anchors, raw_indexes, engine)``
    plus an optional trailing ``trace`` flag; returns one tuple of
    ``ViolationSet`` per constraint, in batch order — wrapped as
    ``(results, remote_trace)`` when tracing.
    """
    instance, constraints, anchors, raw_indexes, engine, trace = (*payload, False)[:6]
    from repro.violations.detector import violations_involving_constraint

    with _WorkerTrace(trace) as wt:
        results = [
            violations_involving_constraint(
                instance, constraint, anchors, raw_indexes, engine
            )
            for constraint in constraints
        ]
    if trace:
        return results, wt.remote()
    return results


def detect_anchored_shard_batch(payload: tuple) -> list:
    """Raw anchored witness sets for one batch of (constraint, shard) units.

    ``payload`` is ``(instance, pairs, raw_indexes)`` where each pair is
    ``(constraint, anchor_chunk)``; the result is one
    ``set[frozenset[Tuple]]`` per pair, in batch order.  Unlike the
    ``ViolationSet``-shaped batches above, shard results are *pre-funnel*:
    the dispatcher unions them per constraint before minimality reduction,
    which is what keeps sharded detection byte-identical to serial (see
    :func:`repro.violations.detector.anchored_used_sets`).
    """
    instance, pairs, raw_indexes = payload
    from repro.violations.detector import anchored_used_sets

    return [
        anchored_used_sets(instance, constraint, anchors, raw_indexes)
        for constraint, anchors in pairs
    ]


def detection_cost(constraint: Any) -> float:
    """Rough relative cost of detecting one constraint's violations.

    Join width dominates enumeration cost, so the atom count is the load
    signal for balanced batching (a 3-atom denial joins a whole extra
    relation compared to a 2-atom one).
    """
    try:
        return float(max(1, len(constraint.relation_atoms)))
    except Exception:
        return 1.0
