"""Executor abstraction: serial, thread and process execution backends.

The repair pipeline has two embarrassingly-parallel stages — per-constraint
violation detection and per-component set-cover solving — whose work items
are independent by construction (constraints never share violation sets;
connected components never share candidate fixes).  ``Executor`` gives both
stages one shared dispatch mechanism:

* **serial** — a plain loop, zero overhead, always available;
* **thread** — ``ThreadPoolExecutor``; profitable when the work releases
  the GIL (sqlite-backed detection, any future C-accelerated solver) and
  free of serialization cost, so it is also the safe default for small
  batches;
* **process** — ``ProcessPoolExecutor``; true CPU parallelism for the
  pure-Python solver loops, at the cost of pickling the work description.

Guarantees, regardless of backend:

* ``map`` preserves input order — results arrive positionally, never in
  completion order, so every parallel pipeline stage is deterministic;
* exceptions raised by the mapped function propagate to the caller
  (``ReproError`` subclasses always — the ``max_violations`` safety valve
  keeps working under fan-out);
* pool-infrastructure failures (unpicklable work, a broken pool, fork
  restrictions) degrade to the serial loop with a logged warning instead
  of failing the repair, unless the policy disables the fallback.
"""

from __future__ import annotations

import logging
import os
import pickle
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace
from heapq import heappop, heappush
from typing import Any, Callable, Iterable, Sequence

from repro.exceptions import ReproError, RuntimeConfigError

logger = logging.getLogger(__name__)

#: Backends selectable by name (``auto`` resolves at execution time).
BACKENDS = ("serial", "thread", "process", "auto")

#: Exceptions that indicate the *pool* (not the work) failed: unpicklable
#: payloads, a worker that died, fork not being available.  Anything the
#: library itself raises is re-raised before this filter applies.
_POOL_FAILURES = (
    BrokenExecutor,
    pickle.PicklingError,
    AttributeError,
    TypeError,
    OSError,
    RuntimeError,
)


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a pipeline stage should be executed.

    Attributes
    ----------
    backend:
        ``serial``, ``thread``, ``process``, or ``auto`` (process when more
        than one worker is available, serial otherwise).
    max_workers:
        Worker count; ``None`` means ``os.cpu_count()``.
    chunks_per_worker:
        Over-partitioning factor for size-balanced batching: work is split
        into ``workers * chunks_per_worker`` bins so one oversized item
        cannot straggle a whole worker's share.
    fallback:
        Degrade to serial execution when the pool itself fails (default);
        set ``False`` to surface pool failures (used by tests).
    """

    backend: str = "serial"
    max_workers: int | None = None
    chunks_per_worker: int = 4
    fallback: bool = True

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise RuntimeConfigError(
                f"unknown execution backend {self.backend!r}; "
                f"choose from {BACKENDS}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise RuntimeConfigError(
                f"max_workers must be >= 1, got {self.max_workers}"
            )
        if self.chunks_per_worker < 1:
            raise RuntimeConfigError(
                f"chunks_per_worker must be >= 1, got {self.chunks_per_worker}"
            )

    @property
    def workers(self) -> int:
        """Resolved worker count (``max_workers`` or the machine's cores)."""
        if self.max_workers is not None:
            return self.max_workers
        return os.cpu_count() or 1

    @property
    def effective_backend(self) -> str:
        """``auto`` resolved against the worker count."""
        if self.backend == "auto":
            return "process" if self.workers > 1 else "serial"
        return self.backend

    @property
    def is_parallel(self) -> bool:
        """True when this policy can dispatch to more than one worker."""
        return self.effective_backend in ("thread", "process") and self.workers > 1

    @classmethod
    def resolve(
        cls,
        parallel: "bool | str | ExecutionPolicy | None" = None,
        max_workers: int | None = None,
    ) -> "ExecutionPolicy":
        """Normalize the user-facing ``parallel`` / ``max_workers`` options.

        ``None``/``False`` → serial; ``True`` → ``auto``; a backend name →
        that backend; an existing policy passes through (with
        ``max_workers`` overriding its worker count when given).
        """
        if isinstance(parallel, ExecutionPolicy):
            if max_workers is not None:
                return replace(parallel, max_workers=max_workers)
            return parallel
        if parallel is None or parallel is False:
            backend = "serial"
        elif parallel is True:
            backend = "auto"
        elif isinstance(parallel, str):
            backend = parallel
        else:
            raise RuntimeConfigError(
                f"parallel must be a bool, backend name or ExecutionPolicy, "
                f"got {parallel!r}"
            )
        return cls(backend=backend, max_workers=max_workers)


class Executor:
    """Order-preserving ``map`` over a configured execution backend."""

    def __init__(self, policy: ExecutionPolicy) -> None:
        self.policy = policy

    @property
    def backend(self) -> str:
        """The effective backend this executor dispatches to."""
        return self.policy.effective_backend

    @property
    def workers(self) -> int:
        """The resolved worker count."""
        return self.policy.workers

    @property
    def is_parallel(self) -> bool:
        """True when more than one worker can run concurrently."""
        return self.policy.is_parallel

    def n_chunks(self, n_items: int) -> int:
        """How many balanced bins to split ``n_items`` work items into."""
        if not self.is_parallel:
            return 1
        return max(1, min(n_items, self.workers * self.policy.chunks_per_worker))

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        """Apply ``fn`` to every item, returning results in input order.

        Exceptions from ``fn`` propagate.  Pool failures fall back to the
        serial loop (see module docstring) when the policy allows it.

        Thread-pool workers run under the *dispatching* thread's active
        tracer: activation is thread-local (see :mod:`repro.obs.trace`),
        so without explicit propagation a worker thread would fall back
        to whichever tracer some concurrent run activated last - under
        the :mod:`repro.service` job runtime that would interleave spans
        across jobs.  Process workers keep the explicit
        ``export_remote``/``attach_remote`` protocol instead.
        """
        items = list(items)
        backend = self.backend
        if backend == "serial" or self.workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        if backend == "thread":
            from repro.obs import current_tracer

            tracer = current_tracer()
            if tracer.enabled:
                inner = fn

                def fn(item, _inner=inner, _tracer=tracer):
                    with _tracer.activate():
                        return _inner(item)

        pool_cls = ThreadPoolExecutor if backend == "thread" else ProcessPoolExecutor
        workers = min(self.workers, len(items))
        try:
            with pool_cls(max_workers=workers) as pool:
                return list(pool.map(fn, items))
        except ReproError:
            raise
        except _POOL_FAILURES as error:
            if not self.policy.fallback:
                raise
            logger.warning(
                "runtime: %s pool failed (%s: %s); falling back to serial",
                backend,
                type(error).__name__,
                error,
            )
            return [fn(item) for item in items]


def as_executor(
    executor: "Executor | ExecutionPolicy | bool | str | None",
    max_workers: int | None = None,
) -> Executor:
    """Coerce any of the accepted ``executor=`` spellings to an ``Executor``.

    Accepts an :class:`Executor`, an :class:`ExecutionPolicy`, a backend
    name, ``True``/``False``/``None``, optionally combined with a worker
    count override.
    """
    if isinstance(executor, Executor):
        if max_workers is not None:
            return Executor(replace(executor.policy, max_workers=max_workers))
        return executor
    return Executor(ExecutionPolicy.resolve(executor, max_workers))


def balanced_chunks(
    costs: Sequence[float], n_chunks: int
) -> list[list[int]]:
    """Partition item indices into ``<= n_chunks`` bins of near-equal cost.

    Longest-processing-time (LPT) assignment: items are placed heaviest
    first into the currently lightest bin, so one large item cannot
    straggle a bin that also holds many small ones.  Ties break on bin
    index, items inside a bin are sorted by index, and bins are ordered by
    their smallest index — the chunking is fully deterministic.
    """
    if n_chunks < 1:
        raise RuntimeConfigError(f"n_chunks must be >= 1, got {n_chunks}")
    n_chunks = min(n_chunks, len(costs))
    if n_chunks <= 1:
        return [list(range(len(costs)))] if costs else []
    order = sorted(range(len(costs)), key=lambda i: (-costs[i], i))
    bins: list[list[int]] = [[] for _ in range(n_chunks)]
    heap: list[tuple[float, int]] = [(0.0, b) for b in range(n_chunks)]
    for index in order:
        load, bin_index = heappop(heap)
        bins[bin_index].append(index)
        heappush(heap, (load + costs[index], bin_index))
    chunks = [sorted(b) for b in bins if b]
    chunks.sort(key=lambda chunk: chunk[0])
    return chunks
