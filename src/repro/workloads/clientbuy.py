"""The paper's experimental workload (Section 4): the Client/Buy schema.

Schema (from [4, 5], as used in the ICDE'07 experiments)::

    Client(ID, A, C)   key ID,     F ∋ A (age), C (credit)
    Buy(ID, I, P)      key (ID,I), F ∋ P (price)

    IC = { ∀: ¬(Buy(ID,I,P), Client(ID,A,C), A < 18, P > 25),
           ∀: ¬(Client(ID,A,C), A < 18, C > 50) }

i.e. minors may not make purchases above 25 nor hold credit above 50.

The generator produces databases with a configurable fraction of tuples
involved in inconsistencies (the paper used "around 30%").  A client is
drawn *inconsistent* with probability ``inconsistency_ratio``; such a
client is a minor whose credit violates ic₂ with probability 1/2 and whose
purchases violate ic₁ with probability ``violating_buy_ratio`` each (at
least one forced).  Consistent clients are adults, whose tuples can never
participate in a violation of either constraint.  The *degree of
inconsistency* is therefore bounded by ``max_buys + 1``, the regime where
Proposition 3.7 gives O(n log n) for the modified greedy algorithm.
"""

from __future__ import annotations

import random

from repro.constraints.parser import parse_denials
from repro.model.instance import DatabaseInstance
from repro.model.schema import Attribute, Relation, Schema
from repro.workloads.generator import Workload

CLIENT_BUY_CONSTRAINTS = """
ic1: NOT(Buy(id, i, p), Client(id, a, c), a < 18, p > 25)
ic2: NOT(Client(id, a, c), a < 18, c > 50)
"""


def client_buy_schema(
    weight_a: float = 1.0, weight_c: float = 1.0, weight_p: float = 1.0
) -> Schema:
    """The Client/Buy schema with configurable attribute weights."""
    return Schema(
        [
            Relation(
                "Client",
                [
                    Attribute.hard("id"),
                    Attribute.flexible("a", weight_a),
                    Attribute.flexible("c", weight_c),
                ],
                key=["id"],
            ),
            Relation(
                "Buy",
                [
                    Attribute.hard("id"),
                    Attribute.hard("i"),
                    Attribute.flexible("p", weight_p),
                ],
                key=["id", "i"],
            ),
        ]
    )


def client_buy_workload(
    n_clients: int,
    inconsistency_ratio: float = 0.30,
    min_buys: int = 1,
    max_buys: int = 3,
    violating_buy_ratio: float = 0.6,
    seed: int = 0,
    minor_age_range: tuple[int, int] = (10, 17),
    bad_credit_range: tuple[int, int] = (51, 100),
    bad_price_range: tuple[int, int] = (26, 100),
) -> Workload:
    """Generate one random Client/Buy database.

    Parameters
    ----------
    n_clients:
        Number of Client tuples; total size is roughly
        ``n_clients * (1 + (min_buys+max_buys)/2)``.
    inconsistency_ratio:
        Probability that a client is an inconsistency source (paper: ~0.30
        of tuples involved; report the realized ratio via
        :func:`repro.violations.inconsistency_profile`).
    min_buys, max_buys:
        Purchases per client (uniform).  ``max_buys + 1`` bounds the degree
        of inconsistency.
    violating_buy_ratio:
        Probability that each purchase of an inconsistent client violates
        ic₁ (one is always forced, so every inconsistent client produces at
        least one violation set).
    seed:
        RNG seed; equal seeds give identical databases.
    minor_age_range, bad_credit_range, bad_price_range:
        Value ranges for the violating cells.  Tight ranges (e.g. ages
        14-17, credit 51-54, prices 26-29) produce many effective-weight
        *ties* between candidate fixes, the regime where the greedy and
        layer algorithms pick measurably different covers - the Figure-2
        benchmark uses this to expose the approximation-quality gap.
    """
    if n_clients <= 0:
        raise ValueError("n_clients must be positive")
    if not 0.0 <= inconsistency_ratio <= 1.0:
        raise ValueError("inconsistency_ratio must be in [0, 1]")
    if not 1 <= min_buys <= max_buys:
        raise ValueError("need 1 <= min_buys <= max_buys")
    if not (10 <= minor_age_range[0] <= minor_age_range[1] <= 17):
        raise ValueError("minor_age_range must lie within [10, 17]")
    if not (51 <= bad_credit_range[0] <= bad_credit_range[1]):
        raise ValueError("bad_credit_range must start above 50")
    if not (26 <= bad_price_range[0] <= bad_price_range[1]):
        raise ValueError("bad_price_range must start above 25")

    rng = random.Random(seed)
    schema = client_buy_schema()
    instance = DatabaseInstance(schema)

    for client_id in range(n_clients):
        inconsistent = rng.random() < inconsistency_ratio
        if inconsistent:
            age = rng.randint(*minor_age_range)
            credit = (
                rng.randint(*bad_credit_range)
                if rng.random() < 0.5
                else rng.randint(0, 50)
            )
        else:
            age = rng.randint(18, 80)
            credit = rng.randint(0, 100)
        instance.insert_row("Client", (client_id, age, credit))

        n_buys = rng.randint(min_buys, max_buys)
        forced = rng.randrange(n_buys) if inconsistent else -1
        for item in range(n_buys):
            if inconsistent and (
                item == forced or rng.random() < violating_buy_ratio
            ):
                price = rng.randint(*bad_price_range)
            else:
                price = rng.randint(1, 25)
            instance.insert_row("Buy", (client_id, item, price))

    return Workload(
        name="client-buy",
        schema=schema,
        instance=instance,
        constraints=tuple(parse_denials(CLIENT_BUY_CONSTRAINTS)),
        params={
            "n_clients": n_clients,
            "inconsistency_ratio": inconsistency_ratio,
            "min_buys": min_buys,
            "max_buys": max_buys,
            "violating_buy_ratio": violating_buy_ratio,
            "seed": seed,
            "minor_age_range": minor_age_range,
            "bad_credit_range": bad_credit_range,
            "bad_price_range": bad_price_range,
        },
    )
