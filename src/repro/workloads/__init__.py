"""Workload generators for examples, tests, and the benchmark harness."""

from repro.workloads.generator import Workload, random_detection_workload
from repro.workloads.clientbuy import client_buy_workload
from repro.workloads.census import census_workload
from repro.workloads.corruption import CorruptionResult, InjectedError, corrupt
from repro.workloads.finance import finance_workload
from repro.workloads.paperdemo import (
    deletion_example,
    paper_example,
    paper_pub_example,
    paper_pub_schema,
)
from repro.workloads.tpch_like import tpch_like_schema, tpch_like_workload

__all__ = [
    "tpch_like_schema",
    "tpch_like_workload",
    "Workload",
    "random_detection_workload",
    "client_buy_workload",
    "census_workload",
    "CorruptionResult",
    "InjectedError",
    "corrupt",
    "finance_workload",
    "deletion_example",
    "paper_example",
    "paper_pub_example",
    "paper_pub_schema",
]
