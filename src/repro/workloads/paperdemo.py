"""The paper's running examples as ready-made workloads.

* :func:`paper_example` - Examples 1.1 / 2.3: the ``Paper`` table with
  tuples ``t₁, t₂, t₃`` and constraints ic₁, ic₂ (weights 1, 1/20, 1/2).
* :func:`paper_pub_example` - Examples 2.5 / 3.3: adds the ``Pub`` table
  (α_Pag = 1/10) and the join constraint ic₃.
* :func:`deletion_example` - Example 5.4: the ``P``/``T`` database used to
  demonstrate cardinality repairs.

These are used as golden tests (the paper states their violation sets,
MWSCP matrices, and repairs explicitly) and by the quickstart example.
"""

from __future__ import annotations

from repro.constraints.parser import parse_denials
from repro.model.instance import DatabaseInstance
from repro.model.schema import Attribute, Relation, Schema
from repro.workloads.generator import Workload

PAPER_CONSTRAINTS = """
ic1: NOT(Paper(x, y, z, w), y > 0, z < 50)
ic2: NOT(Paper(x, y, z, w), y > 0, w < 1)
"""

PUB_CONSTRAINT = "ic3: NOT(Pub(x, y, z), Paper(y, u, v, w), z > 40, v < 70)"

DELETION_CONSTRAINTS = """
ic1: NOT(P(x, y), P(x, z), y != z)
ic2: NOT(P(x, y), T(y, z), z < 5)
"""


def _paper_relation() -> Relation:
    return Relation(
        "Paper",
        [
            Attribute.hard("id"),
            Attribute.flexible("ef", weight=1.0),
            Attribute.flexible("prc", weight=1.0 / 20),
            Attribute.flexible("cf", weight=1.0 / 2),
        ],
        key=["id"],
    )


def paper_example() -> Workload:
    """Examples 1.1 / 2.3: the environmentally-friendly paper table."""
    schema = Schema([_paper_relation()])
    instance = DatabaseInstance.from_rows(
        schema,
        {"Paper": [("B1", 1, 40, 0), ("C2", 1, 20, 1), ("E3", 1, 70, 1)]},
    )
    return Workload(
        name="paper-example-1.1",
        schema=schema,
        instance=instance,
        constraints=tuple(parse_denials(PAPER_CONSTRAINTS)),
    )


def paper_pub_schema() -> Schema:
    """The Paper + Pub schema of Examples 2.5 / 3.3 (no data).

    Static - usable by the constraint linter without ever building a
    :class:`~repro.model.instance.DatabaseInstance`.
    """
    return Schema(
        [
            _paper_relation(),
            Relation(
                "Pub",
                [
                    Attribute.hard("id"),
                    Attribute.hard("pid"),
                    Attribute.flexible("pag", weight=1.0 / 10),
                ],
                key=["id"],
            ),
        ]
    )


def paper_pub_example() -> Workload:
    """Examples 2.5 / 3.3: Paper + Pub with the join constraint ic₃."""
    schema = paper_pub_schema()
    instance = DatabaseInstance.from_rows(
        schema,
        {
            "Paper": [("B1", 1, 40, 0), ("C2", 1, 20, 1), ("E3", 1, 70, 1)],
            "Pub": [(235, "B1", 45), (112, "B1", 30), (100, "E3", 80)],
        },
    )
    return Workload(
        name="paper-example-3.3",
        schema=schema,
        instance=instance,
        constraints=tuple(parse_denials(PAPER_CONSTRAINTS + PUB_CONSTRAINT)),
    )


def deletion_example() -> Workload:
    """Example 5.4: the P/T database for cardinality (deletion) repairs.

    Note the constraints here are *not* local on the original schema (ic₁
    joins on a flexible-free relation with a ``≠`` between value columns),
    which is exactly the paper's point: the δ transformation makes them
    local and needs no primary keys.
    """
    schema = Schema(
        [
            Relation(
                "P",
                [Attribute.hard("a"), Attribute.hard("b")],
                key=["a", "b"],
            ),
            Relation(
                "T",
                [Attribute.hard("c"), Attribute.hard("d")],
                key=["c", "d"],
            ),
        ]
    )
    instance = DatabaseInstance.from_rows(
        schema,
        {"P": [(1, "b"), (1, "c"), (2, "e")], "T": [("e", 4)]},
    )
    return Workload(
        name="paper-example-5.4",
        schema=schema,
        instance=instance,
        constraints=tuple(parse_denials(DELETION_CONSTRAINTS)),
    )
