"""A financial workload (the introduction's "financial data" motivation).

Schema::

    Account(aid, region, balance, overdraft)   key aid,        F ∋ balance
    Transfer(tid, aid, amount)                 key tid,        F ∋ amount

    ic1: ¬(Transfer(t, a, m), m > 50000)                    transfer cap
    ic2: ¬(Account(a, r, b, o), Transfer(t, a, m),
           m > 10000, b < 1000)       large transfers need a funded account
    ic3: ¬(Account(a, r, b, o), b < -20000)    balance below overdraft floor

Fix directions: ``amount`` appears only in ``>`` (fixes lower it to the
cap / threshold), ``balance`` only in ``<`` (fixes raise it to the
floor / funding threshold) - the set is local, joins bind the hard ``aid``.
The degree of inconsistency is bounded by the per-account transfer count.
"""

from __future__ import annotations

import random

from repro.constraints.parser import parse_denials
from repro.model.instance import DatabaseInstance
from repro.model.schema import Attribute, Relation, Schema
from repro.workloads.generator import Workload

FINANCE_CONSTRAINTS = """
ic1: NOT(Transfer(t, a, m), m > 50000)
ic2: NOT(Account(a, r, b, o), Transfer(t, a, m), m > 10000, b < 1000)
ic3: NOT(Account(a, r, b, o), b < -20000)
"""


def finance_schema(
    weight_balance: float = 1.0 / 100, weight_amount: float = 1.0 / 100
) -> Schema:
    """Accounts and transfers; money attributes down-weighted per scale."""
    return Schema(
        [
            Relation(
                "Account",
                [
                    Attribute.hard("aid"),
                    Attribute.hard("region"),
                    Attribute.flexible("balance", weight_balance),
                    Attribute.hard("overdraft"),
                ],
                key=["aid"],
            ),
            Relation(
                "Transfer",
                [
                    Attribute.hard("tid"),
                    Attribute.hard("aid"),
                    Attribute.flexible("amount", weight_amount),
                ],
                key=["tid"],
            ),
        ]
    )


def finance_workload(
    n_accounts: int,
    transfers_per_account: int = 2,
    dirty_ratio: float = 0.2,
    seed: int = 0,
) -> Workload:
    """Generate one random finance database.

    A dirty account draws some combination of: an oversized transfer
    (ic₁), a large transfer from an underfunded account (ic₂), or a
    balance below the overdraft floor (ic₃).
    """
    if n_accounts <= 0:
        raise ValueError("n_accounts must be positive")
    if transfers_per_account < 1:
        raise ValueError("transfers_per_account must be >= 1")
    if not 0.0 <= dirty_ratio <= 1.0:
        raise ValueError("dirty_ratio must be in [0, 1]")

    rng = random.Random(seed)
    schema = finance_schema()
    instance = DatabaseInstance(schema)
    tid = 0
    regions = ("north", "south", "east", "west")

    for aid in range(n_accounts):
        dirty = rng.random() < dirty_ratio
        underfunded = dirty and rng.random() < 0.6
        deep_overdraft = dirty and rng.random() < 0.3
        if deep_overdraft:
            balance = rng.randint(-60000, -20001)
        elif underfunded:
            balance = rng.randint(-5000, 999)
        else:
            balance = rng.randint(1000, 100000)
        instance.insert_row(
            "Account", (aid, rng.choice(regions), balance, -20000)
        )
        for _ in range(transfers_per_account):
            if dirty and rng.random() < 0.5:
                amount = (
                    rng.randint(50001, 90000)
                    if rng.random() < 0.4
                    else rng.randint(10001, 50000)
                )
            else:
                amount = rng.randint(1, 10000)
            instance.insert_row("Transfer", (tid, aid, amount))
            tid += 1

    return Workload(
        name="finance",
        schema=schema,
        instance=instance,
        constraints=tuple(parse_denials(FINANCE_CONSTRAINTS)),
        params={
            "n_accounts": n_accounts,
            "transfers_per_account": transfers_per_account,
            "dirty_ratio": dirty_ratio,
            "seed": seed,
        },
    )
