"""A TPC-H-shaped workload at configurable scale for the pushdown engine.

Three relations modeled on TPC-H's ``customer`` / ``orders`` /
``lineitem`` (integer domains throughout, per the repair model's
numerical-attribute contract), a denial-constraint set mixing
single-atom range checks, a foreign-key join constraint, and a
self-join, plus seeded ground-truth corruption via
:func:`repro.workloads.corruption.corrupt`.

The clean generator only draws values *inside* every constraint's
allowed region, so the clean instance is consistent by construction;
``violation_ratio`` then corrupts that fraction of corruptible cells
against their fix direction, giving a violation load proportional to
``scale_factor x violation_ratio`` - the knob the pushdown benchmark
sweeps.
"""

from __future__ import annotations

import random

from repro.constraints.parser import parse_denials
from repro.model.instance import DatabaseInstance
from repro.model.schema import Attribute, Relation, Schema
from repro.workloads.corruption import corrupt
from repro.workloads.generator import Workload

TPCH_CONSTRAINTS = """
tq1: NOT(Lineitem(ok, ln, q, ep, d, sd), q > 50)
tq2: NOT(Lineitem(ok, ln, q, ep, d, sd), d > 10)
tq3: NOT(Lineitem(ok, ln, q, ep, d, sd), sd > 120)
tq4: NOT(Customer(ck, seg, bal), bal < 0)
tq5: NOT(Orders(ok, ck, pr, tp), Customer(ck, seg, bal), bal < 10, tp > 5000)
tq6: NOT(Lineitem(ok, ln, q, ep, d, sd), Lineitem(ok, ln2, q2, ep2, d2, sd2), ln < ln2, q > 45, q2 > 45)
"""

#: Customer rows at ``scale_factor=1.0``; orders and lineitems follow at
#: roughly 10x and 40x.
CUSTOMERS_PER_SF = 150


def tpch_like_schema() -> Schema:
    """Customer/Orders/Lineitem with flexible measure columns."""
    return Schema(
        [
            Relation(
                "Customer",
                [
                    Attribute.hard("custkey"),
                    Attribute.hard("mktsegment"),
                    Attribute.flexible("acctbal"),
                ],
                key=["custkey"],
            ),
            Relation(
                "Orders",
                [
                    Attribute.hard("orderkey"),
                    Attribute.hard("custkey"),
                    Attribute.hard("orderpriority"),
                    Attribute.flexible("totalprice"),
                ],
                key=["orderkey"],
            ),
            Relation(
                "Lineitem",
                [
                    Attribute.hard("orderkey"),
                    Attribute.hard("linenumber"),
                    Attribute.flexible("quantity"),
                    Attribute.flexible("extendedprice"),
                    Attribute.flexible("discount"),
                    Attribute.flexible("shipdelay"),
                ],
                key=["orderkey", "linenumber"],
            ),
        ]
    )


_SEGMENTS = ("BUILDING", "AUTOMOBILE", "MACHINERY", "HOUSEHOLD", "FURNITURE")
_PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT-SPECIFIED", "5-LOW")


def tpch_like_workload(
    scale_factor: float = 1.0,
    violation_ratio: float = 0.0,
    seed: int = 0,
    max_offset: int = 20,
) -> Workload:
    """Generate one TPC-H-shaped database.

    Parameters
    ----------
    scale_factor:
        Size knob: ``CUSTOMERS_PER_SF * scale_factor`` customers, each
        with 5-15 orders of 1-7 lineitems (roughly ``7_500 *
        scale_factor`` tuples in total).
    violation_ratio:
        Fraction of corruptible cells moved out of range
        (:func:`~repro.workloads.corruption.corrupt` with this
        ``cell_rate``).  ``0.0`` returns the clean, consistent instance.
    seed:
        RNG seed; generation and corruption are both deterministic in it.
    max_offset:
        How far past the constraint bound a corrupted cell can land.
    """
    if scale_factor <= 0:
        raise ValueError("scale_factor must be positive")
    if not 0.0 <= violation_ratio <= 1.0:
        raise ValueError("violation_ratio must be in [0, 1]")

    rng = random.Random(seed)
    schema = tpch_like_schema()
    constraints = tuple(parse_denials(TPCH_CONSTRAINTS))
    instance = DatabaseInstance(schema)

    n_customers = max(1, round(CUSTOMERS_PER_SF * scale_factor))
    orderkey = 0
    for custkey in range(n_customers):
        # Clean ranges sit strictly inside every constraint's allowed
        # region: acctbal >= 10 (tq4/tq5), totalprice <= 5000 (tq5),
        # quantity <= 45 (tq1/tq6), discount <= 10 (tq2), shipdelay
        # <= 120 (tq3) - so the clean instance is consistent.
        instance.insert_row(
            "Customer",
            (custkey, rng.choice(_SEGMENTS), rng.randint(10, 9999)),
        )
        for _ in range(rng.randint(5, 15)):
            instance.insert_row(
                "Orders",
                (
                    orderkey,
                    custkey,
                    rng.choice(_PRIORITIES),
                    rng.randint(100, 5000),
                ),
            )
            for linenumber in range(rng.randint(1, 7)):
                instance.insert_row(
                    "Lineitem",
                    (
                        orderkey,
                        linenumber,
                        rng.randint(1, 45),
                        rng.randint(100, 99999),
                        rng.randint(0, 10),
                        rng.randint(1, 120),
                    ),
                )
            orderkey += 1

    params = {
        "scale_factor": scale_factor,
        "violation_ratio": violation_ratio,
        "seed": seed,
        "max_offset": max_offset,
        "customers": n_customers,
        "orders": instance.count("Orders"),
        "lineitems": instance.count("Lineitem"),
        "injected_errors": 0,
    }
    if violation_ratio > 0.0:
        result = corrupt(
            instance,
            constraints,
            cell_rate=violation_ratio,
            max_offset=max_offset,
            seed=seed + 1,
        )
        instance = result.dirty
        params["injected_errors"] = len(result.errors)

    return Workload(
        name="tpch-like",
        schema=schema,
        instance=instance,
        constraints=constraints,
        params=params,
    )
