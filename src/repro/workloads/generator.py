"""Shared workload machinery: the :class:`Workload` bundle.

All generators are deterministic given a seed (``random.Random(seed)``),
which is what lets the benchmark harness replicate the paper's protocol of
"3 random databases per size, averaged" with stable numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.constraints.denial import DenialConstraint
from repro.model.instance import DatabaseInstance
from repro.model.schema import Schema


@dataclass(frozen=True)
class Workload:
    """A generated benchmark/demo database plus its constraints."""

    name: str
    schema: Schema
    instance: DatabaseInstance
    constraints: tuple[DenialConstraint, ...]
    params: Mapping[str, Any] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Total number of tuples."""
        return len(self.instance)

    def __repr__(self) -> str:
        return f"Workload({self.name!r}, tuples={self.size})"
