"""Shared workload machinery: the :class:`Workload` bundle.

All generators are deterministic given a seed (``random.Random(seed)``),
which is what lets the benchmark harness replicate the paper's protocol of
"3 random databases per size, averaged" with stable numbers.

:func:`random_detection_workload` generates small Client/Buy-style
instances paired with constraints drawn from every shipped denial shape -
the fuzz corpus of the kernel/interpreted equivalence tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.constraints.denial import DenialConstraint
from repro.constraints.parser import parse_denial
from repro.model.instance import DatabaseInstance
from repro.model.schema import Schema


@dataclass(frozen=True)
class Workload:
    """A generated benchmark/demo database plus its constraints."""

    name: str
    schema: Schema
    instance: DatabaseInstance
    constraints: tuple[DenialConstraint, ...]
    params: Mapping[str, Any] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Total number of tuples."""
        return len(self.instance)

    def __repr__(self) -> str:
        return f"Workload({self.name!r}, tuples={self.size})"


def _random_constraint(rng: random.Random, index: int) -> DenialConstraint:
    """One random denial over Client/Buy, drawn from the shipped shapes.

    The templates cover every constraint form the detector supports:
    var/constant built-ins with all six comparators, equality joins,
    ``=``/``≠`` variable comparisons, cross-atom order comparisons with
    and without offsets, single-atom comparisons, self-joins, and
    intra-atom repeated variables.
    """
    k1 = rng.randint(0, 30)
    k2 = rng.randint(0, 40)
    off = rng.randint(1, 5)
    sign = rng.choice("+-")
    templates = (
        f"NOT(Client(id, a, c), a < {k1}, c > {k2})",
        f"NOT(Buy(id, i, p), Client(id, a, c), a < {k1}, p > {k2})",
        f"NOT(Buy(id, i, p), Client(id, a, c), a <= {k1}, p != {k2})",
        f"NOT(Client(x, a, c), Client(y, a2, c2), x != y, a < a2 {sign} {off}, c > {k1})",
        f"NOT(Client(x, a, c), Client(y, a2, c2), a = a2, x != y, c >= {k2})",
        f"NOT(Buy(x, i, p), Buy(y, i, p2), x != y, p < p2 {sign} {off})",
        f"NOT(Buy(x, i, p), Buy(y, i2, p2), x < y, p >= p2 {sign} {off})",
        "NOT(Client(id, a, c), a > c)",
        f"NOT(Buy(id, i, p), Client(id, a, c), p >= a {sign} {off})",
        "NOT(Client(id, a, a))",
        f"NOT(Buy(id, i, p), p <= {k2}, i = {rng.randint(0, 2)})",
    )
    return parse_denial(rng.choice(templates), name=f"rc{index}")


def random_detection_workload(
    seed: int,
    n_clients: int = 40,
    n_constraints: int = 4,
) -> Workload:
    """A small random Client/Buy instance + random constraints of all shapes.

    Value ranges are deliberately tight (ages 0-30, credit 0-60, prices
    0-40) so joins hit, comparisons tie, and self-join witnesses overlap -
    the collision-heavy regime where an engine divergence would surface.
    Determinism: equal seeds give identical workloads.
    """
    from repro.workloads.clientbuy import client_buy_schema

    rng = random.Random(seed)
    schema = client_buy_schema()
    instance = DatabaseInstance(schema)
    for client_id in range(n_clients):
        instance.insert_row(
            "Client", (client_id, rng.randint(0, 30), rng.randint(0, 60))
        )
        for item in range(rng.randint(0, 3)):
            instance.insert_row(
                "Buy", (client_id, item, rng.randint(0, 40))
            )
    constraints = tuple(
        _random_constraint(rng, index) for index in range(n_constraints)
    )
    return Workload(
        name="random-detect",
        schema=schema,
        instance=instance,
        constraints=constraints,
        params={"seed": seed, "n_clients": n_clients},
    )
