"""Ground-truth corruption: clean database → injected errors → repair.

The paper's evaluation measures *cover weight*; a data-cleaning user also
wants to know how close a repair lands to the values that were true before
the errors crept in.  This module supports that evaluation protocol:

1. generate (or take) a **consistent** database - the ground truth;
2. :func:`corrupt` a random subset of flexible cells so that constraints
   break, remembering every injected error;
3. repair the dirty instance and score it against the truth with
   :func:`repro.analysis.quality.score_repair`.

Corruption moves a cell *against* its fix direction (e.g. an attribute
constrained by ``A < c`` is corrupted downward past the bound), mimicking
out-of-range entry errors - the census-form errors of the introduction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.constraints.denial import DenialConstraint
from repro.constraints.locality import FixDirection, comparison_directions
from repro.exceptions import ReproError
from repro.model.instance import DatabaseInstance
from repro.model.tuples import TupleRef


@dataclass(frozen=True)
class InjectedError:
    """One corrupted cell: where, what it was, what it became."""

    ref: TupleRef
    attribute: str
    clean_value: int
    dirty_value: int


@dataclass(frozen=True)
class CorruptionResult:
    """A dirty instance plus the ground truth needed to score repairs."""

    clean: DatabaseInstance
    dirty: DatabaseInstance
    errors: tuple[InjectedError, ...]

    @property
    def error_index(self) -> Mapping[tuple[TupleRef, str], InjectedError]:
        """Lookup by (tuple ref, attribute)."""
        return {(e.ref, e.attribute): e for e in self.errors}


def _corruptible_cells(
    instance: DatabaseInstance,
    directions: Mapping[tuple[str, str], set],
) -> list[tuple[TupleRef, str, FixDirection]]:
    cells = []
    for relation in instance.schema:
        for attribute in relation.flexible_attributes:
            found = directions.get((relation.name, attribute.name))
            if not found or len(found) != 1:
                continue
            direction = next(iter(found))
            for tup in instance.tuples(relation.name):
                cells.append((tup.ref, attribute.name, direction))
    return cells


def corrupt(
    instance: DatabaseInstance,
    constraints: Iterable[DenialConstraint],
    cell_rate: float = 0.05,
    max_offset: int = 20,
    seed: int = 0,
) -> CorruptionResult:
    """Inject out-of-range errors into a copy of ``instance``.

    Each corruptible cell (a flexible attribute with a unique comparison
    direction in the constraints) is corrupted with probability
    ``cell_rate``: its value moves *against* the fix direction by 1 to
    ``max_offset`` past the constraint's bound region - i.e. into, or
    further into, violating territory.  Not every corruption necessarily
    yields a violation (the denial may need join partners), which mirrors
    real error injection.

    The input is expected to be the clean truth; it is never mutated.
    """
    if not 0.0 <= cell_rate <= 1.0:
        raise ReproError("cell_rate must be in [0, 1]")
    if max_offset < 1:
        raise ReproError("max_offset must be >= 1")

    constraints = list(constraints)
    rng = random.Random(seed)
    directions = comparison_directions(constraints, instance.schema)
    dirty = instance.copy()
    errors: list[InjectedError] = []
    for ref, attribute, direction in _corruptible_cells(instance, directions):
        if rng.random() >= cell_rate:
            continue
        tup = dirty.resolve(ref)
        clean_value = tup[attribute]
        offset = rng.randint(1, max_offset)
        # UP-direction attributes are fixed by raising the value, so the
        # error lowers it; DOWN-direction attributes the other way round.
        if direction is FixDirection.UP:
            dirty_value = clean_value - offset
        else:
            dirty_value = clean_value + offset
        dirty.replace_tuple(tup.replace({attribute: dirty_value}))
        errors.append(InjectedError(ref, attribute, clean_value, dirty_value))

    return CorruptionResult(
        clean=instance.copy(), dirty=dirty, errors=tuple(errors)
    )
