"""A census-style workload (the introduction's motivating application).

The paper motivates attribute-update repairs with census/demographic data:
semantic range constraints over numeric answers, violations confined to
single households so the degree of inconsistency is bounded by the
household size ([11], and the discussion after Proposition 3.5).

Schema::

    Household(hid, nchild, rooms)            key hid,        F ∋ nchild
    Person(hid, pid, age, income)            key (hid, pid), F ∋ age, income

    ic1: ¬(Household(h, nc, r), nc > 20)                      nchild cap
    ic2: ¬(Person(h, p, a, inc), a > 120)                     age cap
    ic3: ¬(Person(h, p, a, inc), Household(h, nc, r),
           inc > 200000, nc > 15)        joint income/children plausibility

All strict comparisons point the same way per attribute (downward fixes),
so the set is local; the join variable ``h`` binds hard attributes only.
The ``household_size`` parameter directly controls ``Deg(D, IC)``, which
the degree-ablation benchmark sweeps.
"""

from __future__ import annotations

import random

from repro.constraints.parser import parse_denials
from repro.model.instance import DatabaseInstance
from repro.model.schema import Attribute, Relation, Schema
from repro.workloads.generator import Workload

CENSUS_CONSTRAINTS = """
ic1: NOT(Household(h, nc, r), nc > 20)
ic2: NOT(Person(h, p, a, inc), a > 120)
ic3: NOT(Person(h, p, a, inc), Household(h, nc, r), inc > 200000, nc > 15)
"""


def census_schema(
    weight_nchild: float = 1.0,
    weight_age: float = 1.0,
    weight_income: float = 1.0 / 1000,
) -> Schema:
    """Census schema; income is down-weighted (different measurement scale)."""
    return Schema(
        [
            Relation(
                "Household",
                [
                    Attribute.hard("hid"),
                    Attribute.flexible("nchild", weight_nchild),
                    Attribute.hard("rooms"),
                ],
                key=["hid"],
            ),
            Relation(
                "Person",
                [
                    Attribute.hard("hid"),
                    Attribute.hard("pid"),
                    Attribute.flexible("age", weight_age),
                    Attribute.flexible("income", weight_income),
                ],
                key=["hid", "pid"],
            ),
        ]
    )


def census_workload(
    n_households: int,
    household_size: int = 3,
    dirty_ratio: float = 0.2,
    seed: int = 0,
) -> Workload:
    """Generate one random census database.

    ``dirty_ratio`` is the probability that a household contains erroneous
    answers; a dirty household draws, independently, an over-large child
    count (ic₁ and possibly ic₃), an impossible age (ic₂), or both.  All
    violations of a household stay within it, so
    ``Deg(D, IC) <= household_size``.
    """
    if n_households <= 0:
        raise ValueError("n_households must be positive")
    if household_size < 1:
        raise ValueError("household_size must be >= 1")
    if not 0.0 <= dirty_ratio <= 1.0:
        raise ValueError("dirty_ratio must be in [0, 1]")

    rng = random.Random(seed)
    schema = census_schema()
    instance = DatabaseInstance(schema)

    for hid in range(n_households):
        dirty = rng.random() < dirty_ratio
        big_family = dirty and rng.random() < 0.5
        nchild = rng.randint(21, 30) if big_family else rng.randint(0, 6)
        instance.insert_row("Household", (hid, nchild, rng.randint(1, 8)))
        for pid in range(household_size):
            bad_age = dirty and rng.random() < 0.4
            age = rng.randint(121, 200) if bad_age else rng.randint(0, 99)
            rich = dirty and big_family and rng.random() < 0.5
            income = (
                rng.randint(200001, 500000) if rich else rng.randint(0, 150000)
            )
            instance.insert_row("Person", (hid, pid, age, income))

    return Workload(
        name="census",
        schema=schema,
        instance=instance,
        constraints=tuple(parse_denials(CENSUS_CONSTRAINTS)),
        params={
            "n_households": n_households,
            "household_size": household_size,
            "dirty_ratio": dirty_ratio,
            "seed": seed,
        },
    )
