"""``python -m repro.lint`` - the static constraint analyzer CLI."""

from __future__ import annotations

import sys

from repro.system.cli import lint_main

if __name__ == "__main__":
    sys.exit(lint_main())
