"""Redundancy between denial constraints (subsumption analysis).

Constraint ``B`` *subsumes* constraint ``A`` when every violation
witness of ``A`` contains a violation witness of ``B``.  Then ``A`` is
redundant: any repair eliminating ``B``'s violations also eliminates
``A``'s, so dropping ``A`` leaves every violation set coverable and the
MWSC instance (Definition 3.1) shrinks.

The syntactic test: a relation-name-preserving mapping ``σ`` from
``B``'s database atoms onto ``A``'s that induces a *consistent* variable
substitution ``θ`` (each ``B``-variable maps to exactly one
``A``-variable, so ``B``'s joins are preserved), such that every
built-in of ``B`` under ``θ`` is entailed by ``A``'s body (checked with
the difference-constraint machinery of
:mod:`repro.lint.satisfiability`).  Whenever the test succeeds, any
assignment witnessing ``A`` restricts through ``σ`` to an assignment
witnessing ``B`` over a subset of the same tuples.  The test is
conservative: ``σ`` may be non-injective, but a ``B``-variable needing
two distinct ``A``-variables fails the mapping even when ``A``'s body
forces them equal.

:func:`subsumption_analysis` applies the pairwise test to a whole set
with a keep-first policy whose removals are always *jointly* safe:
every removed constraint is subsumed - directly or through a chain of
removed ones (subsumption is transitive) - by a constraint that stays.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.constraints.atoms import BuiltinAtom, VariableComparison
from repro.constraints.denial import DenialConstraint
from repro.lint.satisfiability import (
    body_implies_builtin,
    body_implies_comparison,
)


def _substitutions(
    subsumer: DenialConstraint, target: DenialConstraint
) -> Iterator[Mapping[str, str]]:
    """Consistent variable substitutions induced by atom mappings.

    Yields every ``θ : vars(subsumer) → vars(target)`` arising from a
    relation-name-preserving assignment of subsumer atoms to target
    atoms.  Position-wise conflicts (one subsumer variable needing two
    target variables) drop the candidate mapping.
    """
    candidate_atoms: list[list[int]] = []
    for atom in subsumer.relation_atoms:
        matches = [
            index
            for index, target_atom in enumerate(target.relation_atoms)
            if target_atom.relation_name == atom.relation_name
        ]
        if not matches:
            return
        candidate_atoms.append(matches)
    for assignment in itertools.product(*candidate_atoms):
        theta: dict[str, str] = {}
        consistent = True
        for atom, target_index in zip(subsumer.relation_atoms, assignment):
            target_atom = target.relation_atoms[target_index]
            for variable, target_variable in zip(
                atom.variables, target_atom.variables
            ):
                bound = theta.setdefault(variable, target_variable)
                if bound != target_variable:
                    consistent = False
                    break
            if not consistent:
                break
        if consistent:
            yield theta


def subsumes(subsumer: DenialConstraint, target: DenialConstraint) -> bool:
    """True when every ``target`` violation contains a ``subsumer`` one.

    Conservative (see module docstring): a ``True`` answer is always
    semantically valid; ``False`` may miss deeper equivalences.
    """
    for theta in _substitutions(subsumer, target):
        builtins_entailed = all(
            body_implies_builtin(
                target,
                BuiltinAtom(theta[b.variable], b.comparator, b.constant),
            )
            for b in subsumer.builtins
        )
        if not builtins_entailed:
            continue
        comparisons_entailed = all(
            body_implies_comparison(
                target,
                VariableComparison(
                    theta[c.left], c.comparator, theta[c.right], c.offset
                ),
            )
            for c in subsumer.variable_comparisons
        )
        if comparisons_entailed:
            return True
    return False


@dataclass(frozen=True)
class SubsumptionResult:
    """Index-level outcome of :func:`subsumption_analysis`.

    ``duplicates`` maps a constraint index to the index of the earlier,
    syntactically equal constraint that is kept; ``subsumed`` maps a
    removable constraint index to the index of a *kept* subsumer (or of
    a removed one whose own chain ends at a kept subsumer).
    """

    duplicates: tuple[tuple[int, int], ...]
    subsumed: tuple[tuple[int, int], ...]

    @property
    def removable(self) -> frozenset[int]:
        """Indices that can be dropped without changing violation sets."""
        return frozenset(index for index, _ in self.duplicates) | frozenset(
            index for index, _ in self.subsumed
        )


def subsumption_analysis(
    constraints: Sequence[DenialConstraint],
) -> SubsumptionResult:
    """Classify a constraint set into kept / duplicate / subsumed.

    Keep-first policy: of two syntactic duplicates the earlier wins
    (mirroring :func:`repro.constraints.simplify.simplify_constraints`);
    of two mutually subsuming constraints the earlier wins; a strictly
    more general constraint arriving later takes over the kept slot of
    the constraints it subsumes.
    """
    kept: list[int] = []
    duplicates: list[tuple[int, int]] = []
    subsumed: list[tuple[int, int]] = []
    for index, constraint in enumerate(constraints):
        duplicate_of = next(
            (j for j in kept if constraints[j] == constraint), None
        )
        if duplicate_of is not None:
            duplicates.append((index, duplicate_of))
            continue
        subsumer = next(
            (j for j in kept if subsumes(constraints[j], constraint)), None
        )
        if subsumer is not None:
            subsumed.append((index, subsumer))
            continue
        kept.append(index)
        # A more general newcomer may subsume previously kept
        # constraints; transitivity keeps earlier removals rooted here.
        for j in kept[:-1]:
            if subsumes(constraint, constraints[j]):
                kept.remove(j)
                subsumed.append((j, index))
    return SubsumptionResult(
        duplicates=tuple(duplicates), subsumed=tuple(sorted(subsumed))
    )
