"""Structured diagnostics of the static constraint analyzer.

This module is deliberately dependency-free (no imports from the rest of
:mod:`repro`): the constraint modules re-export diagnostics through thin
wrappers (e.g. :class:`~repro.exceptions.LocalityError` carries them), so
anything here importing :mod:`repro.constraints` would be a cycle.

Diagnostic codes are stable API:

========  ========  =====================================================
code      severity  meaning
========  ========  =====================================================
LINT001   error     constraint does not validate against the schema
LINT010   warning   denial body is unsatisfiable (dead constraint)
LINT011   info      redundant comparison bounds within one constraint
LINT020   warning   constraint subsumed by another (safe to drop)
LINT021   info      exact duplicate of an earlier constraint
LINT030   error     locality condition (a) fails
LINT031   error     locality condition (b) fails
LINT032   error     locality condition (c) fails
LINT040   info      predicted layer-algorithm approximation factor
LINT041   warning   approximation factor unbounded (no candidate fixes)
LINT050   warning   kernel compilability is data-dependent (may fall
                    back to the interpreted engine)
LINT051   warning   SQL pushdown compilability is data-dependent (may
                    fall back to the kernel/interpreted engines)
LINT060   info      constraint eliminated by the plan compiler (dead
                    body: its violation set is empty on every instance)
LINT061   info/     plan compiler downgraded an engine for a constraint
          warning   (info: engine unavailable in this environment;
                    warning: execution is data-dependent, which
                    ``repro compile --strict`` refuses)
LINT062   warning   plan cache entry is stale (fingerprint mismatch);
                    the plan was recompiled instead of reused
========  ========  =====================================================

The ``LINT06x`` range is emitted by the static plan compiler
(:mod:`repro.plan`), not the linter, but shares this namespace so a
single table documents every code a report can carry.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

_GATES = ("error", "warning", "info", "never")


class Severity(enum.Enum):
    """Severity of one diagnostic; orders ``error > warning > info``."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Numeric severity, higher is worse."""
        return {"info": 0, "warning": 1, "error": 2}[self.value]

    @classmethod
    def from_name(cls, name: str) -> "Severity":
        """Parse a severity from its lowercase name."""
        for member in cls:
            if member.value == name:
                return member
        raise ValueError(f"unknown severity {name!r}; choose from "
                         f"{[m.value for m in cls]}")


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer.

    ``constraint`` is the label of the constraint the finding is about
    (empty for set-level findings such as the predicted approximation
    factor); ``details`` is a machine-readable payload whose keys depend
    on the code; ``suggestion`` is a human-readable fix hint.
    """

    code: str
    severity: Severity
    message: str
    constraint: str = ""
    details: Mapping[str, Any] = field(default_factory=dict)
    suggestion: str = ""

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (round-trips via :meth:`from_dict`)."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "constraint": self.constraint,
            "details": dict(self.details),
            "suggestion": self.suggestion,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Diagnostic":
        """Rebuild a diagnostic from :meth:`to_dict` output."""
        return cls(
            code=str(data["code"]),
            severity=Severity.from_name(str(data["severity"])),
            message=str(data["message"]),
            constraint=str(data.get("constraint", "")),
            details=dict(data.get("details", {})),
            suggestion=str(data.get("suggestion", "")),
        )


@dataclass(frozen=True)
class LintReport:
    """All diagnostics of one analyzer run, in pass order."""

    diagnostics: tuple[Diagnostic, ...] = ()

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    # -- views ---------------------------------------------------------------

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        """Diagnostics of error severity."""
        return self._of(Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        """Diagnostics of warning severity."""
        return self._of(Severity.WARNING)

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        """Diagnostics of info severity."""
        return self._of(Severity.INFO)

    def _of(self, severity: Severity) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is severity)

    def by_code(self, code: str) -> tuple[Diagnostic, ...]:
        """Diagnostics with a given ``LINTxxx`` code."""
        return tuple(d for d in self.diagnostics if d.code == code)

    def for_constraint(self, label: str) -> tuple[Diagnostic, ...]:
        """Diagnostics attached to one constraint label."""
        return tuple(d for d in self.diagnostics if d.constraint == label)

    @property
    def max_severity(self) -> Severity | None:
        """Worst severity present, ``None`` for a clean report."""
        if not self.diagnostics:
            return None
        return max((d.severity for d in self.diagnostics), key=lambda s: s.rank)

    def gated(self, fail_on: str) -> bool:
        """True when the report should fail a ``--fail-on`` gate.

        ``fail_on`` is ``"error"`` / ``"warning"`` / ``"info"`` (fail when
        any diagnostic is at least that severe) or ``"never"``.
        """
        if fail_on not in _GATES:
            raise ValueError(
                f"unknown gate {fail_on!r}; choose from {_GATES}"
            )
        if fail_on == "never":
            return False
        worst = self.max_severity
        return worst is not None and worst.rank >= Severity.from_name(fail_on).rank

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (round-trips via :meth:`from_dict`)."""
        return {
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "infos": len(self.infos),
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LintReport":
        """Rebuild a report from :meth:`to_dict` output."""
        return cls(
            diagnostics=tuple(
                Diagnostic.from_dict(entry) for entry in data["diagnostics"]
            )
        )

    def to_json(self, indent: int | None = None) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "LintReport":
        """Parse :meth:`to_json` output back into a report."""
        return cls.from_dict(json.loads(text))
