"""Static kernel-compilability classification of denial constraints.

``engine="auto"`` runs the columnar NumPy kernel and silently falls
back to the interpreted detector when a constraint/data shape has no
vectorized form (a :class:`~repro.exceptions.KernelError` at execution
time).  The shapes are statically knowable:
:func:`repro.violations.kernels.kernel_requirements` lists the
``(atom, position)`` slots whose columns must be all-integer.  This
pass resolves those slots against the schema:

* a slot bound to a **flexible** attribute is discharged - flexible
  attributes hold the paper's numerical (integer) domain by contract,
  so the column is int64 whenever the input is well-formed;
* a slot bound to a **hard** attribute may hold anything (identifiers,
  strings), so compilability becomes *data-dependent*: the constraint
  executes on the kernel only when that column happens to be
  all-integer, and falls back to the interpreted engine otherwise
  (``LINT050``).

A constraint with no undischarged slots is *unconditionally*
kernel-compilable: no data shape can force the fallback.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.denial import DenialConstraint
from repro.model.schema import Schema
from repro.violations.kernels import kernel_requirements

KERNEL_CONDITIONAL = "LINT050"
PUSHDOWN_CONDITIONAL = "LINT051"


@dataclass(frozen=True)
class KernelClassification:
    """Static kernel-compilability verdict for one constraint.

    ``required_slots`` are all integer-required ``(atom, position)``
    slots of the compiled plan; ``conditional_attributes`` the hard
    ``(relation, attribute)`` pairs among them that the schema cannot
    guarantee to be integer.
    """

    constraint: str
    required_slots: tuple[tuple[int, int], ...]
    conditional_attributes: tuple[tuple[str, str], ...]

    @property
    def unconditional(self) -> bool:
        """True when no data shape can force the interpreted fallback."""
        return not self.conditional_attributes


def classify_constraint(
    constraint: DenialConstraint, schema: Schema
) -> KernelClassification:
    """Classify one (validated) constraint against a schema."""
    required = sorted(kernel_requirements(constraint))
    conditional: set[tuple[str, str]] = set()
    for atom_index, position in required:
        atom = constraint.relation_atoms[atom_index]
        relation = schema.relation(atom.relation_name)
        attribute = relation.attributes[position]
        if not attribute.is_flexible:
            conditional.add((relation.name, attribute.name))
    return KernelClassification(
        constraint=constraint.label,
        required_slots=tuple(required),
        conditional_attributes=tuple(sorted(conditional)),
    )


def classify_pushdown(
    constraint: DenialConstraint, schema: Schema
) -> KernelClassification:
    """Static pushdown-executability verdict for one constraint.

    The SQL pushdown engine diverges from Python comparison semantics at
    exactly the slots the kernel cannot vectorize - order comparisons and
    offset arithmetic over non-integer columns (see
    :func:`repro.violations.pushdown.pushdown_requirements`, which is
    :func:`~repro.violations.kernels.kernel_requirements` by design) - so
    the static classification is shared: a constraint is *conditionally*
    pushdown-executable (``LINT051``) when a hard attribute among its
    required slots may hold non-integer data, making the backend refuse
    it with :class:`~repro.exceptions.PushdownError` at execution time
    (``engine="auto"`` then falls back in-memory).  NULL-freedom is a
    property of the data alone and stays a runtime check.
    """
    return classify_constraint(constraint, schema)
