"""Static prediction of the layer algorithm's approximation factor.

The layer algorithm approximates MWSC within ``f``, the maximum number
of candidate sets any universe element belongs to
(:attr:`repro.setcover.instance.SetCoverInstance.max_frequency`).  For
the repair reduction (Definition 3.1) an element is a violation set of
some ``ic`` and a candidate set is a mono-local fix ``(t, A, v)``; a fix
can resolve a violation of ``ic`` only when it rewrites a *flexible*
attribute occurring in ``ic``'s built-ins (changing anything else
cannot falsify the body: locality condition (a) keeps joins, equalities
and variable comparisons on hard attributes).  Distinct fix values for
one cell come one-per-constraint mentioning that cell's attribute
(Definition 2.8 derives one mono-local fix per ``(t, ic, A)``), so

.. math::

   f(ic) \\le \\sum_{\\text{atom} \\in ic}
       \\sum_{\\substack{A \\in \\mathrm{flex}(R_{\\text{atom}}) \\\\
                        (R_{\\text{atom}}, A) \\in A_B(ic)}}
       \\bigl|\\{\\, ic' : (R_{\\text{atom}}, A) \\in A_B(ic') \\,\\}\\bigr|

(a minimal violation of ``ic`` has at most one tuple per atom).  The
predicted set-level factor is the maximum over the constraints; a
constraint whose bound is zero has *no* candidate fixes at all - its
violations would make the set-cover instance uncoverable, which is
exactly a condition (b) failure seen from the MWSC side.
"""

from __future__ import annotations

from typing import Sequence

from repro.constraints.denial import DenialConstraint
from repro.model.schema import Schema


def builtin_attribute_overlap(
    constraints: Sequence[DenialConstraint], schema: Schema
) -> dict[tuple[str, str], int]:
    """``(relation, attribute) -> |{ic : (R, A) ∈ A_B(ic)}|``.

    Counts, for every attribute, how many constraints mention it in
    their built-in atoms - the overlap that drives candidate-fix
    frequency.
    """
    overlap: dict[tuple[str, str], int] = {}
    for constraint in constraints:
        for pair in constraint.attributes_in_builtins(schema):
            overlap[pair] = overlap.get(pair, 0) + 1
    return overlap


def predicted_max_frequency(
    constraints: Sequence[DenialConstraint], schema: Schema
) -> dict[str, int]:
    """Per-constraint static bound on candidate-fix frequency.

    Maps each constraint label to the bound derived in the module
    docstring; ``max(values)`` bounds the whole instance's
    ``max_frequency``, hence the layer algorithm's approximation factor.
    A value of ``0`` flags a constraint with no candidate fixes
    (condition (b) failure).
    """
    overlap = builtin_attribute_overlap(constraints, schema)
    predicted: dict[str, int] = {}
    for constraint in constraints:
        builtin_attributes = constraint.attributes_in_builtins(schema)
        total = 0
        for atom in constraint.relation_atoms:
            relation = schema.relation(atom.relation_name)
            for attribute in relation.attributes:
                if not attribute.is_flexible:
                    continue
                pair = (relation.name, attribute.name)
                if pair not in builtin_attributes:
                    continue
                total += overlap.get(pair, 0)
        predicted[constraint.label] = total
    return predicted
