"""Locality diagnostics: all failing Section-2 conditions, collected.

The raising API (:func:`repro.constraints.locality.check_local` /
``check_local_set``) historically stopped at the first failing
condition.  This pass produces the *complete* picture as structured
diagnostics - every condition (a) attribute, every condition (b)
constraint, every condition (c) direction clash - and the raising API
became a thin wrapper over it (the first diagnostic's message is the
exception message, so existing error-matching callers are unaffected).

Codes: ``LINT030`` condition (a), ``LINT031`` condition (b),
``LINT032`` condition (c); all errors, because the attribute-update
repair algorithms refuse non-local input.
"""

from __future__ import annotations

from typing import Sequence

from repro.constraints.denial import DenialConstraint
from repro.constraints.locality import (
    _equality_variables,
    comparison_directions,
)
from repro.lint.diagnostics import Diagnostic, Severity
from repro.model.schema import Schema

CONDITION_A = "LINT030"
CONDITION_B = "LINT031"
CONDITION_C = "LINT032"


def constraint_locality_diagnostics(
    constraint: DenialConstraint, schema: Schema
) -> tuple[Diagnostic, ...]:
    """All condition (a) and (b) failures of one (validated) constraint.

    Condition (a) yields one diagnostic per offending
    ``(variable, relation, attribute)`` binding, in sorted order;
    condition (b) yields at most one diagnostic per constraint.
    """
    diagnostics: list[Diagnostic] = []

    # (a) equality atoms, joins and variable comparisons bind only hard
    # attributes.
    restricted = _equality_variables(constraint) | set(
        constraint.join_variables
    )
    seen: set[tuple[str, str, str]] = set()
    for variable in sorted(restricted):
        for relation_name, attribute_name in constraint.bound_attributes(
            variable, schema
        ):
            attribute = schema.relation(relation_name).attribute(attribute_name)
            if not attribute.is_flexible:
                continue
            key = (variable, relation_name, attribute_name)
            if key in seen:
                continue
            seen.add(key)
            diagnostics.append(
                Diagnostic(
                    code=CONDITION_A,
                    severity=Severity.ERROR,
                    constraint=constraint.label,
                    message=(
                        f"{constraint.label}: condition (a) fails - flexible "
                        f"attribute {relation_name}.{attribute_name} "
                        "participates in an equality atom, join, or variable "
                        "comparison"
                    ),
                    details={
                        "condition": "a",
                        "relation": relation_name,
                        "attribute": attribute_name,
                        "variable": variable,
                    },
                    suggestion=(
                        f"mark {relation_name}.{attribute_name} as hard, or "
                        "rewrite the constraint so no equality/join/variable "
                        "comparison touches it"
                    ),
                )
            )

    # (b) at least one flexible attribute among the built-in attributes.
    flexible_in_builtins = [
        (relation_name, attribute_name)
        for relation_name, attribute_name in constraint.attributes_in_builtins(
            schema
        )
        if schema.relation(relation_name).attribute(attribute_name).is_flexible
    ]
    if not flexible_in_builtins:
        diagnostics.append(
            Diagnostic(
                code=CONDITION_B,
                severity=Severity.ERROR,
                constraint=constraint.label,
                message=(
                    f"{constraint.label}: condition (b) fails - no flexible "
                    "attribute occurs in the built-in atoms, so the "
                    "constraint cannot be repaired by attribute updates"
                ),
                details={"condition": "b"},
                suggestion=(
                    "add a comparison over a flexible attribute, mark one of "
                    "the compared attributes as flexible, or repair with the "
                    "tuple-deletion semantics instead"
                ),
            )
        )
    return tuple(diagnostics)


def locality_diagnostics(
    constraints: Sequence[DenialConstraint],
    schema: Schema,
    *,
    condition_c: bool = True,
) -> tuple[Diagnostic, ...]:
    """All locality failures of a (validated) constraint set.

    Per-constraint conditions (a)/(b) come first, in constraint order,
    then the set-level condition (c) clashes in sorted attribute order.
    The first diagnostic's message always matches what the historical
    fail-first check would have raised.
    """
    constraints = list(constraints)
    diagnostics: list[Diagnostic] = []
    for constraint in constraints:
        diagnostics.extend(constraint_locality_diagnostics(constraint, schema))

    if condition_c:
        directions = comparison_directions(constraints, schema)
        for (relation_name, attribute_name) in sorted(directions):
            found = directions[(relation_name, attribute_name)]
            if len(found) <= 1:
                continue
            diagnostics.append(
                Diagnostic(
                    code=CONDITION_C,
                    severity=Severity.ERROR,
                    message=(
                        "condition (c) fails - flexible attribute "
                        f"{relation_name}.{attribute_name} appears in both "
                        "'<' and '>' comparisons across the constraint set"
                    ),
                    details={
                        "condition": "c",
                        "relation": relation_name,
                        "attribute": attribute_name,
                        "directions": sorted(d.value for d in found),
                    },
                    suggestion=(
                        "split the constraint set so each flexible attribute "
                        "is bounded from one side only, or mark "
                        f"{relation_name}.{attribute_name} as hard"
                    ),
                )
            )
    return tuple(diagnostics)
