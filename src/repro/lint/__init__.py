"""Static constraint analysis (``repro lint``).

A linter over ``(schema, constraint set)`` - **no database instance** -
that catches, at configuration time, everything the repair machinery
would otherwise discover piecemeal and late:

* **satisfiability** (:mod:`repro.lint.satisfiability`): dead denial
  bodies, including the cross-atom forms (``x < y ∧ y < x``, offset
  cycles) that :mod:`repro.constraints.simplify` used to miss, via a
  difference-constraint graph with Bellman-Ford negative-cycle detection;
* **redundancy** (:mod:`repro.lint.subsumption`): constraints whose
  violations are always covered by another constraint's, so dropping them
  shrinks the MWSC instance without changing any repair;
* **locality** (:mod:`repro.lint.locality`): *all* failing Section-2
  conditions (a)-(c) with the offending attribute, not just the first;
* **approximation bounds** (:mod:`repro.lint.bounds`): a static upper
  bound on the MWSC element frequency ``f``, i.e. the layer algorithm's
  predicted ``f``-approximation factor;
* **kernel compilability** (:mod:`repro.lint.compilability`): which
  constraints the columnar engine can always execute and which may fall
  back to the interpreted detector at runtime;
* **pushdown executability** (same module): which constraints the SQL
  pushdown engine can always run in-database and which the backend may
  refuse at runtime for non-integer data.

Every finding is a structured :class:`~repro.lint.diagnostics.Diagnostic`
with a stable ``LINTxxx`` code; :func:`lint_constraints` runs all passes
and returns a :class:`~repro.lint.diagnostics.LintReport`.
"""

from repro.lint.analyzer import PASSES, lint_constraints, removable_constraints
from repro.lint.bounds import predicted_max_frequency
from repro.lint.compilability import (
    KernelClassification,
    classify_constraint,
    classify_pushdown,
)
from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.reporters import render_json, render_text
from repro.lint.satisfiability import body_is_satisfiable
from repro.lint.subsumption import subsumes

__all__ = [
    "PASSES",
    "Diagnostic",
    "KernelClassification",
    "LintReport",
    "Severity",
    "body_is_satisfiable",
    "classify_constraint",
    "classify_pushdown",
    "lint_constraints",
    "predicted_max_frequency",
    "removable_constraints",
    "render_json",
    "render_text",
    "subsumes",
]
