"""Denial-body satisfiability over ℤ via difference-constraint graphs.

A linear denial's body is a conjunction of atoms ``x θ c`` and
``x θ y + c`` over integer-valued attributes (footnote 2 of the paper
normalizes ``≤``/``≥`` into strict comparisons over ℤ; the repair
machinery applies the same convention everywhere).  Each conjunct of the
forms ``=``, ``<``, ``>``, ``≤``, ``≥`` translates into difference
constraints ``u - v ≤ w``:

* ``x < c``  →  ``x - 0 ≤ c - 1``     (a *zero* node models constants)
* ``x > c``  →  ``0 - x ≤ -c - 1``
* ``x < y + c``  →  ``x - y ≤ c - 1``
* ``x = y + c``  →  ``x - y ≤ c`` and ``y - x ≤ -c``

and so on.  A system of difference constraints is satisfiable iff its
constraint graph has no negative cycle (Bellman-Ford with a virtual
source); with integer weights the ℤ- and ℝ-relaxations coincide, so the
test is **exact** for ``≠``-free bodies.  Each ``≠`` conjunct is a
two-way disjunction (``x ≤ y + c - 1`` or ``x ≥ y + c + 1``); the solver
enumerates branch combinations up to :data:`MAX_DISJUNCTIONS` and beyond
that cap *drops* the extra ``≠`` conjuncts - relaxing the system, so an
"unsatisfiable" verdict stays sound (dead really means dead) while a
"satisfiable" verdict becomes an over-approximation.

This is the pass that catches the cross-atom dead bodies invisible to
the per-variable bound merging of :mod:`repro.constraints.simplify`,
e.g. ``x < y ∧ y < x`` or the offset cycle ``x < y + 1 ∧ y < x - 1``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.constraints.atoms import BuiltinAtom, Comparator, VariableComparison
from repro.constraints.denial import DenialConstraint

#: Branch-enumeration cap: bodies with more ``≠`` conjuncts than this have
#: the excess ignored (sound for deadness claims, see module docstring).
MAX_DISJUNCTIONS = 8

#: Reserved graph node standing for the constant 0.  Contains a NUL byte,
#: which the constraint grammar forbids in variable names, so it can never
#: collide with a real variable.
_ZERO = "\x000"

_NEGATION = {
    Comparator.EQ: Comparator.NE,
    Comparator.NE: Comparator.EQ,
    Comparator.LT: Comparator.GE,
    Comparator.GE: Comparator.LT,
    Comparator.GT: Comparator.LE,
    Comparator.LE: Comparator.GT,
}


@dataclass(frozen=True)
class _Edge:
    """One difference constraint ``head - tail ≤ weight``."""

    tail: str
    head: str
    weight: int


def _upper_edge(head: str, tail: str, bound: int) -> _Edge:
    """The constraint ``head - tail ≤ bound`` as a graph edge."""
    return _Edge(tail=tail, head=head, weight=bound)


def _builtin_edges(
    builtin: BuiltinAtom,
) -> tuple[tuple[_Edge, ...], tuple[_Edge, _Edge] | None]:
    """Translate ``x θ c``; returns ``(conjunct_edges, disjunction)``."""
    x, c = builtin.variable, builtin.constant
    comparator = builtin.comparator
    if comparator is Comparator.LT:
        return (_upper_edge(x, _ZERO, c - 1),), None
    if comparator is Comparator.LE:
        return (_upper_edge(x, _ZERO, c),), None
    if comparator is Comparator.GT:
        return (_upper_edge(_ZERO, x, -c - 1),), None
    if comparator is Comparator.GE:
        return (_upper_edge(_ZERO, x, -c),), None
    if comparator is Comparator.EQ:
        return (_upper_edge(x, _ZERO, c), _upper_edge(_ZERO, x, -c)), None
    # ≠: x ≤ c - 1  or  x ≥ c + 1.
    return (), (_upper_edge(x, _ZERO, c - 1), _upper_edge(_ZERO, x, -c - 1))


def _comparison_edges(
    comparison: VariableComparison,
) -> tuple[tuple[_Edge, ...], tuple[_Edge, _Edge] | None]:
    """Translate ``x θ y + c``; returns ``(conjunct_edges, disjunction)``."""
    x, y, c = comparison.left, comparison.right, comparison.offset
    comparator = comparison.comparator
    if comparator is Comparator.LT:
        return (_upper_edge(x, y, c - 1),), None
    if comparator is Comparator.LE:
        return (_upper_edge(x, y, c),), None
    if comparator is Comparator.GT:
        return (_upper_edge(y, x, -c - 1),), None
    if comparator is Comparator.GE:
        return (_upper_edge(y, x, -c),), None
    if comparator is Comparator.EQ:
        return (_upper_edge(x, y, c), _upper_edge(y, x, -c)), None
    # ≠: x ≤ y + c - 1  or  x ≥ y + c + 1.
    return (), (_upper_edge(x, y, c - 1), _upper_edge(y, x, -c - 1))


def _has_negative_cycle(edges: Sequence[_Edge]) -> bool:
    """Bellman-Ford negative-cycle detection from a virtual source.

    Initializing every distance to 0 is equivalent to a virtual source
    with zero-weight edges to all nodes, so any negative cycle (in any
    component) is detected.
    """
    nodes: list[str] = sorted({e.tail for e in edges} | {e.head for e in edges})
    distance: dict[str, int] = {node: 0 for node in nodes}
    for iteration in range(len(nodes) + 1):
        changed = False
        for edge in edges:
            candidate = distance[edge.tail] + edge.weight
            if candidate < distance[edge.head]:
                distance[edge.head] = candidate
                changed = True
        if not changed:
            return False
        if iteration == len(nodes):
            return True
    return False


def _satisfiable(
    builtins: Iterable[BuiltinAtom],
    comparisons: Iterable[VariableComparison],
) -> bool:
    """Satisfiability over ℤ of a conjunction of built-in atoms."""
    must: list[_Edge] = []
    disjunctions: list[tuple[_Edge, _Edge]] = []
    for builtin in builtins:
        edges, disjunction = _builtin_edges(builtin)
        must.extend(edges)
        if disjunction is not None:
            disjunctions.append(disjunction)
    for comparison in comparisons:
        edges, disjunction = _comparison_edges(comparison)
        must.extend(edges)
        if disjunction is not None:
            disjunctions.append(disjunction)
    # Beyond the cap, drop the excess ≠ conjuncts: relaxation keeps
    # "unsatisfiable" sound and errs towards "satisfiable".
    disjunctions = disjunctions[:MAX_DISJUNCTIONS]
    for branches in itertools.product(*disjunctions):
        if not _has_negative_cycle(must + list(branches)):
            return True
    return False


def body_is_satisfiable(constraint: DenialConstraint) -> bool:
    """True when some integer assignment satisfies the denial's body.

    A ``False`` verdict means the constraint is *dead*: no tuples can
    ever witness a violation, so it can be dropped without changing any
    violation set.  Exact for bodies with at most
    :data:`MAX_DISJUNCTIONS` ``≠`` conjuncts, over-approximating
    (``True``-biased) beyond.
    """
    return _satisfiable(constraint.builtins, constraint.variable_comparisons)


def body_implies_builtin(
    constraint: DenialConstraint, builtin: BuiltinAtom
) -> bool:
    """True when the body entails ``builtin`` over ℤ.

    Checked as unsatisfiability of ``body ∧ ¬builtin``; the negation of
    ``=`` introduces a disjunction, handled like any other ``≠``.
    Conservative under the disjunction cap (may answer ``False`` for an
    entailed atom, never ``True`` for a non-entailed one).
    """
    negated = BuiltinAtom(
        builtin.variable, _NEGATION[builtin.comparator], builtin.constant
    )
    return not _satisfiable(
        tuple(constraint.builtins) + (negated,),
        constraint.variable_comparisons,
    )


def body_implies_comparison(
    constraint: DenialConstraint, comparison: VariableComparison
) -> bool:
    """True when the body entails ``comparison`` over ℤ.

    Same construction as :func:`body_implies_builtin`; also correct for
    degenerate self-comparisons ``x θ x + c`` (they become self-loop
    edges, and a negative self-loop is a negative cycle).
    """
    negated = VariableComparison(
        comparison.left,
        _NEGATION[comparison.comparator],
        comparison.right,
        comparison.offset,
    )
    return not _satisfiable(
        constraint.builtins,
        tuple(constraint.variable_comparisons) + (negated,),
    )
