"""Text and JSON rendering of lint reports."""

from __future__ import annotations

from repro.lint.diagnostics import LintReport


def render_text(report: LintReport) -> str:
    """Human-readable report: one ``severity CODE message`` line each.

    Ends with a summary line; a clean report renders as just
    ``no diagnostics``.
    """
    if not report.diagnostics:
        return "no diagnostics"
    lines = [
        f"{diagnostic.severity.value:<7} {diagnostic.code}  "
        f"{diagnostic.message}"
        for diagnostic in report
    ]
    lines.append(
        f"{len(report.errors)} error(s), {len(report.warnings)} warning(s), "
        f"{len(report.infos)} info(s)"
    )
    return "\n".join(lines)


def render_json(report: LintReport, indent: int | None = 2) -> str:
    """The report as a JSON document (round-trips through ``json.loads``)."""
    return report.to_json(indent=indent)
