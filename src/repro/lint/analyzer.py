"""The analyzer: runs every lint pass over ``(schema, constraints)``.

Pure static analysis - no :class:`~repro.model.instance.DatabaseInstance`
is ever constructed or consulted.  Pass order (and therefore diagnostic
order) is :data:`PASSES`:

1. ``validity`` - constraints failing schema validation get ``LINT001``
   and are excluded from the later passes (their structure cannot be
   trusted);
2. ``satisfiability`` - dead bodies (``LINT010``) and mergeable
   redundant bounds (``LINT011``);
3. ``redundancy`` - subsumed constraints (``LINT020``) and exact
   duplicates (``LINT021``), among the live (non-dead) constraints;
4. ``locality`` - all failing Section-2 conditions
   (``LINT030``-``LINT032``);
5. ``bounds`` - the predicted layer-algorithm approximation factor
   (``LINT040``) and constraints without candidate fixes (``LINT041``);
6. ``compilability`` - constraints whose kernel execution is
   data-dependent (``LINT050``);
7. ``pushdownability`` - constraints whose SQL pushdown execution is
   data-dependent (``LINT051``).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.constraints.atoms import BuiltinAtom, Comparator
from repro.constraints.denial import DenialConstraint
from repro.exceptions import ConstraintError, SchemaError
from repro.lint.bounds import predicted_max_frequency
from repro.lint.compilability import (
    KERNEL_CONDITIONAL,
    PUSHDOWN_CONDITIONAL,
    classify_constraint,
    classify_pushdown,
)
from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.locality import locality_diagnostics
from repro.lint.satisfiability import body_is_satisfiable
from repro.lint.subsumption import subsumption_analysis
from repro.model.schema import Schema

PASSES = (
    "validity",
    "satisfiability",
    "redundancy",
    "locality",
    "bounds",
    "compilability",
    "pushdownability",
)

#: Codes marking a constraint safe to remove without changing any
#: violation set (dead bodies, subsumed constraints, duplicates).
REMOVABLE_CODES = ("LINT010", "LINT020", "LINT021")


def _redundant_bound_diagnostics(
    constraint: DenialConstraint,
) -> tuple[Diagnostic, ...]:
    """``LINT011`` for variables with several same-direction bounds."""
    normalized: list[BuiltinAtom] = []
    for builtin in constraint.builtins:
        normalized.extend(builtin.normalized())
    counts: dict[tuple[str, Comparator], int] = {}
    for builtin in normalized:
        if builtin.comparator in (Comparator.LT, Comparator.GT):
            key = (builtin.variable, builtin.comparator)
            counts[key] = counts.get(key, 0) + 1
    diagnostics: list[Diagnostic] = []
    for (variable, comparator), count in sorted(
        counts.items(), key=lambda item: (item[0][0], item[0][1].value)
    ):
        if count <= 1:
            continue
        diagnostics.append(
            Diagnostic(
                code="LINT011",
                severity=Severity.INFO,
                constraint=constraint.label,
                message=(
                    f"{constraint.label}: {count} '{comparator.value}' "
                    f"bounds on variable {variable!r} are redundant - the "
                    "conjunction is governed by the tightest one"
                ),
                details={
                    "variable": variable,
                    "comparator": comparator.value,
                    "count": count,
                },
                suggestion=(
                    "keep only the tightest bound (simplify_constraints "
                    "does this automatically)"
                ),
            )
        )
    return tuple(diagnostics)


def lint_constraints(
    schema: Schema,
    constraints: Iterable[DenialConstraint],
    *,
    passes: Sequence[str] | None = None,
) -> LintReport:
    """Run the static analyzer; returns the full diagnostic report.

    ``passes`` restricts which passes run (default: all of
    :data:`PASSES`); ``validity`` always runs because the other passes
    need schema-consistent constraints.
    """
    selected = tuple(PASSES if passes is None else passes)
    for name in selected:
        if name not in PASSES:
            raise ValueError(f"unknown lint pass {name!r}; choose from {PASSES}")
    constraints = tuple(constraints)
    diagnostics: list[Diagnostic] = []

    # -- validity ------------------------------------------------------------
    valid: list[DenialConstraint] = []
    for constraint in constraints:
        try:
            constraint.validate(schema)
        except (ConstraintError, SchemaError) as error:
            diagnostics.append(
                Diagnostic(
                    code="LINT001",
                    severity=Severity.ERROR,
                    constraint=constraint.label,
                    message=str(error),
                    details={"constraint_text": str(constraint)},
                    suggestion=(
                        "fix the constraint's atoms to match the schema's "
                        "relations and arities"
                    ),
                )
            )
            continue
        valid.append(constraint)

    # -- satisfiability ------------------------------------------------------
    dead: set[int] = set()
    if "satisfiability" in selected:
        for index, constraint in enumerate(valid):
            if not body_is_satisfiable(constraint):
                dead.add(index)
                diagnostics.append(
                    Diagnostic(
                        code="LINT010",
                        severity=Severity.WARNING,
                        constraint=constraint.label,
                        message=(
                            f"{constraint.label}: body is unsatisfiable over "
                            "the integers - the constraint can never be "
                            "violated (dead constraint)"
                        ),
                        details={"constraint_text": str(constraint)},
                        suggestion=(
                            "remove the constraint, or fix the contradictory "
                            "comparisons"
                        ),
                    )
                )
                continue
            diagnostics.extend(_redundant_bound_diagnostics(constraint))

    # -- redundancy ----------------------------------------------------------
    if "redundancy" in selected:
        live_indices = [i for i in range(len(valid)) if i not in dead]
        live = [valid[i] for i in live_indices]
        result = subsumption_analysis(live)
        for local_index, kept_index in result.duplicates:
            constraint = live[local_index]
            kept = live[kept_index]
            diagnostics.append(
                Diagnostic(
                    code="LINT021",
                    severity=Severity.INFO,
                    constraint=constraint.label,
                    message=(
                        f"{constraint.label}: exact duplicate of "
                        f"{kept.label} - only the first copy matters"
                    ),
                    details={"duplicate_of": kept.label},
                    suggestion="remove the duplicate constraint",
                )
            )
        for local_index, subsumer_index in result.subsumed:
            constraint = live[local_index]
            subsumer = live[subsumer_index]
            diagnostics.append(
                Diagnostic(
                    code="LINT020",
                    severity=Severity.WARNING,
                    constraint=constraint.label,
                    message=(
                        f"{constraint.label}: subsumed by {subsumer.label} - "
                        "every violation of it contains a violation of "
                        f"{subsumer.label}, so it never changes a repair"
                    ),
                    details={"subsumed_by": subsumer.label},
                    suggestion=(
                        "remove the subsumed constraint to shrink the "
                        "set-cover instance"
                    ),
                )
            )

    # -- locality ------------------------------------------------------------
    if "locality" in selected:
        diagnostics.extend(locality_diagnostics(valid, schema))

    # -- bounds --------------------------------------------------------------
    if "bounds" in selected and valid:
        predicted = predicted_max_frequency(valid, schema)
        positive = {
            label: bound for label, bound in predicted.items() if bound > 0
        }
        for constraint in valid:
            if predicted.get(constraint.label, 0) == 0:
                diagnostics.append(
                    Diagnostic(
                        code="LINT041",
                        severity=Severity.WARNING,
                        constraint=constraint.label,
                        message=(
                            f"{constraint.label}: approximation factor is "
                            "unbounded - no flexible attribute yields "
                            "candidate fixes, so its violations make the "
                            "set-cover instance uncoverable"
                        ),
                        details={"predicted_frequency": 0},
                        suggestion=(
                            "this mirrors locality condition (b): add a "
                            "comparison over a flexible attribute or use "
                            "tuple-deletion repairs"
                        ),
                    )
                )
        if positive:
            factor = max(positive.values())
            diagnostics.append(
                Diagnostic(
                    code="LINT040",
                    severity=Severity.INFO,
                    message=(
                        "layer algorithm predicted approximation factor: "
                        f"f <= {factor} (static bound on candidate-fix "
                        "frequency from constraint/attribute overlap)"
                    ),
                    details={
                        "predicted_frequency": factor,
                        "per_constraint": dict(predicted),
                    },
                    suggestion="",
                )
            )

    # -- compilability -------------------------------------------------------
    if "compilability" in selected:
        for constraint in valid:
            classification = classify_constraint(constraint, schema)
            if classification.unconditional:
                continue
            attributes = ", ".join(
                f"{relation}.{attribute}"
                for relation, attribute in classification.conditional_attributes
            )
            diagnostics.append(
                Diagnostic(
                    code=KERNEL_CONDITIONAL,
                    severity=Severity.WARNING,
                    constraint=constraint.label,
                    message=(
                        f"{constraint.label}: kernel compilability is "
                        f"data-dependent - order/offset comparisons need "
                        f"integer values in hard attribute(s) {attributes}; "
                        "engine=auto falls back to the interpreted detector "
                        "when they hold non-integers"
                    ),
                    details={
                        "attributes": [
                            list(pair)
                            for pair in classification.conditional_attributes
                        ],
                        "required_slots": [
                            list(slot)
                            for slot in classification.required_slots
                        ],
                    },
                    suggestion=(
                        "ensure the listed columns are integer-valued, or "
                        "request engine=interpreted to silence the fallback"
                    ),
                )
            )

    # -- pushdownability -----------------------------------------------------
    if "pushdownability" in selected:
        for constraint in valid:
            classification = classify_pushdown(constraint, schema)
            if classification.unconditional:
                continue
            attributes = ", ".join(
                f"{relation}.{attribute}"
                for relation, attribute in classification.conditional_attributes
            )
            diagnostics.append(
                Diagnostic(
                    code=PUSHDOWN_CONDITIONAL,
                    severity=Severity.WARNING,
                    constraint=constraint.label,
                    message=(
                        f"{constraint.label}: SQL pushdown executability is "
                        f"data-dependent - order/offset comparisons over "
                        f"hard attribute(s) {attributes} follow SQL type "
                        "ordering/coercion instead of Python semantics when "
                        "they hold non-integers; the backend refuses such "
                        "data and engine=auto falls back in-memory"
                    ),
                    details={
                        "attributes": [
                            list(pair)
                            for pair in classification.conditional_attributes
                        ],
                        "required_slots": [
                            list(slot)
                            for slot in classification.required_slots
                        ],
                    },
                    suggestion=(
                        "ensure the listed columns are integer-valued, or "
                        "request an in-memory engine to avoid the pushdown "
                        "refusal"
                    ),
                )
            )

    return LintReport(diagnostics=tuple(diagnostics))


def removable_constraints(report: LintReport) -> tuple[str, ...]:
    """Labels the analyzer marked safe to drop (dead/subsumed/duplicate).

    Removing exactly these constraints preserves every violation set's
    coverage: dead constraints have no violations, and each subsumed or
    duplicated constraint's violations contain violations of a kept one
    (tested property).
    """
    labels: list[str] = []
    for diagnostic in report:
        if diagnostic.code in REMOVABLE_CODES and diagnostic.constraint:
            if diagnostic.constraint not in labels:
                labels.append(diagnostic.constraint)
    return tuple(labels)
