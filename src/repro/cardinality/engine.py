"""Tuple-deletion repairs through the attribute-update engine (Prop. 5.3)."""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.constraints.denial import DenialConstraint
from repro.fixes.distance import CITY_DISTANCE, DistanceMetric
from repro.model.instance import DatabaseInstance
from repro.model.tuples import Tuple
from repro.obs import Tracer, as_tracer
from repro.repair.engine import repair_database
from repro.repair.result import RepairResult
from repro.cardinality.transform import (
    Mode,
    build_delta_transform,
    project_delta,
)
from repro.setcover.solvers import DEFAULT_SOLVER


@dataclass(frozen=True)
class DeletionRepairResult:
    """Outcome of a cardinality / mixed repair.

    ``repaired`` is over the *original* schema (after ``↓ δ``);
    ``deleted`` lists the removed original-schema tuples; ``inner`` is the
    attribute-update result on ``D#`` for full diagnostics.
    """

    repaired: DatabaseInstance
    deleted: tuple[Tuple, ...]
    inner: RepairResult
    trace: Any = None

    @property
    def deletions(self) -> int:
        """Number of deleted tuples."""
        return len(self.deleted)

    @property
    def weighted_cost(self) -> float:
        """Σ α_{δ_R} over deletions (= count under cardinality semantics)."""
        return self.inner.distance

    def summary(self) -> str:
        """Human-readable report."""
        deleted = "\n".join(f"  - {t!r}" for t in self.deleted) or "  (none)"
        return (
            f"deletions: {self.deletions} (weighted cost {self.weighted_cost:g})\n"
            f"deleted tuples:\n{deleted}"
        )


def cardinality_repair(
    instance: DatabaseInstance,
    constraints: Iterable[DenialConstraint],
    algorithm: str = DEFAULT_SOLVER,
    mode: Mode = "delete",
    table_weights: Mapping[str, float] | None = None,
    metric: str | DistanceMetric = CITY_DISTANCE,
    verify: bool = True,
    parallel=None,
    max_workers: int | None = None,
    engine: str = "auto",
    solver_engine: str = "auto",
    trace: "bool | Tracer" = False,
) -> DeletionRepairResult:
    """Approximate a minimum-cardinality tuple-deletion repair.

    Builds ``(D#, IC#)`` (Definition 5.1), runs the attribute-update engine
    on it, and projects the result back with ``↓ δ`` (Definition 5.2).

    Parameters
    ----------
    mode:
        ``delete`` - pure tuple deletions (the paper's Section 5; works for
        arbitrary linear denials, no locality or key requirements on the
        input).  ``mixed`` - the conclusion's extension where original
        flexible attributes remain updatable alongside δ, picking whichever
        of update or delete is cheaper per violation.
    table_weights:
        Per-relation deletion weights ``α_{δ_R}`` (default 1.0): deletions
        from lighter tables are preferred.
    parallel, max_workers, engine, solver_engine:
        Forwarded to :func:`repro.repair.engine.repair_database` - the
        transformed instance ``D#`` decomposes, fans out, and picks its
        detection and solver engines exactly like a direct
        attribute-update repair.
    trace:
        ``True`` records the whole run - a ``cardinality-repair`` root
        span with ``transform`` and ``project`` stages around the nested
        ``repair`` span tree - and returns the finished trace on
        ``DeletionRepairResult.trace``.  A caller-provided tracer nests
        the run instead (and keeps ownership).
    """
    # The Δ-transform builds a fresh in-memory D#, never backend-resident,
    # so a strict pushdown request downgrades to auto for the inner repair.
    if engine == "pushdown":
        engine = "auto"
    tracer = as_tracer(trace)
    owns_trace = tracer.enabled and not isinstance(trace, Tracer)
    with ExitStack() as ctx:
        ctx.enter_context(tracer.activate())
        root = ctx.enter_context(
            tracer.span("cardinality-repair", category="pipeline", mode=mode)
        )
        with tracer.span("transform", category="stage") as transform_span:
            transform = build_delta_transform(
                instance, constraints, mode=mode, table_weights=table_weights
            )
            transform_span.tag(tuples=len(transform.instance))
        inner = repair_database(
            transform.instance,
            transform.constraints,
            algorithm=algorithm,
            metric=metric,
            verify=verify,
            # IC# is local by construction (all δ comparisons are '>', joins
            # bind hard attributes in delete mode); mixed mode keeps the check.
            check_locality=(mode == "mixed"),
            parallel=parallel,
            max_workers=max_workers,
            engine=engine,
            solver_engine=solver_engine,
            # Pass the tracer object (not True): the inner repair nests
            # into this trace instead of starting its own.
            trace=tracer if tracer.enabled else False,
        )
        with tracer.span("project", category="stage") as project_span:
            repaired, deleted = project_delta(transform, inner.repaired)
            project_span.tag(deletions=len(deleted))
        root.tag(deletions=len(deleted))
        result_trace = None
        if owns_trace:
            ctx.close()
            result_trace = tracer.finish()
        return DeletionRepairResult(
            repaired=repaired, deleted=deleted, inner=inner, trace=result_trace
        )


def all_optimal_deletion_repairs(
    instance: DatabaseInstance,
    constraints: Iterable[DenialConstraint],
    table_weights: Mapping[str, float] | None = None,
    max_elements: int = 64,
) -> tuple[DatabaseInstance, ...]:
    """Every minimum-cardinality deletion repair (``Rep#(D, IC)``).

    Proposition 5.3 puts ``Rep#(D, IC)`` in bijection with the optimal
    attribute-update repairs of ``(D#, IC#)``; enumerating the latter
    (small databases only) and projecting through ``↓ δ`` yields the full
    repair set - Example 5.4's four repairs become a golden test.
    """
    from repro.repair.enumerate import all_optimal_repairs

    transform = build_delta_transform(
        instance, constraints, mode="delete", table_weights=table_weights
    )
    projected: dict[tuple, DatabaseInstance] = {}
    for repaired_sharp in all_optimal_repairs(
        transform.instance, transform.constraints, max_elements=max_elements
    ):
        repaired, _deleted = project_delta(transform, repaired_sharp)
        key = tuple(
            (relation.name, tuple(sorted(str(t.values) for t in repaired.tuples(relation.name))))
            for relation in repaired.schema
        )
        projected.setdefault(key, repaired)
    return tuple(projected[key] for key in sorted(projected))
