"""Cardinality (tuple-deletion) repairs via attribute updates (Section 5).

The δ-attribute transformation (Definition 5.1) reduces minimum-cardinality
tuple-deletion repairs to attribute-update repairs, so the Section 3
approximation algorithms apply unchanged.  The conclusion's extensions are
also implemented: per-table deletion weights, and a *mixed* mode combining
deletions with value updates.
"""

from repro.cardinality.transform import (
    DeltaTransform,
    build_delta_transform,
    project_delta,
)
from repro.cardinality.engine import (
    DeletionRepairResult,
    cardinality_repair,
)

__all__ = [
    "DeltaTransform",
    "build_delta_transform",
    "project_delta",
    "DeletionRepairResult",
    "cardinality_repair",
]
