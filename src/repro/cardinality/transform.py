"""The δ-attribute transformation (Definitions 5.1 and 5.2).

``D#`` extends every relation with a flexible attribute ``δ_R`` filled with
ones; deleting a tuple becomes updating its δ to 0.  ``IC#`` conjoins
``δ_{R_i} > 0`` for every atom occurrence, so only "present" tuples can
violate a constraint.  ``D ↓ δ`` projects a repaired ``D#`` back: drop the
tuples with δ = 0, drop the δ column.

Two modes:

* ``delete`` (Definition 5.1 verbatim): all original attributes become hard
  and form the key (no primary-key or locality requirement on the original
  input); the δs are the only flexible attributes.
* ``mixed`` (the conclusion's extension): the original flexible attributes
  stay flexible alongside δ, so a violation can be repaired by whichever of
  deletion or value update is cheaper.  This mode requires the original
  schema keys and the original constraints to be local.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Literal, Mapping

from repro.constraints.atoms import BuiltinAtom, Comparator, RelationAtom
from repro.constraints.denial import DenialConstraint
from repro.exceptions import SchemaError
from repro.model.instance import DatabaseInstance
from repro.model.schema import Attribute, AttributeRole, Relation, Schema
from repro.model.tuples import Tuple

Mode = Literal["delete", "mixed"]


@dataclass(frozen=True)
class DeltaTransform:
    """The result of transforming ``(D, IC)`` into ``(D#, IC#)``."""

    original_schema: Schema
    schema: Schema
    instance: DatabaseInstance
    constraints: tuple[DenialConstraint, ...]
    delta_names: Mapping[str, str]
    mode: Mode


def _delta_attribute_name(relation: Relation) -> str:
    """A δ attribute name not colliding with the relation's attributes."""
    name = "delta"
    while relation.has_attribute(name):
        name += "_"
    return name


def _transform_relation(
    relation: Relation,
    mode: Mode,
    delta_name: str,
    delta_weight: float,
) -> Relation:
    if mode == "delete":
        # Definition 5.1: K_{R#} = A_R \ δ_R, every original attribute hard.
        attributes = [Attribute.hard(a.name) for a in relation.attributes]
        key = relation.attribute_names
    else:
        attributes = list(relation.attributes)
        key = relation.key
    attributes.append(
        Attribute(delta_name, AttributeRole.FLEXIBLE, delta_weight)
    )
    return Relation(f"{relation.name}", attributes, key)


def _transform_constraint(
    constraint: DenialConstraint,
    delta_names: Mapping[str, str],
) -> DenialConstraint:
    """Add a fresh δ variable and ``δ > 0`` built-in per atom occurrence."""
    existing = set(constraint.variables)
    atoms: list[RelationAtom] = []
    builtins = list(constraint.builtins)
    for index, atom in enumerate(constraint.relation_atoms):
        variable = f"d{index}"
        while variable in existing:
            variable += "_"
        existing.add(variable)
        atoms.append(
            RelationAtom(atom.relation_name, atom.variables + (variable,))
        )
        builtins.append(BuiltinAtom(variable, Comparator.GT, 0))
    return DenialConstraint(
        atoms,
        builtins,
        constraint.variable_comparisons,
        name=f"{constraint.name}#" if constraint.name else "",
    )


def build_delta_transform(
    instance: DatabaseInstance,
    constraints: Iterable[DenialConstraint],
    mode: Mode = "delete",
    table_weights: Mapping[str, float] | None = None,
) -> DeltaTransform:
    """Build ``(D#, IC#)`` from ``(D, IC)``.

    ``table_weights`` sets ``α_{δ_R}`` per relation (default 1.0 for all,
    the cardinality semantics); e.g. ``{"T": 1.0, "R": 0.5}`` makes
    deleting from ``R`` half as costly as deleting from ``T``, realizing
    the per-table deletion priorities the conclusion describes.
    """
    table_weights = dict(table_weights or {})
    original_schema = instance.schema
    for relation_name in table_weights:
        original_schema.relation(relation_name)  # validate names early

    delta_names: dict[str, str] = {}
    new_relations: list[Relation] = []
    for relation in original_schema:
        delta_name = _delta_attribute_name(relation)
        delta_names[relation.name] = delta_name
        weight = table_weights.get(relation.name, 1.0)
        if weight <= 0:
            raise SchemaError(
                f"table weight for {relation.name!r} must be positive, got {weight}"
            )
        new_relations.append(
            _transform_relation(relation, mode, delta_name, weight)
        )
    new_schema = Schema(new_relations)

    new_instance = DatabaseInstance(new_schema)
    for relation in original_schema:
        new_relation = new_schema.relation(relation.name)
        for tup in instance.tuples(relation.name):
            new_instance.insert(Tuple(new_relation, tup.values + (1,)))

    new_constraints = tuple(
        _transform_constraint(ic, delta_names) for ic in constraints
    )
    return DeltaTransform(
        original_schema=original_schema,
        schema=new_schema,
        instance=new_instance,
        constraints=new_constraints,
        delta_names=delta_names,
        mode=mode,
    )


def project_delta(
    transform: DeltaTransform, repaired: DatabaseInstance
) -> tuple[DatabaseInstance, tuple[Tuple, ...]]:
    """``D ↓ δ`` (Definition 5.2): drop δ=0 tuples, then the δ column.

    Returns the projected instance over the *original* schema plus the
    original-schema tuples that were deleted.
    """
    result = DatabaseInstance(transform.original_schema)
    deleted: list[Tuple] = []
    for relation in transform.original_schema:
        delta_name = transform.delta_names[relation.name]
        new_relation = transform.schema.relation(relation.name)
        delta_position = new_relation.position(delta_name)
        for tup in repaired.tuples(relation.name):
            values = tup.values[:delta_position] + tup.values[delta_position + 1:]
            original_tuple = Tuple(relation, values)
            if tup.values[delta_position] > 0:
                result.insert(original_tuple)
            else:
                deleted.append(original_tuple)
    return result, tuple(deleted)
