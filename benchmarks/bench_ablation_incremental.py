"""Ablation: incremental repair vs full re-repair after an update batch.

The incremental engine anchors violation detection on the changed tuples,
so committing a small batch into a large consistent database costs work
proportional to the batch, not the database.  This bench loads a repaired
Client/Buy database, applies a fixed dirty batch, and times (a) an
incremental commit vs (b) re-running the full batch pipeline.
"""

from __future__ import annotations

import pytest

from repro import IncrementalRepairer, is_consistent, repair_database
from repro.workloads import client_buy_workload

from conftest import bench_sizes, record_point

SIZES = bench_sizes([500, 2000], quick=[500])

TABLE = "Ablation: incremental commit vs full re-repair (seconds)"
BATCH = 10      # dirty clients (each with one bad purchase) per commit


def _base(n_clients):
    workload = client_buy_workload(n_clients, inconsistency_ratio=0.3, seed=0)
    return workload


def _touch(instance):
    """Simulate the update that motivates a re-repair.

    A real full re-repair always follows a mutation, so per-instance
    engine caches (the kernel's columnar snapshots) are stale and must be
    rebuilt.  Timing repeated repairs of a *never-mutated* instance would
    let those caches carry over between rounds and understate the full
    path; one insert+delete round-trip bumps the data version without
    changing the violation profile.
    """
    instance.insert_row("Client", (99_999, 30, 10))
    instance.delete("Client", (99_999,))


@pytest.mark.parametrize("n_clients", SIZES)
def test_incremental_commit(benchmark, n_clients):
    workload = _base(n_clients)
    repairer = IncrementalRepairer(workload.instance, workload.constraints)

    counter = [0]

    def one_batch():
        base = 10_000 + counter[0] * BATCH
        counter[0] += 1
        for i in range(BATCH):
            repairer.insert("Client", (base + i, 15, 80))
            repairer.insert("Buy", (base + i, 0, 90))
        return repairer.commit()

    benchmark.group = f"incremental n={n_clients}"
    result = benchmark.pedantic(one_batch, rounds=3, iterations=1)
    assert result.violations_before == 2 * BATCH
    record_point(TABLE, "incremental", n_clients, benchmark.stats.stats.mean)
    assert is_consistent(repairer.instance, workload.constraints)


@pytest.mark.parametrize("n_clients", SIZES)
def test_full_rerepair(benchmark, n_clients):
    workload = _base(n_clients)
    clean = repair_database(workload.instance, workload.constraints).repaired
    dirty = clean.copy()
    for i in range(BATCH):
        dirty.insert_row("Client", (10_000 + i, 15, 80))
        dirty.insert_row("Buy", (10_000 + i, 0, 90))

    def full_once():
        _touch(dirty)
        return repair_database(dirty, workload.constraints, verify=False)

    benchmark.group = f"incremental n={n_clients}"
    result = benchmark.pedantic(full_once, rounds=3, iterations=1)
    assert result.violations_before == 2 * BATCH
    record_point(TABLE, "full re-repair", n_clients, benchmark.stats.stats.mean)


def test_incremental_beats_full_at_scale(benchmark):
    """At 2000 clients, the anchored commit wins by a clear factor."""
    import time

    workload = _base(2000)
    repairer = IncrementalRepairer(workload.instance, workload.constraints)
    clean = repairer.instance

    rounds = [0]

    def incremental_once():
        base = 20_000 + rounds[0] * BATCH
        rounds[0] += 1
        for i in range(BATCH):
            repairer.insert("Client", (base + i, 15, 80))
            repairer.insert("Buy", (base + i, 0, 90))
        started = time.perf_counter()
        repairer.commit()
        return time.perf_counter() - started

    dirty = clean.copy()
    for i in range(BATCH):
        dirty.insert_row("Client", (30_000 + i, 15, 80))
        dirty.insert_row("Buy", (30_000 + i, 0, 90))

    def full_once():
        _touch(dirty)
        started = time.perf_counter()
        repair_database(dirty, workload.constraints, verify=False)
        return time.perf_counter() - started

    incremental = min(incremental_once() for _ in range(3))
    full = min(full_once() for _ in range(3))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info.update({"incremental": incremental, "full": full})
    record_point(TABLE, "speedup at n=2000", 2000, full / incremental)
    assert incremental < full
