"""Sustained streaming-repair throughput: commit pipeline endurance.

Two experiments over the TPC-H-like generator (clean at the start,
seeded independent corruptions streamed in):

* **round throughput** - the same deterministic update stream is repaired
  three ways: the status-quo per-update loop (``IncrementalRepairer``
  with one snapshotting ``commit()`` per operation, each paying O(|D|)
  copies), the streaming pipeline (``StreamingRepairer`` batching
  ``COMMIT_INTERVAL`` operations per snapshot-free round), and the
  streaming pipeline with sharded Δ-anchored detection.  All three final
  databases must be byte-identical to a cold batch
  ``repair_database`` of the fully-mutated input, and at the largest
  scale the batched pipeline must sustain **>= 2x** the per-update
  throughput - the always-on acceptance ratchet
  (``speedups.round_speedup`` in ``BENCH_streaming.json``, diffed by CI
  via ``compare_snapshots.py``).  The sharded ratio is recorded
  informationally: anchor-shard threads contend on the GIL for this
  pure-Python detection work, so wall-clock parallel wins are a property
  of the runner, not the code (same policy as ``BENCH_parallel``).

* **endurance** - a fixed wall-clock budget of streamed operations
  (timeout-guarded by an operation cap) through one traced
  ``StreamingRepairer``; sustained updates/sec plus p50/p99 commit
  latency (read off the ``commit`` spans via
  :func:`repro.obs.latency_summary`) land in ``BENCH_streaming.json``
  and accumulate per-run rows in ``streaming_endurance.sqlite`` next to
  the JSON artifacts, so latency trajectories survive across runs.

The update stream touches each orderkey/custkey at most once and never
touches ``totalprice``, so every injected violation repairs through an
independent single-tuple fix - the regime where streamed round
boundaries provably cannot change the final repair (see
``tests/repair/test_streaming.py`` for the fuzzed parity suite).
"""

from __future__ import annotations

import random
import sqlite3
import time

import pytest

from repro import IncrementalRepairer, StreamingRepairer, repair_database
from repro.obs import latency_summary
from repro.workloads import tpch_like_workload

from conftest import bench_json_dir, bench_sizes, quick_mode, record_bench_json, record_point

TABLE = "Streaming repair: sustained throughput (updates/sec)"
QUICK = quick_mode()

SCALES = bench_sizes([1.0, 4.0], quick=[2.0])
LARGEST = SCALES[-1]
N_OPS = bench_sizes(400, quick=200)
COMMIT_INTERVAL = 32
SHARDS = 4
SEED = 7

#: Endurance run: wall budget (seconds) and the op cap guarding against
#: a pathologically slow runner turning the bench into a hang.
WALL_BUDGET = bench_sizes(6.0, quick=1.5)
OPS_CAP = bench_sizes(20_000, quick=3_000)

#: Out-of-range draws per corruptible Lineitem attribute (constraint,
#: low, high): quantity > 50 (tq1), discount > 10 (tq2), shipdelay > 120
#: (tq3).  One corruption per orderkey keeps the tq6 self-join silent.
_DIRTY_LINEITEM = (
    ("quantity", 51, 80),
    ("discount", 11, 25),
    ("shipdelay", 121, 200),
)


def _update_stream(workload, n_ops: int, seed: int, allow_repeats: bool = False):
    """A deterministic stream of ``(relation, key, {attr: value})`` ops.

    Each orderkey and custkey is touched at most once (dirty or clean),
    so every streamed round's violation neighbourhood is independent of
    every other round's - the byte-parity regime.  With
    ``allow_repeats`` (endurance mode, parity not asserted) exhausted
    key pools recycle into clean ``extendedprice`` traffic.
    """
    rng = random.Random(seed)
    instance = workload.instance
    per_order: dict = {}
    for tup in instance.tuples("Lineitem"):
        per_order.setdefault(tup.key[0], tup.key)
    line_keys = sorted(per_order.values())
    rng.shuffle(line_keys)
    cust_keys = sorted(tup.key for tup in instance.tuples("Customer"))
    rng.shuffle(cust_keys)
    recycled = list(line_keys)

    ops = []
    while len(ops) < n_ops:
        draw = rng.random()
        if draw < 0.5 and line_keys:
            key = line_keys.pop()
            attribute, low, high = _DIRTY_LINEITEM[rng.randrange(3)]
            ops.append(("Lineitem", key, {attribute: rng.randint(low, high)}))
        elif draw < 0.7 and cust_keys:
            key = cust_keys.pop()
            ops.append(("Customer", key, {"acctbal": -rng.randint(1, 50)}))
        elif line_keys:
            key = line_keys.pop()
            ops.append(("Lineitem", key, {"extendedprice": rng.randint(100, 99999)}))
        elif allow_repeats:
            key = recycled[rng.randrange(len(recycled))]
            ops.append(("Lineitem", key, {"extendedprice": rng.randint(100, 99999)}))
        else:
            break
    return ops


def _expected_repair(workload, ops):
    """Cold batch reference: mutate a copy, repair it in one shot."""
    mutated = workload.instance.copy()
    for relation_name, key, changes in ops:
        mutated.replace_tuple(mutated.get(relation_name, key).replace(changes))
    return repair_database(mutated, workload.constraints).repaired


def _run_per_update(workload, ops) -> tuple[float, object]:
    """Status quo: one snapshotting commit per streamed operation."""
    repairer = IncrementalRepairer(workload.instance, workload.constraints)
    started = time.perf_counter()
    for relation_name, key, changes in ops:
        repairer.update(relation_name, key, changes)
        repairer.commit()
    return time.perf_counter() - started, repairer.instance


def _run_streaming(workload, ops, shards=None) -> tuple[float, object]:
    """The pipeline: coalescing queue, snapshot-free batched rounds."""
    streamer = StreamingRepairer(
        workload.instance,
        workload.constraints,
        commit_interval=COMMIT_INTERVAL,
        max_pending=None,
        shards=shards,
    )
    started = time.perf_counter()
    for relation_name, key, changes in ops:
        streamer.update(relation_name, key, changes)
    streamer.flush()
    return time.perf_counter() - started, streamer.instance


@pytest.mark.parametrize("scale", SCALES)
def test_streaming_round_throughput(scale):
    workload = tpch_like_workload(scale, seed=SEED)
    ops = _update_stream(workload, N_OPS, seed=SEED)
    assert len(ops) == N_OPS
    expected = _expected_repair(workload, ops)

    serial_seconds, serial_instance = _run_per_update(workload, ops)
    batched_seconds, batched_instance = _run_streaming(workload, ops)
    sharded_seconds, sharded_instance = _run_streaming(workload, ops, shards=SHARDS)

    # Byte parity: round boundaries and sharding never change the repair.
    assert serial_instance == expected
    assert batched_instance == expected
    assert sharded_instance == expected

    round_speedup = serial_seconds / batched_seconds if batched_seconds else 0.0
    sharded_ratio = serial_seconds / sharded_seconds if sharded_seconds else 0.0
    n_tuples = len(workload.instance)
    record_point(TABLE, "per-update", n_tuples, len(ops) / serial_seconds)
    record_point(TABLE, "batched", n_tuples, len(ops) / batched_seconds)
    record_point(TABLE, "sharded", n_tuples, len(ops) / sharded_seconds)

    payload = {
        "scale": {
            str(scale): {
                "n_tuples": n_tuples,
                "ops": len(ops),
                "commit_interval": COMMIT_INTERVAL,
                "shards": SHARDS,
                "per_update_seconds": serial_seconds,
                "batched_seconds": batched_seconds,
                "sharded_seconds": sharded_seconds,
                "sharded_ratio": sharded_ratio,
                "parity": True,
            }
        },
        "workload": {"name": "tpch-like", "quick": QUICK, "seed": SEED},
    }
    if scale == LARGEST:
        # The acceptance ratchet: batched snapshot-free rounds must
        # sustain at least 2x the per-update commit loop, on any machine
        # (both sides are single-threaded, so the ratio is a property of
        # the pipeline, not the runner).
        payload["speedups"] = {"round_speedup": round_speedup}
        assert round_speedup >= 2.0, (
            f"streaming rounds only {round_speedup:.2f}x over per-update "
            f"commits at scale {scale} (need >= 2x)"
        )
    record_bench_json("streaming", payload)


def _persist_endurance_run(db_path, row, rounds) -> None:
    """Append one endurance run (plus its per-round latencies) to SQLite."""
    connection = sqlite3.connect(db_path)
    try:
        connection.executescript(
            """
            CREATE TABLE IF NOT EXISTS runs (
                run_id INTEGER PRIMARY KEY AUTOINCREMENT,
                created TEXT NOT NULL DEFAULT (datetime('now')),
                scale REAL, quick INTEGER, ops INTEGER, rounds INTEGER,
                seconds REAL, ops_per_second REAL,
                p50_commit_seconds REAL, p99_commit_seconds REAL
            );
            CREATE TABLE IF NOT EXISTS round_latencies (
                run_id INTEGER NOT NULL REFERENCES runs(run_id),
                round INTEGER NOT NULL,
                wall_seconds REAL NOT NULL
            );
            """
        )
        cursor = connection.execute(
            "INSERT INTO runs (scale, quick, ops, rounds, seconds,"
            " ops_per_second, p50_commit_seconds, p99_commit_seconds)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            row,
        )
        run_id = cursor.lastrowid
        connection.executemany(
            "INSERT INTO round_latencies (run_id, round, wall_seconds)"
            " VALUES (?, ?, ?)",
            [(run_id, index, wall) for index, wall in enumerate(rounds, 1)],
        )
        connection.commit()
    finally:
        connection.close()


def test_streaming_endurance():
    """Fixed wall budget of streamed ops; sustained rate + tail latency."""
    workload = tpch_like_workload(LARGEST, seed=SEED)
    ops = _update_stream(workload, OPS_CAP, seed=SEED + 1, allow_repeats=True)
    streamer = StreamingRepairer(
        workload.instance,
        workload.constraints,
        commit_interval=COMMIT_INTERVAL,
        max_pending=None,
        trace=True,
    )

    started = time.perf_counter()
    deadline = started + WALL_BUDGET
    submitted = 0
    for relation_name, key, changes in ops:
        streamer.update(relation_name, key, changes)
        submitted += 1
        if time.perf_counter() >= deadline:
            break
    streamer.flush()
    elapsed = time.perf_counter() - started
    assert submitted > 0 and streamer.stats.rounds > 0

    trace = streamer.finish_trace()
    commits = {row["name"]: row for row in latency_summary(trace)}
    commit_row = commits["commit"]
    assert commit_row["count"] == streamer.stats.rounds
    round_walls = [
        span.duration or 0.0
        for span in trace.spans()
        if span.name == "commit"
    ]
    ops_per_second = submitted / elapsed if elapsed else 0.0

    db_path = bench_json_dir() / "streaming_endurance.sqlite"
    db_path.parent.mkdir(parents=True, exist_ok=True)
    _persist_endurance_run(
        db_path,
        (
            LARGEST, int(QUICK), submitted, streamer.stats.rounds, elapsed,
            ops_per_second, commit_row["p50_seconds"], commit_row["p99_seconds"],
        ),
        round_walls,
    )

    record_point(TABLE, "endurance", len(workload.instance), ops_per_second)
    record_bench_json(
        "streaming",
        {
            "endurance": {
                "scale": LARGEST,
                "wall_budget_seconds": WALL_BUDGET,
                "ops_submitted": submitted,
                "ops_capped": submitted == len(ops),
                "elapsed_seconds": elapsed,
                "ops_per_second": ops_per_second,
                "rounds": streamer.stats.rounds,
                "coalesced": streamer.stats.coalesced,
                "commit_latency": {
                    "count": commit_row["count"],
                    "mean_seconds": commit_row["mean_seconds"],
                    "p50_seconds": commit_row["p50_seconds"],
                    "p99_seconds": commit_row["p99_seconds"],
                    "max_seconds": commit_row["max_seconds"],
                },
                "sqlite": str(db_path),
            }
        },
    )
