"""Shared infrastructure for the benchmark harness.

The harness regenerates the paper's evaluation (Section 4):

* ``bench_fig2_distance.py`` - Figure 2, Distance Approximation;
* ``bench_fig3_runtime.py``  - Figure 3, Running Time (MWSCP solver only);
* ``bench_ablation_*.py``    - additional ablations documented in DESIGN.md.

Repair problems are expensive to build (violation detection + reduction),
so they are cached per (workload, size, seed) for the whole session; the
timed region of the Figure-3 benchmarks is exactly the paper's: the MWSCP
solver component alone.

Result series registered by the tests (cover weights, ratios) are printed
in the terminal summary, giving the textual equivalent of the figures -
and recorded into EXPERIMENTS.md-ready tables.
"""

from __future__ import annotations

from collections import defaultdict

from repro.analysis.report import format_series
from repro.repair.builder import RepairProblem, build_repair_problem
from repro.workloads import census_workload, client_buy_workload

_PROBLEM_CACHE: dict[tuple, RepairProblem] = {}

#: series registered by benchmarks: {table title: {series: {x: y}}}
SERIES: dict[str, dict[str, dict]] = defaultdict(dict)


def clientbuy_problem(
    n_clients: int, seed: int = 0, tight_values: bool = False
) -> RepairProblem:
    """Cached Client/Buy repair problem (paper's experimental workload).

    ``tight_values`` narrows the violating-value ranges so candidate fixes
    frequently tie on effective weight - the regime where greedy and layer
    choose different covers (used by the Figure-2 quality benchmark).
    """
    key = ("clientbuy", n_clients, seed, tight_values)
    if key not in _PROBLEM_CACHE:
        ranges = (
            {
                "minor_age_range": (14, 17),
                "bad_credit_range": (51, 54),
                "bad_price_range": (26, 29),
            }
            if tight_values
            else {}
        )
        workload = client_buy_workload(
            n_clients, inconsistency_ratio=0.30, seed=seed, **ranges
        )
        _PROBLEM_CACHE[key] = build_repair_problem(
            workload.instance, workload.constraints
        )
    return _PROBLEM_CACHE[key]


def census_problem(
    n_households: int, household_size: int, seed: int = 0
) -> RepairProblem:
    """Cached census repair problem (degree-of-inconsistency ablation)."""
    key = ("census", n_households, household_size, seed)
    if key not in _PROBLEM_CACHE:
        workload = census_workload(
            n_households, household_size=household_size, dirty_ratio=0.3, seed=seed
        )
        _PROBLEM_CACHE[key] = build_repair_problem(
            workload.instance, workload.constraints
        )
    return _PROBLEM_CACHE[key]


def record_point(table: str, series: str, x, y) -> None:
    """Register one (x, y) point of a named series for the summary."""
    SERIES[table].setdefault(series, {})[x] = y


def pytest_terminal_summary(terminalreporter):
    """Print the registered series tables after the benchmark run."""
    if not SERIES:
        return
    terminalreporter.write_sep("=", "paper-figure series (see EXPERIMENTS.md)")
    for title, series in SERIES.items():
        terminalreporter.write_line("")
        terminalreporter.write_line(format_series(title, "size", series))
    terminalreporter.write_line("")
