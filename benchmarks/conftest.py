"""Shared infrastructure for the benchmark harness.

The harness regenerates the paper's evaluation (Section 4):

* ``bench_fig2_distance.py`` - Figure 2, Distance Approximation;
* ``bench_fig3_runtime.py``  - Figure 3, Running Time (MWSCP solver only);
* ``bench_ablation_*.py``    - additional ablations documented in DESIGN.md.

Repair problems are expensive to build (violation detection + reduction),
so they are cached per (workload, size, seed) for the whole session; the
timed region of the Figure-3 benchmarks is exactly the paper's: the MWSCP
solver component alone.

Result series registered by the tests (cover weights, ratios) are printed
in the terminal summary, giving the textual equivalent of the figures -
and recorded into EXPERIMENTS.md-ready tables.

Besides the printed tables, every run emits machine-readable JSON:
``record_bench_json(name, payload)`` writes ``BENCH_<name>.json`` and the
registered series land in ``BENCH_figures.json``, all under
``benchmarks/results/`` (override with ``REPRO_BENCH_JSON_DIR``).  Each
file carries machine metadata (python, platform, cpu count) so perf
trajectories recorded by CI stay comparable across runners.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from collections import defaultdict
from pathlib import Path

from repro.analysis.report import format_series
from repro.repair.builder import RepairProblem, build_repair_problem
from repro.workloads import census_workload, client_buy_workload

_PROBLEM_CACHE: dict[tuple, RepairProblem] = {}

#: series registered by benchmarks: {table title: {series: {x: y}}}
SERIES: dict[str, dict[str, dict]] = defaultdict(dict)

#: JSON payloads registered by benchmarks: {name: payload}.
BENCH_JSON: dict[str, dict] = {}


def bench_json_dir() -> Path:
    """Where ``BENCH_*.json`` artifacts go (env-overridable for CI)."""
    return Path(
        os.environ.get(
            "REPRO_BENCH_JSON_DIR", str(Path(__file__).parent / "results")
        )
    )


def machine_info() -> dict:
    """Runner metadata embedded in every JSON artifact."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


def record_bench_json(name: str, payload: dict) -> None:
    """Register one ``BENCH_<name>.json`` artifact (merged per name)."""
    BENCH_JSON.setdefault(name, {}).update(payload)


def quick_mode() -> bool:
    """True when ``REPRO_BENCH_QUICK`` asks for CI-smoke-sized runs."""
    return os.environ.get("REPRO_BENCH_QUICK", "").lower() not in ("", "0", "false")


def bench_sizes(full, quick):
    """Pick benchmark scale: ``full`` normally, ``quick`` in CI smoke runs.

    The one place the ``REPRO_BENCH_QUICK`` switch turns into concrete
    sizes - every ``bench_*.py`` declares both scales through this helper
    instead of open-coding the conditional, so the smoke/full split stays
    greppable and uniform.  Works for size lists and scalar knobs alike.
    """
    return quick if quick_mode() else full


def trace_mode() -> bool:
    """True when ``REPRO_BENCH_TRACE`` asks benchmarks to record traces.

    Tracing benchmarks makes the ``BENCH_*.json`` artifacts carry span
    breakdowns (which stage the wall clock went to) at the cost of the
    observability overhead inside the timed regions, so it is opt-in -
    the default numbers stay comparable across runs.  (An env var rather
    than a pytest option: pytest's own debugging ``--trace`` flag already
    takes that name.)
    """
    return os.environ.get("REPRO_BENCH_TRACE", "").lower() not in ("", "0", "false")


def clientbuy_problem(
    n_clients: int, seed: int = 0, tight_values: bool = False
) -> RepairProblem:
    """Cached Client/Buy repair problem (paper's experimental workload).

    ``tight_values`` narrows the violating-value ranges so candidate fixes
    frequently tie on effective weight - the regime where greedy and layer
    choose different covers (used by the Figure-2 quality benchmark).
    """
    key = ("clientbuy", n_clients, seed, tight_values)
    if key not in _PROBLEM_CACHE:
        ranges = (
            {
                "minor_age_range": (14, 17),
                "bad_credit_range": (51, 54),
                "bad_price_range": (26, 29),
            }
            if tight_values
            else {}
        )
        workload = client_buy_workload(
            n_clients, inconsistency_ratio=0.30, seed=seed, **ranges
        )
        _PROBLEM_CACHE[key] = build_repair_problem(
            workload.instance, workload.constraints
        )
    return _PROBLEM_CACHE[key]


def census_problem(
    n_households: int, household_size: int, seed: int = 0
) -> RepairProblem:
    """Cached census repair problem (degree-of-inconsistency ablation)."""
    key = ("census", n_households, household_size, seed)
    if key not in _PROBLEM_CACHE:
        workload = census_workload(
            n_households, household_size=household_size, dirty_ratio=0.3, seed=seed
        )
        _PROBLEM_CACHE[key] = build_repair_problem(
            workload.instance, workload.constraints
        )
    return _PROBLEM_CACHE[key]


def record_point(table: str, series: str, x, y) -> None:
    """Register one (x, y) point of a named series for the summary."""
    SERIES[table].setdefault(series, {})[x] = y


def _dump_json_artifacts(write_line) -> None:
    """Write every registered JSON artifact to the results directory."""
    artifacts = dict(BENCH_JSON)
    if SERIES:
        artifacts.setdefault("figures", {})["series"] = {
            title: {
                name: {str(x): y for x, y in points.items()}
                for name, points in series.items()
            }
            for title, series in SERIES.items()
        }
    if not artifacts:
        return
    directory = bench_json_dir()
    directory.mkdir(parents=True, exist_ok=True)
    info = machine_info()
    for name, payload in artifacts.items():
        path = directory / f"BENCH_{name}.json"
        path.write_text(
            json.dumps({"machine": info, **payload}, indent=2, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
        write_line(f"wrote {path}")


def pytest_terminal_summary(terminalreporter):
    """Print the registered series tables and dump the JSON artifacts."""
    if not SERIES and not BENCH_JSON:
        return
    terminalreporter.write_sep("=", "paper-figure series (see EXPERIMENTS.md)")
    for title, series in SERIES.items():
        terminalreporter.write_line("")
        terminalreporter.write_line(format_series(title, "size", series))
    terminalreporter.write_line("")
    _dump_json_artifacts(terminalreporter.write_line)
