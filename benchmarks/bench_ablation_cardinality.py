"""Ablation: cardinality (tuple-deletion) repairs via the δ transformation.

Section 5 reduces minimum-cardinality deletion repairs to attribute-update
repairs.  This ablation times the full reduction pipeline (transform +
detect + solve + project) on growing Client/Buy databases and checks the
semantic invariants: the result is consistent and deletes no more tuples
than are inconsistent.
"""

from __future__ import annotations

import pytest

from repro import cardinality_repair, inconsistency_profile, is_consistent
from repro.workloads import client_buy_workload

from conftest import bench_sizes, record_point

SIZES = bench_sizes([100, 400, 1600], quick=[100, 400])
TABLE = "Ablation: cardinality repair end-to-end (seconds)"


@pytest.mark.parametrize("n_clients", SIZES)
def test_cardinality_repair_scaling(benchmark, n_clients):
    workload = client_buy_workload(n_clients, inconsistency_ratio=0.3, seed=0)
    benchmark.group = "cardinality"
    result = benchmark.pedantic(
        lambda: cardinality_repair(
            workload.instance, workload.constraints, algorithm="modified-greedy"
        ),
        rounds=1,
        iterations=1,
    )
    assert is_consistent(result.repaired, workload.constraints)
    profile = inconsistency_profile(workload.instance, workload.constraints)
    assert 0 < result.deletions <= profile.inconsistent_tuples
    record_point(TABLE, "delta-reduction", n_clients, benchmark.stats.stats.mean)
    record_point(
        "Ablation: deletions vs inconsistent tuples",
        "deleted fraction",
        n_clients,
        result.deletions / profile.inconsistent_tuples,
    )
    benchmark.extra_info["deletions"] = result.deletions


@pytest.mark.parametrize("mode", ["delete", "mixed"])
def test_mode_comparison(benchmark, mode):
    """Mixed mode (conclusion) never deletes more than pure-delete mode."""
    workload = client_buy_workload(200, inconsistency_ratio=0.3, seed=1)
    benchmark.group = "cardinality modes"
    result = benchmark.pedantic(
        lambda: cardinality_repair(
            workload.instance,
            workload.constraints,
            mode=mode,
            table_weights={"Client": 5.0, "Buy": 5.0} if mode == "mixed" else None,
        ),
        rounds=1,
        iterations=1,
    )
    assert is_consistent(result.repaired, workload.constraints)
    record_point(
        "Ablation: repair mode (n=200)", mode, 200, float(result.deletions)
    )
