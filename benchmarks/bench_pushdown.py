"""SQL pushdown detection vs the in-memory engines at TPC-H-like scale.

The pushdown engine runs each compiled violation query inside the SQL
backend and streams back only the witness key rows, so its detection
cost scales with the number of *witnesses*; the kernel and interpreted
engines first materialize Python-side state proportional to ``|D|``
(columnar NumPy snapshots, tuple enumeration).  This bench measures that
gap on the :func:`repro.workloads.tpch_like` workload - three relations,
six constraints (range checks, an FK join, a self-join), 1% corrupted
cells - at increasing scale factors.

Protocol: **cold vs cold**.  Every timed round detects on a freshly
loaded/copied instance - ``backend.load_instance`` for pushdown (fresh
binding and executability cache), ``instance.copy()`` for the in-memory
engines (forcing the per-instance columnar snapshot rebuild) - because
one-shot detection over a resident database is exactly the scenario the
pushdown engine exists for.  Warm repeat-detection numbers are recorded
informationally (``warm_ratio``; the kernel's cached snapshots win that
regime, which is why ``auto`` is only routed to pushdown for
backend-resident instances).

Artifacts: ``BENCH_pushdown.json`` with per-engine cold seconds and the
headline pushdown-vs-kernel speedup per scale factor, keyed by backend
name so sqlite-only snapshots and ``[duckdb]`` CI legs diff cleanly.
The gate asserts pushdown >=3x kernel at the largest full-mode scale;
quick mode only sanity-checks >1x.
"""

from __future__ import annotations

import time

import pytest

from repro.model.columnar import kernel_available
from repro.storage import SqliteBackend, duckdb_available
from repro.violations.detector import find_all_violations
from repro.workloads import tpch_like_workload

from conftest import bench_sizes, quick_mode, record_bench_json, record_point

TABLE = "Pushdown: detection engines (seconds, cold, best of 3)"
SIZES = bench_sizes([5.0, 20.0, 50.0], quick=[5.0])
LARGEST = SIZES[-1]
VIOLATION_RATIO = 0.01
ROUNDS = 3

if duckdb_available():
    from repro.storage import DuckDBBackend

    BACKEND_NAME = "duckdb"
    BACKEND_CLS = DuckDBBackend
else:
    BACKEND_NAME = "sqlite"
    BACKEND_CLS = SqliteBackend

POINTS: dict = {}
SPEEDUPS: dict = {}

needs_kernel = pytest.mark.skipif(
    not kernel_available(), reason="NumPy not installed (repro[kernel] extra)"
)

_WORKLOADS: dict = {}
_BACKENDS: dict = {}


def _workload(scale_factor):
    if scale_factor not in _WORKLOADS:
        _WORKLOADS[scale_factor] = tpch_like_workload(
            scale_factor=scale_factor, violation_ratio=VIOLATION_RATIO, seed=7
        )
    return _WORKLOADS[scale_factor]


def _backend(scale_factor):
    if scale_factor not in _BACKENDS:
        _BACKENDS[scale_factor] = BACKEND_CLS.from_instance(
            _workload(scale_factor).instance
        )
    return _BACKENDS[scale_factor]


def _record(engine_name, scale_factor, seconds):
    record_point(TABLE, f"{engine_name} [{BACKEND_NAME}]", scale_factor, seconds)
    POINTS.setdefault(BACKEND_NAME, {}).setdefault(engine_name, {})[
        str(scale_factor)
    ] = seconds
    record_bench_json(
        "pushdown",
        {"backend": BACKEND_NAME, "points": POINTS, "speedups": SPEEDUPS},
    )


def _cold_detect(engine, scale_factor):
    """One cold detection; returns (seconds, violations)."""
    workload = _workload(scale_factor)
    if engine == "pushdown":
        instance = _backend(scale_factor).load_instance(workload.schema)
    else:
        instance = workload.instance.copy()
    started = time.perf_counter()
    violations = find_all_violations(instance, workload.constraints, engine=engine)
    return time.perf_counter() - started, violations


def _best(engine, scale_factor, rounds=ROUNDS):
    return min(_cold_detect(engine, scale_factor)[0] for _ in range(rounds))


@pytest.mark.parametrize("scale_factor", SIZES)
def test_parity(scale_factor):
    """All three engines return byte-identical violation sets."""
    _, pushdown = _cold_detect("pushdown", scale_factor)
    _, kernel = _cold_detect("auto", scale_factor)
    _, interpreted = _cold_detect("interpreted", scale_factor)
    assert pushdown
    assert pushdown == interpreted
    assert pushdown == kernel


@pytest.mark.parametrize("scale_factor", SIZES)
@pytest.mark.parametrize("engine", ["pushdown", "kernel", "interpreted"])
def test_cold_detect(benchmark, engine, scale_factor):
    if engine == "kernel" and not kernel_available():
        pytest.skip("NumPy not installed (repro[kernel] extra)")
    workload = _workload(scale_factor)
    benchmark.group = f"detect sf={scale_factor} [{BACKEND_NAME}]"

    def setup():
        if engine == "pushdown":
            instance = _backend(scale_factor).load_instance(workload.schema)
        else:
            instance = workload.instance.copy()
        return (instance,), {}

    result = benchmark.pedantic(
        lambda instance: find_all_violations(
            instance, workload.constraints, engine=engine
        ),
        setup=setup,
        rounds=ROUNDS,
        iterations=1,
    )
    assert result
    _record(engine, scale_factor, benchmark.stats.stats.mean)


@needs_kernel
def test_pushdown_speedup_gate(benchmark):
    """Pushdown vs kernel, cold, full constraint set at the largest scale.

    Full mode runs scale factor 50 (~380k tuples) and enforces the >=3x
    acceptance bar; quick mode only checks that pushdown actually wins.
    Warm repeat-detection is recorded as ``warm_ratio`` (informational:
    the kernel's cached snapshots win that regime by design).
    """
    workload = _workload(LARGEST)
    tuples = len(workload.instance)

    pushdown = _best("pushdown", LARGEST)
    kernel = _best("kernel", LARGEST)
    speedup = kernel / pushdown

    # Warm regime: same resident/bound instance detected repeatedly.
    bound = _backend(LARGEST).load_instance(workload.schema)
    cached = workload.instance.copy()
    find_all_violations(bound, workload.constraints, engine="pushdown")
    find_all_violations(cached, workload.constraints, engine="kernel")

    def best_warm(instance, engine):
        times = []
        for _ in range(ROUNDS):
            started = time.perf_counter()
            find_all_violations(instance, workload.constraints, engine=engine)
            times.append(time.perf_counter() - started)
        return min(times)

    warm_ratio = best_warm(cached, "kernel") / best_warm(bound, "pushdown")

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {"pushdown": pushdown, "kernel": kernel, "speedup": speedup}
    )
    record_point(TABLE, f"pushdown speedup [{BACKEND_NAME}]", LARGEST, speedup)
    SPEEDUPS.setdefault(BACKEND_NAME, {})[str(LARGEST)] = {
        "tuples": tuples,
        "violation_ratio": VIOLATION_RATIO,
        "pushdown_s": pushdown,
        "kernel_s": kernel,
        "speedup": speedup,
        "warm_ratio": warm_ratio,
    }
    record_bench_json(
        "pushdown",
        {"backend": BACKEND_NAME, "points": POINTS, "speedups": SPEEDUPS},
    )
    if quick_mode():
        assert speedup > 1.0
    else:
        assert tuples >= 300_000
        assert speedup >= 3.0
