"""Scale check: the paper's "large databases" claim, end to end.

The paper's motivation for the modified greedy algorithm is databases
with "one million or more tuples" where O(n²) scans are hopeless.  This
bench runs the complete pipeline (violation detection, MWSCP reduction,
modified greedy, repair construction, verification) on a Client/Buy
database of ~150 k tuples and records the per-phase wall-clock - the
solver phase stays a small fraction of the (linear) detection/reduction
phases, which is exactly the regime Proposition 3.7 promises.
"""

from __future__ import annotations

from repro import repair_database
from repro.workloads import client_buy_workload

from conftest import bench_sizes, record_point

N_CLIENTS = bench_sizes(50_000, quick=5_000)
MIN_TUPLES = bench_sizes(120_000, quick=12_000)
MIN_VIOLATIONS = bench_sizes(5_000, quick=500)

TABLE = "Scale: full pipeline phases at ~150k tuples (seconds)"


def test_large_database_end_to_end(benchmark):
    workload = client_buy_workload(N_CLIENTS, inconsistency_ratio=0.30, seed=0)
    n_tuples = len(workload.instance)
    assert n_tuples > MIN_TUPLES

    benchmark.group = "scale"
    result = benchmark.pedantic(
        lambda: repair_database(
            workload.instance,
            workload.constraints,
            algorithm="modified-greedy",
            verify=True,
        ),
        rounds=1,
        iterations=1,
    )
    assert result.verified
    assert result.violations_before > MIN_VIOLATIONS
    for phase, seconds in result.elapsed_seconds.items():
        record_point(TABLE, phase, n_tuples, seconds)
    record_point(TABLE, "violations", n_tuples, float(result.violations_before))
    # the solver is not the bottleneck at scale: detection/build dominate.
    assert result.elapsed_seconds["solve"] < (
        result.elapsed_seconds["detect"] + result.elapsed_seconds["build"]
    )
