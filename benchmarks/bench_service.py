"""Repair-as-a-service: warm artifact-cache speedup on repeat jobs.

N tenants repairing the same (schema, constraints, data) through the
:class:`~repro.service.runtime.RepairService` should pay for compilation
and violation detection once: job 0 populates the
:class:`~repro.service.cache.ArtifactCache` (compiled plan + lint +
detected violations) and every repeat job reuses them, leaving only the
set-cover solve and apply inside the job.

The benchmark times the same job two ways on the TPC-H-like workload:

* **cold** - every job runs in a fresh service (empty cache), so it
  compiles and detects for itself; and
* **warm** - one long-lived service, job 0 warms the cache, then the
  timed repeat jobs hit it.

Every job's result must be byte-identical to a direct serial
``repair_database`` call (the service's determinism contract), and the
**warm repeat speedup** is the committed acceptance ratchet
(``speedups.warm_repeat_speedup`` in ``BENCH_service.json``, diffed by
CI via ``compare_snapshots.py``).  Jobs are timed one at a time
(submit -> result) so queue wait never pollutes the samples.
"""

from __future__ import annotations

import asyncio
import time

from repro import repair_database
from repro.service import RepairService
from repro.workloads import tpch_like_workload

from conftest import bench_sizes, quick_mode, record_bench_json, record_point

TABLE = "Repair service: per-job latency (seconds)"
QUICK = quick_mode()

SCALE = bench_sizes(2.0, quick=1.0)
REPEATS = bench_sizes(5, quick=3)
SEED = 7
VIOLATION_RATIO = 0.01


async def _timed_job(service, workload):
    """Submit one job, await its result; returns (seconds, result).

    ``verify=False``: the verification audit is its own full O(|D|)
    detection pass inside every job, cold or warm alike - leaving it on
    would mask exactly the detection cost the cache removes.  Parity
    with a *verified* serial reference is asserted separately.
    """
    started = time.perf_counter()
    view = await service.submit(
        workload.instance, tuple(workload.constraints), verify=False
    )
    result = await service.result(view.id)
    return time.perf_counter() - started, result


def _cold_samples(workload, repeats):
    """Each job in its own fresh service: an always-cold cache."""

    async def scenario():
        samples = []
        for _ in range(repeats):
            async with RepairService(workers=1) as service:
                seconds, result = await _timed_job(service, workload)
                samples.append((seconds, result))
        return samples

    return asyncio.run(scenario())

def _warm_samples(workload, repeats):
    """One service; job 0 warms the cache, the timed repeats reuse it."""

    async def scenario():
        async with RepairService(workers=1) as service:
            _, warmup_result = await _timed_job(service, workload)
            samples = [await _timed_job(service, workload) for _ in range(repeats)]
            stats = service.cache.stats()
        return warmup_result, samples, stats

    return asyncio.run(scenario())


def test_warm_cache_accelerates_repeat_jobs():
    workload = tpch_like_workload(
        SCALE, violation_ratio=VIOLATION_RATIO, seed=SEED
    )
    reference = repair_database(workload.instance, workload.constraints)
    assert reference.verified

    cold = _cold_samples(workload, REPEATS)
    warmup_result, warm, stats = _warm_samples(workload, REPEATS)

    # Determinism first: every job, cold or warm, equals the serial call.
    for result in [warmup_result] + [r for _, r in cold] + [r for _, r in warm]:
        assert result.changes == reference.changes
        assert result.cover_weight == reference.cover_weight

    # Every timed warm job hit the cache for both plan and violations.
    assert stats["misses"] == 2
    assert stats["hits"] >= 2 * REPEATS

    cold_mean = sum(s for s, _ in cold) / len(cold)
    warm_mean = sum(s for s, _ in warm) / len(warm)
    speedup = cold_mean / warm_mean if warm_mean else 0.0
    n_tuples = len(workload.instance)
    record_point(TABLE, "cold", n_tuples, cold_mean)
    record_point(TABLE, "warm", n_tuples, warm_mean)

    record_bench_json(
        "service",
        {
            "scale": {
                str(SCALE): {
                    "n_tuples": n_tuples,
                    "repeats": REPEATS,
                    "cold_mean_seconds": cold_mean,
                    "warm_mean_seconds": warm_mean,
                    "cache": stats,
                    "parity": True,
                }
            },
            "workload": {
                "name": "tpch-like",
                "quick": QUICK,
                "seed": SEED,
                "violation_ratio": VIOLATION_RATIO,
            },
            # The acceptance ratchet: a warm cache must keep beating a
            # cold compile+detect per job (both sides single-threaded,
            # so the ratio is a property of the cache, not the runner).
            "speedups": {"warm_repeat_speedup": speedup},
        },
    )
    assert speedup >= 1.5, (
        f"warm repeat jobs only {speedup:.2f}x over cold jobs "
        f"(need >= 1.5x for the cache to pay for itself)"
    )
