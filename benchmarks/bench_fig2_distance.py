"""Figure 2 - Distance Approximation.

The paper compares the quality (total cover weight = repair distance
approximation) of the greedy and layer algorithms on random Client/Buy
databases with ~30% of tuples involved in inconsistencies, three random
databases per size, averaged.  The headline: despite the layer algorithm's
better worst-case factor, *greedy produces better approximations in
practice*.

The modified variants compute identical covers (same approximation), so -
exactly as the paper notes - only greedy and layer appear here.

Two value regimes are reported:

* the default wide-spread generator, where candidate fixes rarely tie and
  both algorithms usually find the same cover (ratio 1.00);
* a tight-spread generator (ages 14-17, credit 51-54, prices 26-29) where
  effective weights tie frequently; the layer algorithm then commits
  redundant zero-residual sets and its covers are measurably heavier -
  the gap Figure 2 plots.

Shape assertions: greedy <= layer at every point, strictly better in the
tight regime; both are lower-bounded by the exact optimum on the anchor
instance.
"""

from __future__ import annotations

import statistics

import pytest

from repro.setcover import exact_cover, greedy_cover, layer_cover

from conftest import bench_sizes, clientbuy_problem, record_point

SIZES = bench_sizes([50, 100, 200, 400, 800], quick=[50, 100, 200])
SEEDS = [0, 1, 2]                  # "3 random databases ... averaged"
TABLE_WIDE = "Figure 2: avg cover weight, wide value spread (3 seeds)"
TABLE_TIGHT = "Figure 2: avg cover weight, tight value spread (3 seeds)"


def _covers(solver, n_clients: int, tight: bool):
    return [
        solver(clientbuy_problem(n_clients, seed, tight_values=tight).setcover)
        for seed in SEEDS
    ]


@pytest.mark.parametrize("tight", [False, True], ids=["wide", "tight"])
@pytest.mark.parametrize("n_clients", SIZES)
def test_fig2_greedy_weight(benchmark, n_clients, tight):
    benchmark.group = f"fig2 quality ({'tight' if tight else 'wide'})"
    covers = benchmark.pedantic(
        lambda: _covers(greedy_cover, n_clients, tight), rounds=1, iterations=1
    )
    average = statistics.mean(c.weight for c in covers)
    record_point(TABLE_TIGHT if tight else TABLE_WIDE, "greedy", n_clients, average)
    benchmark.extra_info["avg_cover_weight"] = average


@pytest.mark.parametrize("tight", [False, True], ids=["wide", "tight"])
@pytest.mark.parametrize("n_clients", SIZES)
def test_fig2_layer_weight(benchmark, n_clients, tight):
    benchmark.group = f"fig2 quality ({'tight' if tight else 'wide'})"
    covers = benchmark.pedantic(
        lambda: _covers(layer_cover, n_clients, tight), rounds=1, iterations=1
    )
    average = statistics.mean(c.weight for c in covers)
    table = TABLE_TIGHT if tight else TABLE_WIDE
    record_point(table, "layer", n_clients, average)
    benchmark.extra_info["avg_cover_weight"] = average

    # The paper's Figure-2 shape: greedy approximates at least as well.
    greedy_average = statistics.mean(
        c.weight for c in _covers(greedy_cover, n_clients, tight)
    )
    assert greedy_average <= average + 1e-9
    record_point(table, "layer/greedy", n_clients, average / greedy_average)


@pytest.mark.parametrize("n_clients", SIZES)
def test_fig2_pruned_layer(benchmark, n_clients):
    """Extension: one redundancy-pruning sweep after the layer algorithm.

    The layer algorithm commits whole zero-residual batches, which leaves
    redundant sets in the cover; `minimize_cover` removes them in one
    linear sweep.  Recorded alongside Figure 2's series because the effect
    is striking: pruned layer covers undercut even greedy's on this
    workload.
    """
    from repro.setcover.solvers import layer_pruned_cover

    import statistics as st

    benchmark.group = "fig2 quality (tight)"
    covers = benchmark.pedantic(
        lambda: _covers(layer_pruned_cover, n_clients, True),
        rounds=1,
        iterations=1,
    )
    average = st.mean(c.weight for c in covers)
    record_point(TABLE_TIGHT, "layer+prune", n_clients, average)
    greedy_average = st.mean(
        c.weight for c in _covers(greedy_cover, n_clients, True)
    )
    assert average <= greedy_average + 1e-9


def test_fig2_gap_appears_in_tight_regime(benchmark):
    """Greedy is strictly better than layer somewhere in the tight sweep."""
    def gaps():
        result = []
        for n_clients in SIZES:
            greedy = statistics.mean(
                c.weight for c in _covers(greedy_cover, n_clients, True)
            )
            layer = statistics.mean(
                c.weight for c in _covers(layer_cover, n_clients, True)
            )
            result.append(layer - greedy)
        return result

    differences = benchmark.pedantic(gaps, rounds=1, iterations=1)
    assert all(d >= -1e-9 for d in differences)
    assert max(differences) > 0, "expected layer to lose strictly somewhere"


def test_fig2_exact_anchor(benchmark):
    """True approximation ratios on a small instance (|U| <= 64)."""
    n_clients = 15
    problem = clientbuy_problem(n_clients, seed=0, tight_values=True)
    assert problem.setcover.n_elements <= 64
    optimal = benchmark.pedantic(
        lambda: exact_cover(problem.setcover), rounds=1, iterations=1
    )
    greedy = greedy_cover(problem.setcover)
    layer = layer_cover(problem.setcover)
    assert optimal.weight <= greedy.weight + 1e-9
    assert optimal.weight <= layer.weight + 1e-9
    anchor = "Figure 2 anchor: ratio vs exact optimum (n=15, tight)"
    record_point(anchor, "greedy/opt", n_clients, greedy.weight / optimal.weight)
    record_point(anchor, "layer/opt", n_clients, layer.weight / optimal.weight)
