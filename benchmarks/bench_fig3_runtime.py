"""Figure 3 - Running Time of the MWSCP approximation algorithms.

The paper: "we only considered the time of the MWSCP solver component".
Problems are therefore prebuilt (and cached); the timed region is exactly
one solver call.  Four series, one per algorithm, over growing Client/Buy
databases; the modified variants additionally run at sizes where the plain
ones would dominate the harness runtime.

Expected shape (paper's Figure 3): the priority-queue versions beat their
plain counterparts as size grows, and modified greedy is the fastest of
the four; greedy is faster than both layer variants.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.runtime import ExecutionPolicy
from repro.setcover import (
    greedy_cover,
    layer_cover,
    modified_greedy_cover,
    modified_layer_cover,
)

from conftest import (
    bench_sizes,
    clientbuy_problem,
    quick_mode,
    record_bench_json,
    record_point,
    trace_mode,
)

QUICK = quick_mode()
TRACE = trace_mode()
SIZES = bench_sizes([250, 500, 1000, 2000], quick=[250, 500])
LARGE_SIZES = bench_sizes([4000, 8000], quick=[1000])   # modified variants only
TABLE = "Figure 3: solver runtime (seconds, single run)"

ALGORITHMS = {
    "greedy": greedy_cover,
    "modified-greedy": modified_greedy_cover,
    "layer": layer_cover,
    "modified-layer": modified_layer_cover,
}


@pytest.mark.parametrize("n_clients", SIZES)
@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
def test_fig3_solver_runtime(benchmark, algorithm, n_clients):
    problem = clientbuy_problem(n_clients, seed=0)
    solver = ALGORITHMS[algorithm]
    benchmark.group = f"fig3 n={n_clients}"
    cover = benchmark.pedantic(
        lambda: solver(problem.setcover), rounds=3, iterations=1
    )
    assert cover.weight > 0
    record_point(TABLE, algorithm, n_clients, benchmark.stats.stats.mean)
    benchmark.extra_info["sets"] = len(problem.setcover.sets)
    benchmark.extra_info["elements"] = problem.setcover.n_elements


@pytest.mark.parametrize("n_clients", LARGE_SIZES)
@pytest.mark.parametrize("algorithm", ["modified-greedy", "modified-layer"])
def test_fig3_modified_at_scale(benchmark, algorithm, n_clients):
    problem = clientbuy_problem(n_clients, seed=0)
    solver = ALGORITHMS[algorithm]
    benchmark.group = f"fig3 n={n_clients}"
    cover = benchmark.pedantic(
        lambda: solver(problem.setcover), rounds=3, iterations=1
    )
    assert cover.weight > 0
    record_point(TABLE, algorithm, n_clients, benchmark.stats.stats.mean)


@pytest.mark.skipif(
    QUICK, reason="who-wins margins need the full sizes, not the CI smoke run"
)
def test_fig3_shape_assertions(benchmark):
    """The who-wins ordering of Figure 3 at the largest common size.

    Timed by hand (not statistically) to keep the harness fast; the
    pytest-benchmark tables above carry the real measurements.
    """
    import time

    problem = clientbuy_problem(SIZES[-1], seed=0)

    def measure(solver, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            solver(problem.setcover)
            best = min(best, time.perf_counter() - started)
        return best

    timings = {name: measure(solver) for name, solver in ALGORITHMS.items()}
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info.update(timings)

    # The priority queue accelerates both base algorithms, by a widening
    # margin - the paper's central claim.
    assert timings["modified-greedy"] < timings["greedy"] / 4
    assert timings["modified-layer"] < timings["layer"]
    # Both modified variants beat both plain variants.
    slowest_modified = max(
        timings["modified-greedy"], timings["modified-layer"]
    )
    assert slowest_modified < min(timings["greedy"], timings["layer"])
    # Deviation from the paper (documented in EXPERIMENTS.md): our plain
    # layer retires whole batches of zero-residual sets per pass (22
    # layers vs greedy's 635 iterations at this size), so - unlike the
    # paper's C++ implementation - plain layer outruns plain greedy here.
    # The modified-greedy-is-fastest headline is asserted statistically by
    # the pytest-benchmark groups above rather than on one sample.


# -- parallel runtime: serial vs process pool, end to end ---------------------

PARALLEL_CLIENTS = bench_sizes(4_000, quick=2_000)   # total tuples ~= 3x clients
PARALLEL_WORKERS = 4


def test_parallel_engine_serial_vs_process(benchmark):
    """End-to-end repair wall clock: serial pipeline vs process pool.

    A multi-component Client/Buy instance (every inconsistent client is
    its own connected component) is repaired twice through
    ``repair_database``; the per-stage timings from
    ``RepairResult.elapsed_seconds`` and the end-to-end speedup land in
    ``BENCH_parallel.json``.  Correctness is asserted unconditionally:
    both paths must produce the identical repair.  The speedup itself is
    only asserted when ``REPRO_BENCH_ENFORCE_SPEEDUP`` is set, because it
    is a property of the runner (a single-core container cannot speed
    anything up) - the JSON artifact is what tracks the trajectory.
    """
    from repro import repair_database
    from repro.workloads import client_buy_workload

    workload = client_buy_workload(
        PARALLEL_CLIENTS, inconsistency_ratio=0.30, seed=0
    )
    n_tuples = len(workload.instance)
    assert n_tuples >= 5_000

    def run(parallel):
        started = time.perf_counter()
        result = repair_database(
            workload.instance,
            workload.constraints,
            algorithm="modified-greedy",
            parallel=parallel,
            trace=TRACE,
        )
        return result, time.perf_counter() - started

    def span_breakdown(result):
        """Per-span wall totals from the recorded trace (trace mode only)."""
        if result.trace is None:
            return None
        from repro.obs import summarize_trace

        return [
            {
                "span": row["name"],
                "count": row["count"],
                "wall_seconds": row["wall_seconds"],
                "share": row["share"],
            }
            for row in summarize_trace(result.trace)
        ]

    # 'serial' here is the decomposed pipeline on one worker - the exact
    # computation the pool distributes, so the comparison isolates the
    # runtime and the results must match byte for byte.
    serial_result, serial_seconds = run("serial")
    parallel_result, parallel_seconds = benchmark.pedantic(
        lambda: run(ExecutionPolicy(backend="process", max_workers=PARALLEL_WORKERS)),
        rounds=1,
        iterations=1,
    )

    assert parallel_result.changes == serial_result.changes
    assert parallel_result.cover_weight == serial_result.cover_weight
    assert parallel_result.repaired == serial_result.repaired

    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    record_bench_json(
        "parallel",
        {
            "workload": {
                "name": "clientbuy",
                "n_clients": PARALLEL_CLIENTS,
                "n_tuples": n_tuples,
                "quick": QUICK,
            },
            "workers": PARALLEL_WORKERS,
            "serial": {
                "total_seconds": serial_seconds,
                "stages": dict(serial_result.elapsed_seconds),
                **(
                    {"spans": span_breakdown(serial_result)} if TRACE else {}
                ),
            },
            "process": {
                "total_seconds": parallel_seconds,
                "stages": dict(parallel_result.elapsed_seconds),
                "solver_stats": {
                    k: v
                    for k, v in parallel_result.solver_stats.items()
                    if isinstance(v, (int, float, str))
                },
                **(
                    {"spans": span_breakdown(parallel_result)} if TRACE else {}
                ),
            },
            "speedup": speedup,
            "traced": TRACE,
        },
    )
    benchmark.extra_info["speedup"] = speedup
    if os.environ.get("REPRO_BENCH_ENFORCE_SPEEDUP"):
        assert speedup >= 1.5, f"expected >= 1.5x, got {speedup:.2f}x"
