"""Figure 3 - Running Time of the MWSCP approximation algorithms.

The paper: "we only considered the time of the MWSCP solver component".
Problems are therefore prebuilt (and cached); the timed region is exactly
one solver call.  Four series, one per algorithm, over growing Client/Buy
databases; the modified variants additionally run at sizes where the plain
ones would dominate the harness runtime.

Expected shape (paper's Figure 3): the priority-queue versions beat their
plain counterparts as size grows, and modified greedy is the fastest of
the four; greedy is faster than both layer variants.
"""

from __future__ import annotations

import pytest

from repro.setcover import (
    greedy_cover,
    layer_cover,
    modified_greedy_cover,
    modified_layer_cover,
)

from conftest import clientbuy_problem, record_point

SIZES = [250, 500, 1000, 2000]
LARGE_SIZES = [4000, 8000]        # modified variants only
TABLE = "Figure 3: solver runtime (seconds, single run)"

ALGORITHMS = {
    "greedy": greedy_cover,
    "modified-greedy": modified_greedy_cover,
    "layer": layer_cover,
    "modified-layer": modified_layer_cover,
}


@pytest.mark.parametrize("n_clients", SIZES)
@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
def test_fig3_solver_runtime(benchmark, algorithm, n_clients):
    problem = clientbuy_problem(n_clients, seed=0)
    solver = ALGORITHMS[algorithm]
    benchmark.group = f"fig3 n={n_clients}"
    cover = benchmark.pedantic(
        lambda: solver(problem.setcover), rounds=3, iterations=1
    )
    assert cover.weight > 0
    record_point(TABLE, algorithm, n_clients, benchmark.stats.stats.mean)
    benchmark.extra_info["sets"] = len(problem.setcover.sets)
    benchmark.extra_info["elements"] = problem.setcover.n_elements


@pytest.mark.parametrize("n_clients", LARGE_SIZES)
@pytest.mark.parametrize("algorithm", ["modified-greedy", "modified-layer"])
def test_fig3_modified_at_scale(benchmark, algorithm, n_clients):
    problem = clientbuy_problem(n_clients, seed=0)
    solver = ALGORITHMS[algorithm]
    benchmark.group = f"fig3 n={n_clients}"
    cover = benchmark.pedantic(
        lambda: solver(problem.setcover), rounds=3, iterations=1
    )
    assert cover.weight > 0
    record_point(TABLE, algorithm, n_clients, benchmark.stats.stats.mean)


def test_fig3_shape_assertions(benchmark):
    """The who-wins ordering of Figure 3 at the largest common size.

    Timed by hand (not statistically) to keep the harness fast; the
    pytest-benchmark tables above carry the real measurements.
    """
    import time

    problem = clientbuy_problem(SIZES[-1], seed=0)

    def measure(solver, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            solver(problem.setcover)
            best = min(best, time.perf_counter() - started)
        return best

    timings = {name: measure(solver) for name, solver in ALGORITHMS.items()}
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info.update(timings)

    # The priority queue accelerates both base algorithms, by a widening
    # margin - the paper's central claim.
    assert timings["modified-greedy"] < timings["greedy"] / 4
    assert timings["modified-layer"] < timings["layer"]
    # Both modified variants beat both plain variants.
    slowest_modified = max(
        timings["modified-greedy"], timings["modified-layer"]
    )
    assert slowest_modified < min(timings["greedy"], timings["layer"])
    # Deviation from the paper (documented in EXPERIMENTS.md): our plain
    # layer retires whole batches of zero-residual sets per pass (22
    # layers vs greedy's 635 iterations at this size), so - unlike the
    # paper's C++ implementation - plain layer outruns plain greedy here.
    # The modified-greedy-is-fastest headline is asserted statistically by
    # the pytest-benchmark groups above rather than on one sample.
