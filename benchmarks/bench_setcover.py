"""Set-cover core scale benchmark: flat CSR/bitset engine vs object engine.

The flat engine (:mod:`repro.setcover.flat`) re-hosts the paper's solvers
on flat incidence arrays with lazy-decrease queues; this bench measures
what that buys at scale and **ratchets** it:

* a synthetic *blocks* family (disjoint cheap block sets + per-element
  singletons + block-straddling decoys) whose greedy run is
  O(|U|²/B) on the object engine but near-linear in incidence on the
  flat one - sized up to 1M universe elements in full mode;
* the workload-derived Client/Buy MWSCP instance (the paper's own
  reduction output), where component structure rather than raw size
  dominates;
* a speedup gate: at the largest size both engines run, flat greedy must
  be >=3x faster than object greedy (the acceptance ratchet; quick mode
  enforces it too).

Artifacts: ``BENCH_setcover.json`` with per-engine mean seconds, the
incidence-build cost per size (``build_seconds`` is *not* part of
``Cover.stats`` - stats stay run-deterministic), and the headline
flat-vs-object speedups that ``compare_snapshots.py`` guards in CI.
"""

from __future__ import annotations

import time

import pytest

from repro.setcover import SetCoverInstance, get_solver, strip_engine_stats

from conftest import (
    bench_sizes,
    clientbuy_problem,
    quick_mode,
    record_bench_json,
    record_point,
)

TABLE = "Set-cover engines (seconds, mean of 3)"
QUICK = quick_mode()

#: Universe sizes for the synthetic family.  The object greedy is
#: quadratic-ish here, so it is only timed up to OBJECT_CUTOFF; flat-only
#: sizes in full mode reach the million-element target.
SIZES = bench_sizes([20_000, 100_000, 1_000_000], quick=[2_000, 10_000])
OBJECT_CUTOFF = bench_sizes(20_000, quick=10_000)
GATE_SIZE = max(s for s in SIZES if s <= OBJECT_CUTOFF)
WORKLOAD_CLIENTS = bench_sizes(3_000, quick=500)
BLOCK = 10

POINTS: dict = {}
BUILDS: dict = {}
SPEEDUPS: dict = {}

_INSTANCES: dict = {}


def blocks_instance(n_elements: int, block: int = BLOCK) -> SetCoverInstance:
    """The synthetic *blocks* MWSCP family (deterministic by size).

    Per block of ``block`` consecutive elements: one cheap block set
    (effective weight 0.5), one singleton per element (1.0), and one
    straddling decoy spanning two neighbouring blocks (0.9).  Greedy
    selects exactly the block sets, so iterations = |U|/block while the
    object engine rescans ~|U| live sets per iteration - the regime the
    flat engine's lazy queue collapses to near-linear.
    """
    if n_elements not in _INSTANCES:
        n_blocks = n_elements // block
        collections: list = []
        for b in range(n_blocks):
            base = b * block
            collections.append((0.5 * block, tuple(range(base, base + block))))
        for e in range(n_elements):
            collections.append((1.0, (e,)))
        half = block // 2
        for b in range(n_blocks - 1):
            mid = b * block + half
            collections.append((0.9 * block, tuple(range(mid, mid + block))))
        _INSTANCES[n_elements] = SetCoverInstance.from_collections(
            n_elements, collections
        )
    return _INSTANCES[n_elements]


def _record(family: str, engine_name: str, size: int, seconds: float) -> None:
    record_point(TABLE, f"{family} {engine_name}", size, seconds)
    POINTS.setdefault(family, {}).setdefault(engine_name, {})[str(size)] = seconds
    record_bench_json(
        "setcover",
        {
            "quick": QUICK,
            "block": BLOCK,
            "points": POINTS,
            "builds": BUILDS,
            "speedups": SPEEDUPS,
        },
    )


def _warm_flat(instance: SetCoverInstance, size_key: str) -> None:
    """Build the CSR view outside the timed region and record its cost."""
    started = time.perf_counter()
    view = instance.flat()
    first_use = time.perf_counter() - started
    BUILDS.setdefault(size_key, {}).update(
        {
            "nnz": view.nnz,
            "build_seconds": view.build_seconds,
            "first_use_seconds": first_use,
            "accelerated": view.accelerated,
        }
    )


@pytest.mark.parametrize("algorithm", ["greedy", "modified-greedy"])
@pytest.mark.parametrize("n_elements", SIZES)
def test_flat_blocks(benchmark, algorithm, n_elements):
    instance = blocks_instance(n_elements)
    _warm_flat(instance, str(n_elements))
    solver = get_solver(algorithm, engine="flat")
    benchmark.group = f"setcover blocks n={n_elements}"
    cover = benchmark.pedantic(lambda: solver(instance), rounds=3, iterations=1)
    assert len(cover.selected) == n_elements // BLOCK
    assert cover.stats["solver_engine"] == "flat"
    _record("blocks", f"flat-{algorithm}", n_elements, benchmark.stats.stats.mean)


@pytest.mark.parametrize("algorithm", ["greedy", "modified-greedy"])
@pytest.mark.parametrize(
    "n_elements", [s for s in SIZES if s <= OBJECT_CUTOFF]
)
def test_object_blocks(benchmark, algorithm, n_elements):
    instance = blocks_instance(n_elements)
    solver = get_solver(algorithm, engine="object")
    benchmark.group = f"setcover blocks n={n_elements}"
    cover = benchmark.pedantic(lambda: solver(instance), rounds=3, iterations=1)
    assert len(cover.selected) == n_elements // BLOCK
    _record("blocks", f"object-{algorithm}", n_elements, benchmark.stats.stats.mean)


@pytest.mark.parametrize("algorithm", ["greedy", "modified-greedy", "layer"])
def test_workload_engines(benchmark, algorithm):
    """Workload-derived MWSCP (Client/Buy reduction), flat vs object."""
    problem = clientbuy_problem(WORKLOAD_CLIENTS)
    instance = problem.setcover
    _warm_flat(instance, f"clientbuy-{WORKLOAD_CLIENTS}")
    flat_solver = get_solver(algorithm, engine="flat")
    object_solver = get_solver(algorithm, engine="object")
    benchmark.group = f"setcover clientbuy n={WORKLOAD_CLIENTS}"
    flat_cover = benchmark.pedantic(
        lambda: flat_solver(instance), rounds=3, iterations=1
    )
    object_cover = object_solver(instance)
    # The funnel, on real reduction output: byte-identical covers.
    assert flat_cover.selected == object_cover.selected
    assert flat_cover.weight == object_cover.weight
    assert strip_engine_stats(flat_cover.stats) == dict(object_cover.stats)
    _record(
        "clientbuy",
        f"flat-{algorithm}",
        WORKLOAD_CLIENTS,
        benchmark.stats.stats.mean,
    )


def test_flat_speedup_gate(benchmark):
    """The perf ratchet: flat >=3x object greedy at the gate size.

    Best-of-3 for both engines, CSR build excluded (it is a once-per-
    instance cost, recorded separately in ``builds``); the committed
    ``BENCH_setcover.json`` snapshot of this ratio is what CI diffs
    against fresh runs.
    """
    instance = blocks_instance(GATE_SIZE)
    _warm_flat(instance, str(GATE_SIZE))

    def best(algorithm, engine):
        solver = get_solver(algorithm, engine=engine)
        times = []
        for _ in range(3):
            started = time.perf_counter()
            solver(instance)
            times.append(time.perf_counter() - started)
        return min(times)

    gate: dict = {"elements": GATE_SIZE, "nnz": instance.flat().nnz}
    for algorithm in ("greedy", "modified-greedy"):
        object_seconds = best(algorithm, "object")
        flat_seconds = best(algorithm, "flat")
        speedup = object_seconds / flat_seconds if flat_seconds else 0.0
        gate[algorithm] = {
            "object_s": object_seconds,
            "flat_s": flat_seconds,
            "speedup": speedup,
        }
        record_point(TABLE, f"blocks {algorithm} flat speedup", GATE_SIZE, speedup)
    SPEEDUPS[str(GATE_SIZE)] = gate
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info.update(gate)
    record_bench_json(
        "setcover",
        {
            "quick": QUICK,
            "block": BLOCK,
            "points": POINTS,
            "builds": BUILDS,
            "speedups": SPEEDUPS,
        },
    )
    # The ratchet proper: the acceptance bar holds even in quick mode.
    assert gate["greedy"]["speedup"] >= 3.0
