"""Ablation: violation detection - in-memory hash join vs sqlite SQL views.

Algorithm 2 retrieves violation sets with one SQL view per constraint; the
library also ships an in-memory detector with the same semantics.  This
ablation times both on identical Client/Buy databases (detection only - no
repair), validating that the two paths agree and quantifying their cost.
"""

from __future__ import annotations

import pytest

from repro.storage import SqliteBackend
from repro.violations import find_all_violations
from repro.workloads import client_buy_workload

from conftest import bench_sizes, record_point

SIZES = bench_sizes([500, 2000], quick=[500])
TABLE = "Ablation: violation detection backend (seconds)"

_WORKLOADS = {}
_SQLITE = {}


def _workload(n_clients):
    if n_clients not in _WORKLOADS:
        _WORKLOADS[n_clients] = client_buy_workload(
            n_clients, inconsistency_ratio=0.3, seed=0
        )
    return _WORKLOADS[n_clients]


def _sqlite(n_clients):
    if n_clients not in _SQLITE:
        _SQLITE[n_clients] = SqliteBackend.from_instance(
            _workload(n_clients).instance
        )
    return _SQLITE[n_clients]


@pytest.mark.parametrize("n_clients", SIZES)
def test_detect_in_memory(benchmark, n_clients):
    workload = _workload(n_clients)
    benchmark.group = f"detection n={n_clients}"
    violations = benchmark.pedantic(
        lambda: find_all_violations(workload.instance, workload.constraints),
        rounds=3,
        iterations=1,
    )
    assert violations
    record_point(TABLE, "in-memory join", n_clients, benchmark.stats.stats.mean)


@pytest.mark.parametrize("n_clients", SIZES)
def test_detect_sqlite_views(benchmark, n_clients):
    workload = _workload(n_clients)
    backend = _sqlite(n_clients)
    benchmark.group = f"detection n={n_clients}"
    violations = benchmark.pedantic(
        lambda: backend.find_violations(workload.schema, workload.constraints),
        rounds=3,
        iterations=1,
    )
    record_point(TABLE, "sqlite SQL views", n_clients, benchmark.stats.stats.mean)

    # both paths must find the same violation sets.
    in_memory = find_all_violations(workload.instance, workload.constraints)
    as_labels = lambda vs: {
        (v.constraint.name, frozenset(t.ref for t in v)) for v in vs
    }
    assert as_labels(violations) == as_labels(in_memory)
