"""Ablation: runtime vs degree of inconsistency (Propositions 3.5/3.7).

The complexity claims hinge on ``Deg(D, IC)``: bounded degree gives
O(n log n) for the modified greedy algorithm.  The census workload bounds
the degree by the household size; sweeping the household size at constant
total tuple count isolates the degree's effect on the solver.

Expected shape: modified-greedy runtime grows mildly with the degree (the
per-iteration touched-set work is O(degree)), staying near-linear in n.
"""

from __future__ import annotations

import pytest

from repro.setcover import modified_greedy_cover
from repro.violations.degree import degree_of_database

from conftest import bench_sizes, census_problem, record_point

TOTAL_PERSONS = 2400
HOUSEHOLD_SIZES = bench_sizes([2, 4, 8, 16], quick=[2, 4])
TABLE = "Ablation: modified-greedy runtime vs degree bound (census)"


@pytest.mark.parametrize("household_size", HOUSEHOLD_SIZES)
def test_degree_sweep(benchmark, household_size):
    n_households = TOTAL_PERSONS // household_size
    problem = census_problem(n_households, household_size, seed=0)
    degree = degree_of_database(problem.violations)
    assert degree <= household_size + 1       # the workload's guarantee

    benchmark.group = "degree sweep"
    cover = benchmark.pedantic(
        lambda: modified_greedy_cover(problem.setcover), rounds=3, iterations=1
    )
    assert cover.weight >= 0
    record_point(TABLE, "modified-greedy", household_size, benchmark.stats.stats.mean)
    record_point(TABLE, "measured degree", household_size, float(degree))
    benchmark.extra_info["degree"] = degree
    benchmark.extra_info["elements"] = problem.setcover.n_elements


def test_degree_scaling_in_n(benchmark):
    """At fixed degree, solver time should scale ~n log n (not n^2).

    Compare time(4x size) / time(x size): for n log n the ratio stays
    well under the ~16x a quadratic algorithm would show.
    """
    import time

    small = census_problem(300, 3, seed=1)
    large = census_problem(1200, 3, seed=1)

    def measure(problem, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            modified_greedy_cover(problem.setcover)
            best = min(best, time.perf_counter() - started)
        return best

    time_small = measure(small)
    time_large = measure(large)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info["time_small"] = time_small
    benchmark.extra_info["time_large"] = time_large
    ratio = time_large / max(time_small, 1e-9)
    record_point(
        "Ablation: modified-greedy scaling (4x input)", "time ratio", 4, ratio
    )
    assert ratio < 12.0, f"scaling looks superlinear beyond n log n: {ratio:.1f}x"
