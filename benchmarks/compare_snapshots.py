"""Diff committed ``BENCH_*.json`` snapshots against a fresh run.

The repo commits quick-mode benchmark snapshots under
``benchmarks/results/`` so the perf trajectory lives in-tree; CI
re-runs the same quick-mode benches into a scratch directory and calls

    python benchmarks/compare_snapshots.py \
        --committed benchmarks/results --fresh /tmp/bench-fresh

Raw seconds are machine-bound, so only the *speedup ratios* are gated:
every numeric leaf under a ``speedups`` section whose key path ends in
``speedup`` is compared, and the check fails when a fresh ratio drops
below ``(1 - tolerance)`` of the committed one (default tolerance 0.25,
i.e. fail on a >25% regression).  Snapshots missing on either side are
reported but never fail the check (a bench leg may be skipped when
optional deps are absent).

Exit codes: 0 = no regression, 1 = regression, 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def speedup_leaves(payload, path=()):
    """Yield ``(dotted.path, value)`` for numeric ``*speedup*`` leaves."""
    if isinstance(payload, dict):
        for key, value in sorted(payload.items()):
            yield from speedup_leaves(value, path + (str(key),))
    elif isinstance(payload, (int, float)) and not isinstance(payload, bool):
        if path and path[-1].endswith("speedup"):
            yield ".".join(path), float(payload)


def load_speedups(path: Path) -> dict[str, float]:
    payload = json.loads(path.read_text(encoding="utf-8"))
    return dict(speedup_leaves(payload.get("speedups", {})))


def compare_file(name: str, committed: Path, fresh: Path, tolerance: float):
    """Compare one snapshot pair; returns (lines, regressed)."""
    lines = [f"== {name} =="]
    regressed = False
    baseline = load_speedups(committed)
    current = load_speedups(fresh)
    if not baseline:
        lines.append("  no gated speedups in committed snapshot")
        return lines, regressed
    for key, committed_value in sorted(baseline.items()):
        fresh_value = current.get(key)
        if fresh_value is None:
            lines.append(f"  {key}: {committed_value:.2f}x -> missing (skipped)")
            continue
        floor = committed_value * (1.0 - tolerance)
        verdict = "ok" if fresh_value >= floor else "REGRESSION"
        regressed = regressed or fresh_value < floor
        lines.append(
            f"  {key}: {committed_value:.2f}x -> {fresh_value:.2f}x "
            f"(floor {floor:.2f}x) {verdict}"
        )
    return lines, regressed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate committed benchmark snapshots against a fresh run."
    )
    parser.add_argument(
        "--committed",
        default=str(Path(__file__).parent / "results"),
        help="directory with the committed BENCH_*.json snapshots",
    )
    parser.add_argument(
        "--fresh", required=True, help="directory with the fresh quick-mode run"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional drop of any speedup ratio (default 0.25)",
    )
    args = parser.parse_args(argv)
    committed_dir, fresh_dir = Path(args.committed), Path(args.fresh)
    if not committed_dir.is_dir():
        print(f"error: no committed snapshot dir {committed_dir}", file=sys.stderr)
        return 2
    if not fresh_dir.is_dir():
        print(f"error: no fresh results dir {fresh_dir}", file=sys.stderr)
        return 2

    regressed = False
    compared = 0
    for committed_path in sorted(committed_dir.glob("BENCH_*.json")):
        fresh_path = fresh_dir / committed_path.name
        if not fresh_path.exists():
            print(f"== {committed_path.name} ==\n  not in fresh run (skipped)")
            continue
        lines, bad = compare_file(
            committed_path.name, committed_path, fresh_path, args.tolerance
        )
        print("\n".join(lines))
        compared += 1
        regressed = regressed or bad
    if not compared:
        print("error: no snapshot pairs to compare", file=sys.stderr)
        return 2
    print("result: " + ("REGRESSION" if regressed else "ok"))
    return 1 if regressed else 0


if __name__ == "__main__":
    sys.exit(main())
