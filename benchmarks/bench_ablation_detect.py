"""Ablation: violation detection engines (interpreted vs columnar kernel).

The kernel engine compiles each denial into a columnar plan (vectorized
local masks, hash/sort equality joins, interval lookups for cross-atom
order comparisons) and executes it over cached NumPy snapshots; the
interpreted engine enumerates assignments tuple-at-a-time.  This bench
times ``I(D, ic)`` retrieval per constraint arity - the 2-atom join
``ic1`` and the single-atom ``ic2`` of the Client/Buy workload - for

* ``interpreted``     - the baseline enumerator,
* ``kernel``          - the columnar plan executor, serial,
* ``kernel+parallel`` - kernel workers fanned out per constraint
  (composes with the PR-1 thread pool; both constraints in one call).

Artifacts: ``BENCH_detect.json`` with per-engine mean seconds and the
headline kernel-vs-interpreted speedup per size (EXPERIMENTS.md quotes
it).  The speedup gate asserts the kernel wins by >=3x on the 2-atom
constraint at the full-mode sizes; quick mode only sanity-checks >1x.
"""

from __future__ import annotations

import time

import pytest

from repro.model.columnar import kernel_available, store_for
from repro.violations.detector import find_all_violations, find_violations
from repro.workloads import client_buy_workload

from conftest import bench_sizes, quick_mode, record_bench_json, record_point

TABLE = "Ablation: detection engines (seconds, mean of 3)"
SIZES = bench_sizes([5000, 20000], quick=[1000])
LARGEST = SIZES[-1]

#: accumulated across tests; record_bench_json merges by reference, so the
#: final BENCH_detect.json sees every point.
POINTS: dict = {}
SPEEDUPS: dict = {}

needs_kernel = pytest.mark.skipif(
    not kernel_available(), reason="NumPy not installed (repro[kernel] extra)"
)

_WORKLOADS: dict = {}


def _workload(n_clients):
    if n_clients not in _WORKLOADS:
        _WORKLOADS[n_clients] = client_buy_workload(
            n_clients, inconsistency_ratio=0.30, seed=7
        )
    return _WORKLOADS[n_clients]


def _record(constraint_name, engine_name, n_clients, seconds):
    record_point(TABLE, f"{constraint_name} {engine_name}", n_clients, seconds)
    POINTS.setdefault(constraint_name, {}).setdefault(engine_name, {})[
        str(n_clients)
    ] = seconds
    record_bench_json("detect", {"points": POINTS, "speedups": SPEEDUPS})


@pytest.mark.parametrize("n_clients", SIZES)
@pytest.mark.parametrize("ic_index", [0, 1], ids=["ic1-2atom", "ic2-1atom"])
def test_interpreted(benchmark, n_clients, ic_index):
    workload = _workload(n_clients)
    constraint = workload.constraints[ic_index]
    benchmark.group = f"detect {constraint.name} n={n_clients}"
    result = benchmark.pedantic(
        lambda: find_violations(workload.instance, constraint, engine="interpreted"),
        rounds=3,
        iterations=1,
    )
    assert result
    _record(constraint.name, "interpreted", n_clients, benchmark.stats.stats.mean)


@needs_kernel
@pytest.mark.parametrize("n_clients", SIZES)
@pytest.mark.parametrize("ic_index", [0, 1], ids=["ic1-2atom", "ic2-1atom"])
def test_kernel(benchmark, n_clients, ic_index):
    workload = _workload(n_clients)
    constraint = workload.constraints[ic_index]
    benchmark.group = f"detect {constraint.name} n={n_clients}"
    result = benchmark.pedantic(
        lambda: find_violations(workload.instance, constraint, engine="kernel"),
        rounds=3,
        iterations=1,
        warmup_rounds=1,   # populate the columnar snapshot cache
    )
    assert result
    _record(constraint.name, "kernel", n_clients, benchmark.stats.stats.mean)


@needs_kernel
@pytest.mark.parametrize("n_clients", SIZES)
def test_kernel_parallel(benchmark, n_clients):
    """Both constraints in one call, kernel workers on the thread pool."""
    workload = _workload(n_clients)
    benchmark.group = f"detect all n={n_clients}"
    result = benchmark.pedantic(
        lambda: find_all_violations(
            workload.instance, workload.constraints, executor="thread", engine="kernel"
        ),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert result
    _record("all", "kernel+parallel", n_clients, benchmark.stats.stats.mean)


@needs_kernel
def test_kernel_speedup_gate(benchmark):
    """Kernel vs interpreted, serial, on the 2-atom join at the largest size.

    Full mode runs 20k clients (~60k tuples) and enforces the >=3x
    acceptance bar; quick mode only checks the kernel actually wins.
    """
    workload = _workload(LARGEST)
    constraint = workload.constraints[0]          # ic1: Buy x Client join
    store_for(workload.instance)                  # warm snapshot path
    find_violations(workload.instance, constraint, engine="kernel")

    def best(engine):
        times = []
        for _ in range(3):
            started = time.perf_counter()
            find_violations(workload.instance, constraint, engine=engine)
            times.append(time.perf_counter() - started)
        return min(times)

    interpreted = best("interpreted")
    kernel = best("kernel")
    speedup = interpreted / kernel
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {"interpreted": interpreted, "kernel": kernel, "speedup": speedup}
    )
    tuples = len(workload.instance)
    record_point(TABLE, "ic1 kernel speedup", LARGEST, speedup)
    SPEEDUPS[str(LARGEST)] = {
        "constraint": constraint.name,
        "tuples": tuples,
        "interpreted_s": interpreted,
        "kernel_s": kernel,
        "speedup": speedup,
    }
    record_bench_json("detect", {"points": POINTS, "speedups": SPEEDUPS})
    if quick_mode():
        assert speedup > 1.0
    else:
        assert tuples >= 50_000
        assert speedup >= 3.0
