"""Ablations: optimality gap, LP anchoring, and ground-truth accuracy.

Three quality studies beyond the paper's Figure 2:

* **decomposed exact vs approximations** - repair MWSCP instances split
  into small connected components (one per inconsistent tuple cluster),
  so `exact-decomposed` computes *optimal* covers at sizes the monolithic
  branch-and-bound cannot touch; this yields the true optimality gap of
  greedy/layer on the paper's workload.
* **LP lower bound** - the fractional optimum certifies the gap at any
  size, and LP frequency rounding joins the comparison as a third
  approximation (same worst-case factor as layer).
* **ground-truth accuracy** - clean census → corrupt cells → repair →
  precision/recall/distance-recovered vs error magnitude.
"""

from __future__ import annotations

import pytest

from repro import repair_database
from repro.analysis import score_repair
from repro.setcover import (
    decompose,
    exact_decomposed_cover,
    greedy_cover,
    layer_cover,
)
from repro.setcover.lp import lp_lower_bound, lp_rounding_cover
from repro.workloads import census_workload, corrupt

from conftest import bench_sizes, clientbuy_problem, record_point

SIZES = bench_sizes([100, 400], quick=[100])
OFFSETS = bench_sizes([10, 50, 100], quick=[10, 50])

GAP_TABLE = "Ablation: optimality gap vs decomposed exact (tight values)"
LP_TABLE = "Ablation: cover weight vs LP lower bound (tight values)"
ACC_TABLE = "Ablation: ground-truth accuracy vs error magnitude (census)"


@pytest.mark.parametrize("n_clients", SIZES)
def test_optimality_gap(benchmark, n_clients):
    problem = clientbuy_problem(n_clients, seed=0, tight_values=True)
    components = decompose(problem.setcover)
    assert max(c.instance.n_elements for c in components) <= 64

    benchmark.group = "exact-decomposed"
    optimal = benchmark.pedantic(
        lambda: exact_decomposed_cover(problem.setcover), rounds=1, iterations=1
    )
    greedy = greedy_cover(problem.setcover)
    layer = layer_cover(problem.setcover)
    assert optimal.weight <= greedy.weight + 1e-9
    assert optimal.weight <= layer.weight + 1e-9
    record_point(GAP_TABLE, "exact", n_clients, optimal.weight)
    record_point(GAP_TABLE, "greedy/opt", n_clients, greedy.weight / optimal.weight)
    record_point(GAP_TABLE, "layer/opt", n_clients, layer.weight / optimal.weight)
    benchmark.extra_info["components"] = len(components)


@pytest.mark.parametrize("n_clients", SIZES)
def test_lp_bound_anchor(benchmark, n_clients):
    problem = clientbuy_problem(n_clients, seed=0, tight_values=True)
    benchmark.group = "lp"
    bound = benchmark.pedantic(
        lambda: lp_lower_bound(problem.setcover), rounds=1, iterations=1
    )
    greedy = greedy_cover(problem.setcover)
    rounded = lp_rounding_cover(problem.setcover)
    optimal = exact_decomposed_cover(problem.setcover)
    assert bound <= optimal.weight + 1e-6
    record_point(LP_TABLE, "lp bound", n_clients, bound)
    record_point(LP_TABLE, "exact", n_clients, optimal.weight)
    record_point(LP_TABLE, "greedy", n_clients, greedy.weight)
    record_point(LP_TABLE, "lp-rounding", n_clients, rounded.weight)
    # on these clustered instances the LP is near-integral.
    assert optimal.weight <= 1.2 * bound + 1e-6


@pytest.mark.parametrize("max_offset", OFFSETS)
def test_ground_truth_accuracy(benchmark, max_offset):
    truth = census_workload(400, household_size=3, dirty_ratio=0.0, seed=1)
    corruption = corrupt(
        truth.instance,
        truth.constraints,
        cell_rate=0.05,
        max_offset=max_offset,
        seed=7,
    )
    benchmark.group = "accuracy"
    result = benchmark.pedantic(
        lambda: repair_database(corruption.dirty, truth.constraints),
        rounds=1,
        iterations=1,
    )
    score = score_repair(corruption, result)
    record_point(ACC_TABLE, "recall", max_offset, score.recall)
    record_point(ACC_TABLE, "precision", max_offset, score.precision)
    record_point(ACC_TABLE, "dist recovered", max_offset, score.distance_reduction)
    assert score.repaired_distance <= score.dirty_distance + 1e-9


def test_accuracy_recall_monotone(benchmark):
    """Recall grows with error magnitude (bigger errors cross the bounds)."""
    truth = census_workload(400, household_size=3, dirty_ratio=0.0, seed=1)

    def recalls():
        values = []
        for max_offset in (10, 100):
            corruption = corrupt(
                truth.instance,
                truth.constraints,
                cell_rate=0.05,
                max_offset=max_offset,
                seed=7,
            )
            result = repair_database(corruption.dirty, truth.constraints)
            values.append(score_repair(corruption, result).recall)
        return values

    small, large = benchmark.pedantic(recalls, rounds=1, iterations=1)
    assert large > small
