"""Unit tests for tuples and tuple references."""

import pytest

from repro import Attribute, InstanceError, Relation, Tuple, TupleRef


@pytest.fixture
def client():
    return Relation(
        "Client",
        [Attribute.hard("id"), Attribute.flexible("a"), Attribute.flexible("c")],
        key=["id"],
    )


@pytest.fixture
def buy():
    return Relation(
        "Buy",
        [Attribute.hard("id"), Attribute.hard("i"), Attribute.flexible("p")],
        key=["id", "i"],
    )


class TestTuple:
    def test_access_by_name(self, client):
        tup = Tuple(client, ("c1", 17, 60))
        assert tup["id"] == "c1"
        assert tup["a"] == 17
        assert tup["c"] == 60

    def test_get_with_default(self, client):
        tup = Tuple(client, ("c1", 17, 60))
        assert tup.get("a") == 17
        assert tup.get("missing", -1) == -1

    def test_key_single(self, client):
        assert Tuple(client, ("c1", 17, 60)).key == ("c1",)

    def test_key_composite(self, buy):
        assert Tuple(buy, ("c1", 3, 10)).key == ("c1", 3)

    def test_ref(self, buy):
        ref = Tuple(buy, ("c1", 3, 10)).ref
        assert ref == TupleRef("Buy", ("c1", 3))

    def test_as_dict(self, client):
        assert Tuple(client, ("c1", 17, 60)).as_dict() == {
            "id": "c1",
            "a": 17,
            "c": 60,
        }

    def test_arity_mismatch_rejected(self, client):
        with pytest.raises(InstanceError):
            Tuple(client, ("c1", 17))

    def test_flexible_attribute_must_be_int(self, client):
        with pytest.raises(InstanceError):
            Tuple(client, ("c1", 17.5, 60))

    def test_flexible_attribute_rejects_string(self, client):
        with pytest.raises(InstanceError):
            Tuple(client, ("c1", "17", 60))

    def test_hard_attribute_may_be_any_type(self, client):
        assert Tuple(client, (("compound", "key"), 17, 60))["id"] == (
            "compound",
            "key",
        )

    def test_replace_returns_new_tuple(self, client):
        tup = Tuple(client, ("c1", 17, 60))
        fixed = tup.replace(a=18)
        assert fixed["a"] == 18
        assert tup["a"] == 17
        assert fixed is not tup

    def test_replace_with_mapping(self, client):
        tup = Tuple(client, ("c1", 17, 60))
        fixed = tup.replace({"a": 18, "c": 50})
        assert (fixed["a"], fixed["c"]) == (18, 50)

    def test_replace_nothing_returns_self(self, client):
        tup = Tuple(client, ("c1", 17, 60))
        assert tup.replace() is tup

    def test_replace_key_attribute_rejected(self, client):
        with pytest.raises(InstanceError):
            Tuple(client, ("c1", 17, 60)).replace(id="c2")

    def test_changed_attributes(self, client):
        tup = Tuple(client, ("c1", 17, 60))
        assert tup.changed_attributes(tup.replace(a=18, c=40)) == ("a", "c")
        assert tup.changed_attributes(tup) == ()

    def test_changed_attributes_cross_relation_rejected(self, client, buy):
        with pytest.raises(InstanceError):
            Tuple(client, ("c1", 17, 60)).changed_attributes(
                Tuple(buy, ("c1", 0, 5))
            )

    def test_equality_and_hash(self, client):
        a = Tuple(client, ("c1", 17, 60))
        b = Tuple(client, ("c1", 17, 60))
        assert a == b
        assert hash(a) == hash(b)
        assert a != Tuple(client, ("c1", 18, 60))

    def test_iteration_and_len(self, client):
        tup = Tuple(client, ("c1", 17, 60))
        assert list(tup) == ["c1", 17, 60]
        assert len(tup) == 3

    def test_repr(self, client):
        assert repr(Tuple(client, ("c1", 17, 60))) == "Client('c1', 17, 60)"


class TestTupleRef:
    def test_equality_and_hash(self):
        assert TupleRef("R", (1, 2)) == TupleRef("R", (1, 2))
        assert hash(TupleRef("R", (1, 2))) == hash(TupleRef("R", (1, 2)))
        assert TupleRef("R", (1, 2)) != TupleRef("R", (1, 3))
        assert TupleRef("R", (1,)) != TupleRef("S", (1,))

    def test_ordering(self):
        assert TupleRef("A", (1,)) < TupleRef("B", (0,))
        assert TupleRef("A", (1,)) < TupleRef("A", (2,))

    def test_repr(self):
        assert "Client" in repr(TupleRef("Client", ("c1",)))

    def test_flat_sort_key_matches_sort_key_order(self):
        refs = [
            TupleRef("Buy", (10, 2)),
            TupleRef("Buy", (9, 1)),      # "10" < "9" as strings: flat must agree
            TupleRef("BuyX", (0,)),       # relation name extends another
            TupleRef("Client", ("c1",)),
            TupleRef("Client", (235,)),   # mixed key types within one relation
        ]
        by_sort_key = sorted(refs, key=lambda r: r.sort_key)
        by_flat = sorted(refs, key=lambda r: r.flat_sort_key)
        assert by_flat == by_sort_key

    def test_flat_sort_key_refuses_nul_values(self):
        ref = TupleRef("R", ("a\x00b",))
        assert ref.flat_sort_key is None
        assert ref.sort_key  # the robust form still works

    def test_caches_survive_pickling(self):
        import pickle

        ref = TupleRef("R", (1, 2))
        assert ref.flat_sort_key is not None
        clone = pickle.loads(pickle.dumps(ref))
        assert clone == ref
        assert clone.flat_sort_key == ref.flat_sort_key
        assert clone.sort_key == ref.sort_key
