"""Property-based tests for the relational model (hypothesis)."""

from __future__ import annotations

from hypothesis import assume, given, settings, strategies as st

from repro import (
    Attribute,
    DatabaseInstance,
    KeyViolationError,
    Relation,
    Schema,
)

SCHEMA = Schema(
    [
        Relation(
            "R",
            [Attribute.hard("k"), Attribute.flexible("x"), Attribute.hard("h")],
            key=["k"],
        )
    ]
)

rows_strategy = st.dictionaries(
    st.integers(0, 50),                                  # key
    st.tuples(st.integers(-100, 100), st.text(max_size=5)),   # (x, h)
    max_size=20,
)


def build(rows: dict) -> DatabaseInstance:
    return DatabaseInstance.from_rows(
        SCHEMA, {"R": [(k, x, h) for k, (x, h) in rows.items()]}
    )


@given(rows_strategy)
@settings(max_examples=100, deadline=None)
def test_instance_behaves_like_keyed_mapping(rows):
    instance = build(rows)
    assert len(instance) == len(rows)
    for key, (x, h) in rows.items():
        tup = instance.get("R", (key,))
        assert tup["x"] == x and tup["h"] == h
    assert instance.key_values("R") == {(k,) for k in rows}


@given(rows_strategy)
@settings(max_examples=100, deadline=None)
def test_duplicate_insert_rejected(rows):
    assume(rows)
    instance = build(rows)
    key = next(iter(rows))
    import pytest

    with pytest.raises(KeyViolationError):
        instance.insert_row("R", (key, 0, ""))


@given(rows_strategy, st.integers(-100, 100))
@settings(max_examples=100, deadline=None)
def test_replace_updates_exactly_one_row(rows, new_x):
    assume(rows)
    instance = build(rows)
    target = next(iter(rows))
    old = instance.get("R", (target,))
    instance.replace_tuple(old.replace(x=new_x))
    assert instance.get("R", (target,))["x"] == new_x
    for key, (x, h) in rows.items():
        if key != target:
            assert instance.get("R", (key,))["x"] == x
    assert len(instance) == len(rows)


@given(rows_strategy)
@settings(max_examples=100, deadline=None)
def test_copy_is_deep_for_structure(rows):
    instance = build(rows)
    clone = instance.copy()
    assert clone == instance
    for key in list(rows):
        clone.delete("R", (key,))
    assert len(instance) == len(rows)
    assert len(clone) == 0
    assert (clone == instance) == (len(rows) == 0)


@given(rows_strategy)
@settings(max_examples=100, deadline=None)
def test_delete_then_insert_roundtrip(rows):
    assume(rows)
    instance = build(rows)
    target = next(iter(rows))
    removed = instance.delete("R", (target,))
    assert len(instance) == len(rows) - 1
    instance.insert(removed)
    assert instance == build(rows)


@given(rows_strategy)
@settings(max_examples=60, deadline=None)
def test_to_text_mentions_every_key(rows):
    text = build(rows).to_text()
    for key in rows:
        assert str(key) in text
