"""Unit tests for attributes, relations, and schemas."""

import pytest

from repro import Attribute, AttributeRole, Relation, Schema, SchemaError


class TestAttribute:
    def test_hard_constructor(self):
        attribute = Attribute.hard("age")
        assert attribute.name == "age"
        assert attribute.role is AttributeRole.HARD
        assert not attribute.is_flexible

    def test_flexible_constructor(self):
        attribute = Attribute.flexible("age", weight=0.5)
        assert attribute.is_flexible
        assert attribute.weight == 0.5

    def test_flexible_default_weight(self):
        assert Attribute.flexible("age").weight == 1.0

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Attribute.hard("")

    def test_rejects_bad_characters(self):
        with pytest.raises(SchemaError):
            Attribute.hard("my attr")

    def test_rejects_leading_digit(self):
        with pytest.raises(SchemaError):
            Attribute.hard("1abc")

    def test_allows_underscores(self):
        assert Attribute.hard("my_attr").name == "my_attr"

    def test_rejects_zero_weight(self):
        with pytest.raises(SchemaError):
            Attribute.flexible("age", weight=0.0)

    def test_rejects_negative_weight(self):
        with pytest.raises(SchemaError):
            Attribute.flexible("age", weight=-1.0)

    def test_is_frozen(self):
        attribute = Attribute.hard("age")
        with pytest.raises(AttributeError):
            attribute.name = "other"


class TestRelation:
    def make(self):
        return Relation(
            "Client",
            [Attribute.hard("id"), Attribute.flexible("a"), Attribute.flexible("c")],
            key=["id"],
        )

    def test_basic_properties(self):
        relation = self.make()
        assert relation.name == "Client"
        assert relation.arity == 3
        assert relation.attribute_names == ("id", "a", "c")
        assert relation.key == ("id",)

    def test_string_attributes_become_hard(self):
        relation = Relation("R", ["x", "y"], key=["x"])
        assert all(not a.is_flexible for a in relation.attributes)

    def test_position_lookup(self):
        relation = self.make()
        assert relation.position("id") == 0
        assert relation.position("c") == 2

    def test_position_unknown_raises(self):
        with pytest.raises(SchemaError):
            self.make().position("nope")

    def test_attribute_lookup(self):
        assert self.make().attribute("a").is_flexible

    def test_attribute_unknown_raises(self):
        with pytest.raises(SchemaError):
            self.make().attribute("nope")

    def test_flexible_attributes(self):
        relation = self.make()
        assert [a.name for a in relation.flexible_attributes] == ["a", "c"]

    def test_key_positions(self):
        relation = Relation(
            "Buy",
            [Attribute.hard("id"), Attribute.hard("i"), Attribute.flexible("p")],
            key=["id", "i"],
        )
        assert relation.key_positions == (0, 1)
        assert relation.is_key_attribute("i")
        assert not relation.is_key_attribute("p")

    def test_duplicate_attribute_names_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", [Attribute.hard("x"), Attribute.hard("x")], key=["x"])

    def test_missing_key_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", [Attribute.hard("x")], key=["y"])

    def test_empty_key_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", [Attribute.hard("x")], key=[])

    def test_flexible_key_rejected(self):
        # F ∩ K_R = ∅ (Section 2): keys are never updatable.
        with pytest.raises(SchemaError):
            Relation("R", [Attribute.flexible("x")], key=["x"])

    def test_duplicate_key_rejected(self):
        with pytest.raises(SchemaError):
            Relation(
                "R", [Attribute.hard("x"), Attribute.hard("y")], key=["x", "x"]
            )

    def test_empty_attribute_list_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", [], key=["x"])

    def test_bad_relation_name_rejected(self):
        with pytest.raises(SchemaError):
            Relation("bad name", [Attribute.hard("x")], key=["x"])

    def test_equality_and_hash(self):
        assert self.make() == self.make()
        assert hash(self.make()) == hash(self.make())
        other = Relation("Other", [Attribute.hard("id")], key=["id"])
        assert self.make() != other


class TestSchema:
    def make(self):
        return Schema(
            [
                Relation("A", [Attribute.hard("x"), Attribute.flexible("v")], key=["x"]),
                Relation("B", [Attribute.hard("y")], key=["y"]),
            ]
        )

    def test_lookup(self):
        schema = self.make()
        assert schema.relation("A").name == "A"
        assert "B" in schema
        assert "C" not in schema

    def test_unknown_relation_raises(self):
        with pytest.raises(SchemaError):
            self.make().relation("C")

    def test_iteration_and_len(self):
        schema = self.make()
        assert len(schema) == 2
        assert [r.name for r in schema] == ["A", "B"]
        assert schema.relation_names == ("A", "B")

    def test_duplicate_relation_rejected(self):
        schema = self.make()
        with pytest.raises(SchemaError):
            schema.add(Relation("A", [Attribute.hard("z")], key=["z"]))

    def test_flexible_attributes_map(self):
        flexible = self.make().flexible_attributes()
        assert [a.name for a in flexible["A"]] == ["v"]
        assert flexible["B"] == ()

    def test_weight_lookup(self):
        schema = Schema(
            [Relation("R", [Attribute.hard("k"), Attribute.flexible("v", 0.25)], key=["k"])]
        )
        assert schema.weight("R", "v") == 0.25

    def test_weight_of_hard_attribute_raises(self):
        with pytest.raises(SchemaError):
            self.make().weight("A", "x")

    def test_equality(self):
        assert self.make() == self.make()
        assert self.make() != Schema([])
