"""Unit tests for database instances."""

import pytest

from repro import (
    Attribute,
    DatabaseInstance,
    InstanceError,
    KeyViolationError,
    Relation,
    Schema,
    Tuple,
    TupleRef,
)


@pytest.fixture
def schema():
    return Schema(
        [
            Relation(
                "Client",
                [Attribute.hard("id"), Attribute.flexible("a")],
                key=["id"],
            ),
            Relation(
                "Buy",
                [Attribute.hard("id"), Attribute.hard("i"), Attribute.flexible("p")],
                key=["id", "i"],
            ),
        ]
    )


@pytest.fixture
def instance(schema):
    return DatabaseInstance.from_rows(
        schema,
        {
            "Client": [(1, 20), (2, 15)],
            "Buy": [(1, 0, 10), (1, 1, 30), (2, 0, 5)],
        },
    )


class TestConstruction:
    def test_from_rows_counts(self, instance):
        assert instance.count("Client") == 2
        assert instance.count("Buy") == 3
        assert instance.count() == 5
        assert len(instance) == 5

    def test_insert_row_returns_tuple(self, schema):
        instance = DatabaseInstance(schema)
        tup = instance.insert_row("Client", (9, 33))
        assert tup["a"] == 33
        assert instance.count() == 1

    def test_duplicate_key_rejected(self, instance, schema):
        with pytest.raises(KeyViolationError):
            instance.insert(Tuple(schema.relation("Client"), (1, 99)))

    def test_composite_key_uniqueness(self, instance):
        with pytest.raises(KeyViolationError):
            instance.insert_row("Buy", (1, 0, 99))
        instance.insert_row("Buy", (1, 2, 99))  # new item index is fine

    def test_unknown_relation_rejected(self, instance):
        with pytest.raises(InstanceError):
            instance.tuples("Nope")


class TestLookup:
    def test_get_by_key(self, instance):
        assert instance.get("Client", (2,))["a"] == 15
        assert instance.get("Buy", (1, 1))["p"] == 30

    def test_get_missing_raises(self, instance):
        with pytest.raises(InstanceError):
            instance.get("Client", (7,))

    def test_resolve_ref(self, instance):
        tup = instance.resolve(TupleRef("Buy", (2, 0)))
        assert tup["p"] == 5

    def test_contains_tuple(self, instance, schema):
        assert Tuple(schema.relation("Client"), (1, 20)) in instance
        assert Tuple(schema.relation("Client"), (1, 21)) not in instance
        assert Tuple(schema.relation("Client"), (9, 20)) not in instance

    def test_contains_key(self, instance):
        assert instance.contains_key("Client", (1,))
        assert not instance.contains_key("Client", (9,))

    def test_key_values(self, instance):
        assert instance.key_values("Buy") == {(1, 0), (1, 1), (2, 0)}

    def test_all_tuples(self, instance):
        assert sum(1 for _ in instance.all_tuples()) == 5


class TestMutation:
    def test_replace_tuple(self, instance, schema):
        old = instance.replace_tuple(Tuple(schema.relation("Client"), (2, 18)))
        assert old["a"] == 15
        assert instance.get("Client", (2,))["a"] == 18

    def test_replace_missing_raises(self, instance, schema):
        with pytest.raises(InstanceError):
            instance.replace_tuple(Tuple(schema.relation("Client"), (7, 18)))

    def test_delete(self, instance):
        deleted = instance.delete("Buy", (1, 1))
        assert deleted["p"] == 30
        assert instance.count("Buy") == 2

    def test_delete_missing_raises(self, instance):
        with pytest.raises(InstanceError):
            instance.delete("Buy", (9, 9))

    def test_copy_is_independent(self, instance, schema):
        clone = instance.copy()
        clone.replace_tuple(Tuple(schema.relation("Client"), (2, 99)))
        assert instance.get("Client", (2,))["a"] == 15
        assert clone.get("Client", (2,))["a"] == 99

    def test_copy_equal(self, instance):
        assert instance.copy() == instance


class TestComparison:
    def test_same_key_sets(self, instance, schema):
        clone = instance.copy()
        assert instance.same_key_sets(clone)
        clone.replace_tuple(Tuple(schema.relation("Client"), (2, 99)))
        assert instance.same_key_sets(clone)  # keys unchanged by update
        clone.delete("Client", (2,))
        assert not instance.same_key_sets(clone)

    def test_equality_differs_on_values(self, instance, schema):
        clone = instance.copy()
        assert clone == instance
        clone.replace_tuple(Tuple(schema.relation("Client"), (2, 99)))
        assert clone != instance

    def test_to_text_mentions_all_relations(self, instance):
        text = instance.to_text()
        assert "Client" in text and "Buy" in text
        assert "1, 20" in text
