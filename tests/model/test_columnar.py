"""Unit tests for columnar snapshot reuse across instances and commit rounds.

The version-keyed :class:`ColumnarStore` logic (rekey, transfer, the
per-instance registry) is pure bookkeeping and is tested *without*
NumPy by planting sentinel snapshots; the tests that build real
snapshots and drive streaming commit rounds are gated on the kernel
extra.
"""

from __future__ import annotations

import pytest

from repro import StreamingRepairer
from repro.model.columnar import (
    ColumnarStore,
    kernel_available,
    store_for,
    transfer_store,
)
from repro.workloads import client_buy_workload

needs_kernel = pytest.mark.skipif(
    not kernel_available(), reason="NumPy not installed (repro[kernel] extra)"
)


@pytest.fixture
def workload():
    return client_buy_workload(20, inconsistency_ratio=0.0, seed=2)


def plant(store: ColumnarStore, instance, relation_name: str, marker: object):
    """Install a sentinel snapshot keyed to the instance's live version."""
    store._snapshots[relation_name] = (
        instance.data_version(relation_name),
        marker,
    )


class TestStoreBookkeeping:
    def test_store_for_is_stable_per_instance(self, workload):
        instance = workload.instance.copy()
        assert store_for(instance) is store_for(instance)
        assert store_for(instance) is not store_for(workload.instance)

    def test_rekey_restamps_and_drops(self, workload):
        instance = workload.instance.copy()
        store = ColumnarStore()
        plant(store, instance, "Client", "client-snap")
        plant(store, instance, "Buy", "buy-snap")
        successor = instance.copy()           # version counters reset
        store.rekey(successor, drop=["Buy"])
        assert store.cached_relations == ("Client",)
        assert store._snapshots["Client"] == (
            successor.data_version("Client"),
            "client-snap",
        )

    def test_transfer_rehomes_surviving_snapshots(self, workload):
        old = workload.instance.copy()
        store = store_for(old)
        plant(store, old, "Client", "client-snap")
        plant(store, old, "Buy", "buy-snap")
        new = old.copy()
        transferred = transfer_store(old, new, changed_relations={"Buy"})
        assert transferred is store
        assert store_for(new) is store        # re-homed under the successor
        assert store.cached_relations == ("Client",)
        # the old instance no longer owns a store with these snapshots.
        assert store_for(old) is not store

    def test_transfer_to_self_just_drops_changed(self, workload):
        instance = workload.instance.copy()
        store = store_for(instance)
        plant(store, instance, "Client", "client-snap")
        plant(store, instance, "Buy", "buy-snap")
        assert transfer_store(instance, instance, {"Client"}) is store
        assert store.cached_relations == ("Buy",)

    def test_transfer_of_unknown_instance_is_fresh_store(self, workload):
        old = workload.instance.copy()        # never had a store
        new = old.copy()
        store = transfer_store(old, new)
        assert store.cached_relations == ()
        assert store_for(new) is store


@needs_kernel
class TestSnapshotReuseAcrossRounds:
    """Warm snapshots survive interleaved streaming commit rounds.

    Snapshot-free rounds keep the instance object and only bump the
    mutated relation's version (rebuild exactly that one); snapshotting
    rounds swap instance objects and must carry the untouched snapshots
    across via :func:`transfer_store`.
    """

    def _violating_round(self, streamer):
        streamer.update("Client", (0,), a=15, c=60)
        result = streamer.flush()
        assert result.changes                 # a repair actually applied

    def test_snapshot_free_round_reuses_untouched_relation(self, workload):
        streamer = StreamingRepairer(workload.instance, workload.constraints)
        live = streamer._repairer._instance
        store = store_for(live)
        client_snap = store.relation(live, "Client")
        buy_snap = store.relation(live, "Buy")
        self._violating_round(streamer)
        assert streamer._repairer._instance is live
        assert store.relation(live, "Buy") is buy_snap
        assert store.relation(live, "Client") is not client_snap

    def test_snapshotting_round_transfers_store_across_swap(self, workload):
        streamer = StreamingRepairer(
            workload.instance, workload.constraints, snapshot_results=True
        )
        old = streamer._repairer._instance
        store = store_for(old)
        buy_snap = store.relation(old, "Buy")
        self._violating_round(streamer)
        new = streamer._repairer._instance
        assert new is not old                 # the apply swapped instances
        assert store_for(new) is store
        assert store.relation(new, "Buy") is buy_snap

    def test_interleaved_rounds_stay_warm(self, workload):
        streamer = StreamingRepairer(workload.instance, workload.constraints)
        live = streamer._repairer._instance
        store = store_for(live)
        buy_snap = store.relation(live, "Buy")
        for client in range(3):               # several rounds, Client-only
            streamer.update("Client", (client,), a=15, c=60 + client)
            streamer.flush()
            assert store.relation(live, "Buy") is buy_snap
