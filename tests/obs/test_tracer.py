"""Unit tests for the Tracer activation/fan-in protocol (repro.obs.trace)."""

from __future__ import annotations

import os
import threading

import pytest

from repro.obs import NULL_TRACER, NullTracer, Tracer, as_tracer, current_tracer
from repro.obs.trace import _NULL_SPAN


class TestSpanTree:
    def test_nesting_follows_with_blocks(self):
        tracer = Tracer()
        with tracer.span("repair", category="pipeline"):
            with tracer.span("detect", category="stage"):
                with tracer.span("detect:ic1"):
                    pass
            with tracer.span("solve", category="stage"):
                pass
        trace = tracer.finish()
        assert [s.name for s in trace.spans()] == [
            "repair", "detect", "detect:ic1", "solve",
        ]
        root = trace.roots[0]
        assert [c.name for c in root.children] == ["detect", "solve"]

    def test_current_tracks_innermost(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_exception_tags_error_and_closes(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("nope")
        trace = tracer.finish()
        span = trace.find("boom")
        assert span is not None and span.closed
        assert span.tags["error"] == "RuntimeError"

    def test_finish_skips_open_spans_and_sorts_roots(self):
        tracer = Tracer()
        with tracer.span("done"):
            pass
        open_cm = tracer.span("still-open")
        open_cm.__enter__()
        trace = tracer.finish()
        assert [s.name for s in trace.spans()] == ["done"]
        assert trace.meta["pid"] == os.getpid()


class TestActivation:
    def test_activate_swaps_global_and_restores(self):
        assert current_tracer() is NULL_TRACER
        tracer = Tracer()
        with tracer.activate():
            assert current_tracer() is tracer
            inner = Tracer()
            with inner.activate():
                assert current_tracer() is inner
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_thread_spans_attach_under_anchor(self):
        """Pool threads with empty stacks attach to the open anchor span."""
        tracer = Tracer()

        def worker():
            with tracer.activate():
                with current_tracer().span("detect:ic1"):
                    pass

        with tracer.activate():
            with tracer.span("detect", category="stage", anchor=True):
                thread = threading.Thread(target=worker)
                thread.start()
                thread.join()
        trace = tracer.finish()
        stage = trace.find("detect")
        assert [c.name for c in stage.children] == ["detect:ic1"]

    def test_foreign_thread_without_anchor_becomes_root(self):
        tracer = Tracer()

        def worker():
            with tracer.span("orphan"):
                pass

        with tracer.span("main", anchor=False):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        trace = tracer.finish()
        assert sorted(root.name for root in trace.roots) == ["main", "orphan"]


class TestRemoteFanIn:
    def test_export_attach_round_trip(self):
        worker = Tracer("worker")
        with worker.span("solve:greedy", category="solver"):
            pass
        worker.metrics.counter("cover_sets", algorithm="greedy").inc(3)
        payload = worker.export_remote()
        assert payload["pid"] == os.getpid()

        parent = Tracer()
        with parent.span("solve", category="stage") as stage:
            parent.attach_remote(payload)
        trace = parent.finish()
        assert trace.find("solve:greedy") is not None
        assert stage.children[0].name == "solve:greedy"
        counters = trace.metrics["counters"]
        assert counters == [
            {
                "name": "cover_sets",
                "labels": {"algorithm": "greedy"},
                "value": 3,
            }
        ]

    def test_attach_remote_clamps_into_parent_window(self):
        worker = Tracer("worker")
        with worker.span("work"):
            pass
        payload = worker.export_remote()
        # Skew the worker span far outside any plausible parent window.
        payload["spans"][0]["start"] -= 3600.0
        payload["spans"][0]["duration"] = 7200.0

        parent = Tracer()
        with parent.span("stage") as stage:
            parent.attach_remote(payload)
        child = stage.children[0]
        assert child.start >= stage.start
        assert child.end <= stage.end + 1e-9
        assert child.duration >= 0.0

    def test_attach_remote_without_parent_adds_roots(self):
        worker = Tracer("worker")
        with worker.span("loose"):
            pass
        parent = Tracer()
        parent.attach_remote(worker.export_remote())
        assert [r.name for r in parent.finish().roots] == ["loose"]

    def test_attach_none_payload_is_noop(self):
        parent = Tracer()
        parent.attach_remote(None)
        parent.attach_remote({})
        assert len(parent.finish()) == 0


class TestNullTracer:
    def test_span_allocates_nothing(self):
        a = NULL_TRACER.span("x", category="stage", anchor=True, tag=1)
        b = NULL_TRACER.span("y")
        assert a is b is _NULL_SPAN

    def test_null_span_surface(self):
        with NULL_TRACER.span("x") as span:
            assert span.tag(anything=1) is span
            assert span.children == ()
            assert span.duration == 0.0

    def test_finish_is_empty(self):
        trace = NULL_TRACER.finish()
        assert len(trace) == 0
        assert trace.metrics == {"counters": [], "gauges": []}


class TestAsTracer:
    def test_false_and_none_give_null(self):
        assert as_tracer(False) is NULL_TRACER
        assert as_tracer(None) is NULL_TRACER

    def test_true_gives_fresh_tracers(self):
        a, b = as_tracer(True), as_tracer(True)
        assert isinstance(a, Tracer) and isinstance(b, Tracer)
        assert a is not b

    def test_tracer_passes_through(self):
        tracer = Tracer()
        assert as_tracer(tracer) is tracer
        null = NullTracer()
        assert as_tracer(null) is null

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_tracer("yes")
