"""Unit tests for the Counter/Gauge registry (repro.obs.metrics)."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry, Tracer
from repro.obs.metrics import NULL_METRICS


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("violations_found", constraint="ic1")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_and_set_max(self):
        gauge = MetricsRegistry().gauge("inconsistency_degree")
        gauge.set_max(3)
        gauge.set_max(1)
        assert gauge.value == 3
        gauge.set(1)
        assert gauge.value == 1

    def test_get_or_create_identity(self):
        registry = MetricsRegistry()
        a = registry.counter("n", label="x")
        b = registry.counter("n", label="x")
        c = registry.counter("n", label="y")
        assert a is b
        assert a is not c
        assert len(registry) == 2


class TestRegistryIsolation:
    def test_tracers_do_not_share_metrics(self):
        """Each Tracer owns a private registry - the isolation contract."""
        first, second = Tracer("one"), Tracer("two")
        first.metrics.counter("mlf_evaluations").inc(7)
        snapshot = second.metrics.snapshot()
        assert snapshot == {"counters": [], "gauges": []}
        assert first.metrics.snapshot()["counters"][0]["value"] == 7

    def test_consecutive_runs_start_clean(self):
        for expected in (3, 5):
            tracer = Tracer()
            tracer.metrics.counter("cover_sets").inc(expected)
            counters = tracer.metrics.snapshot()["counters"]
            assert counters == [
                {"name": "cover_sets", "labels": {}, "value": expected}
            ]


class TestSnapshots:
    def test_snapshot_is_deterministically_ordered(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a", k="2").inc()
        registry.counter("a", k="1").inc()
        names = [
            (c["name"], c["labels"])
            for c in registry.snapshot()["counters"]
        ]
        assert names == [("a", {"k": "1"}), ("a", {"k": "2"}), ("b", {})]

    def test_unset_gauges_are_omitted(self):
        registry = MetricsRegistry()
        registry.gauge("never_written")
        assert registry.snapshot()["gauges"] == []

    def test_merge_counters_add_gauges_max(self):
        parent = MetricsRegistry()
        parent.counter("violations_found", constraint="ic1").inc(2)
        parent.gauge("inconsistency_degree").set(3)

        worker = MetricsRegistry()
        worker.counter("violations_found", constraint="ic1").inc(5)
        worker.counter("violations_found", constraint="ic2").inc(1)
        worker.gauge("inconsistency_degree").set(2)

        parent.merge_snapshot(worker.snapshot())
        snapshot = parent.snapshot()
        counters = {
            (c["name"], tuple(sorted(c["labels"].items()))): c["value"]
            for c in snapshot["counters"]
        }
        assert counters[("violations_found", (("constraint", "ic1"),))] == 7
        assert counters[("violations_found", (("constraint", "ic2"),))] == 1
        assert snapshot["gauges"] == [
            {"name": "inconsistency_degree", "labels": {}, "value": 3}
        ]

    def test_merge_empty_snapshot_is_noop(self):
        registry = MetricsRegistry()
        registry.merge_snapshot({"counters": [], "gauges": []})
        registry.merge_snapshot({})
        assert len(registry) == 0


class TestNullMetrics:
    def test_null_registry_records_nothing(self):
        NULL_METRICS.counter("anything", label="x").inc(100)
        NULL_METRICS.gauge("anything").set_max(9)
        assert NULL_METRICS.snapshot() == {"counters": [], "gauges": []}
        assert len(NULL_METRICS) == 0

    def test_null_instruments_are_shared(self):
        a = NULL_METRICS.counter("a")
        b = NULL_METRICS.gauge("b", label="y")
        assert a is b
