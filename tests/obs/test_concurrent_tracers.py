"""Tracer isolation under concurrency: live tracers never interleave.

The service runs one :class:`Tracer` per job on a shared bridge pool -
thread-local activation must keep each thread's spans in its own trace,
and the latency helpers must summarize each trace independently.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs import trace as trace_module
from repro.obs.export import latency_summary, percentile, summarize_trace
from repro.obs.trace import Tracer, current_tracer
from repro.service import JobRequest, run_jobs
from repro.workloads.clientbuy import client_buy_workload


@pytest.fixture(autouse=True)
def _restore_global_fallback():
    """Overlapping cross-thread activations intentionally leave the
    process-global fallback on the most recent activation ("last
    activation wins" for anonymous threads) - scrub it after each test
    so the stale tracer never bleeds into the rest of the suite."""
    with trace_module._ACTIVE_LOCK:
        before = trace_module._ACTIVE
    yield
    with trace_module._ACTIVE_LOCK:
        trace_module._ACTIVE = before


class TestThreadLocalActivation:
    def test_local_activation_beats_the_global_fallback(self):
        """A thread's own activation is authoritative - a concurrent
        activation on another thread never disturbs it."""
        seen = {}
        mine_active = threading.Event()
        other_done = threading.Event()

        def other_thread():
            mine_active.wait(5.0)
            own = Tracer("other")
            with own.activate():  # overwrites the global fallback...
                seen["other"] = current_tracer()
            other_done.set()

        tracer = Tracer("mine")
        worker = threading.Thread(target=other_thread)
        worker.start()
        with tracer.activate():
            mine_active.set()
            other_done.wait(5.0)
            seen["mine"] = current_tracer()  # ...but not this local slot
        worker.join()
        assert seen["mine"] is tracer
        assert seen["other"].name == "other"

    def test_anonymous_thread_inherits_the_fallback(self):
        """A thread with no activation of its own reads the most recent
        activation - how executor worker threads join a traced run."""
        seen = {}
        ready = threading.Event()
        release = threading.Event()

        def anonymous_thread():
            ready.wait(5.0)
            seen["anonymous"] = current_tracer()
            release.set()

        tracer = Tracer("mine")
        worker = threading.Thread(target=anonymous_thread)
        worker.start()
        with tracer.activate():
            ready.set()
            release.wait(5.0)
        worker.join()
        assert seen["anonymous"] is tracer

    def test_two_live_tracers_do_not_interleave_spans(self):
        """Two threads tracing concurrently each keep their own spans."""
        barrier = threading.Barrier(2, timeout=10.0)
        traces = {}

        def traced_work(name: str, count: int) -> None:
            tracer = Tracer(name)
            with tracer.activate():
                barrier.wait()
                for i in range(count):
                    with current_tracer().span(f"{name}-step", index=i):
                        time.sleep(0.001)
            traces[name] = tracer.finish()

        threads = [
            threading.Thread(target=traced_work, args=("left", 7)),
            threading.Thread(target=traced_work, args=("right", 11)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        for name, count in (("left", 7), ("right", 11)):
            spans = list(traces[name].spans())
            assert len(spans) == count
            assert {span.name for span in spans} == {f"{name}-step"}

    def test_nested_activation_restores_previous(self):
        before = current_tracer()
        outer, inner = Tracer("outer"), Tracer("inner")
        with outer.activate():
            assert current_tracer() is outer
            with inner.activate():
                assert current_tracer() is inner
            assert current_tracer() is outer
        assert current_tracer() is before


class TestLatencyHelpersUnderConcurrency:
    def test_summaries_are_per_trace(self):
        """Latency stats computed from concurrent traces stay disjoint."""
        barrier = threading.Barrier(3, timeout=10.0)
        traces = {}

        def traced_commits(name: str, count: int) -> None:
            tracer = Tracer(name)
            with tracer.activate():
                barrier.wait()
                for _ in range(count):
                    with current_tracer().span("commit", category="pipeline"):
                        time.sleep(0.001)
            traces[name] = tracer.finish()

        threads = [
            threading.Thread(target=traced_commits, args=(f"job{i}", 3 + i))
            for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        for i in range(3):
            (row,) = latency_summary(traces[f"job{i}"], names=("commit",))
            assert row["count"] == 3 + i
            assert row["p50_seconds"] > 0.0
            assert row["p99_seconds"] <= row["max_seconds"]

    def test_service_job_traces_are_disjoint(self):
        """End to end: two concurrent traced jobs, two clean span trees."""
        workload = client_buy_workload(25, inconsistency_ratio=0.4, seed=13)
        requests = [JobRequest(workload.instance, tuple(workload.constraints))] * 2
        views, service = run_jobs(requests, workers=2, trace_jobs=True)
        for view in views:
            trace = service.trace_of(view.id)
            by_name = {row["name"]: row for row in summarize_trace(trace)}
            # Each job's trace holds exactly one repair pipeline - never
            # a neighbour's spans on top of its own.  (The span *sets*
            # may differ: whichever job detects first populates the
            # violations cache and the other skips its detect spans.)
            assert by_name["repair"]["count"] == 1
            assert by_name["solve"]["count"] >= 1


class TestPercentileContract:
    def test_percentile_bounds(self):
        values = [float(v) for v in range(10)]
        assert percentile(values, 0.0) == 0.0
        assert percentile(values, 100.0) == 9.0
        assert percentile(values, 50.0) == pytest.approx(4.5)

    def test_single_sample(self):
        assert percentile([3.5], 99.0) == 3.5
