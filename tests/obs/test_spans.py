"""Unit tests for the Span/Trace data model (repro.obs.spans)."""

from __future__ import annotations

import pickle
import time

import pytest

from repro.obs import Span, Trace
from repro.obs.spans import _clamp_into


def make_span(name, start, duration, children=(), **tags):
    """A closed span at an explicit position (bypasses the live clocks)."""
    span = Span.from_dict(
        {
            "name": name,
            "start": start,
            "duration": duration,
            "cpu": duration / 2,
            "children": [],
            "tags": dict(tags),
        }
    )
    span.children = list(children)
    return span


class TestSpanLifecycle:
    def test_open_then_closed(self):
        span = Span("work")
        assert not span.closed
        assert span.duration is None
        time.sleep(0.002)
        span.close()
        assert span.closed
        assert span.duration >= 0.002
        assert span.cpu is not None and span.cpu >= 0.0

    def test_close_is_idempotent(self):
        span = Span("work")
        span.close()
        first = span.duration
        time.sleep(0.002)
        span.close()
        assert span.duration == first

    def test_end_of_closed_span(self):
        span = make_span("s", start=100.0, duration=2.5)
        assert span.end == pytest.approx(102.5)

    def test_tag_returns_self_and_overwrites(self):
        span = Span("s", tags={"a": 1})
        assert span.tag(a=2, b="x") is span
        assert span.tags == {"a": 2, "b": "x"}

    def test_nested_timing_invariant(self):
        """A live parent/child pair obeys the containment invariants."""
        parent = Span("parent")
        time.sleep(0.001)
        child = Span("child")
        time.sleep(0.001)
        child.close()
        parent.children.append(child)
        time.sleep(0.001)
        parent.close()
        assert child.start >= parent.start
        assert child.end <= parent.end
        assert 0 <= child.duration <= parent.duration


class TestClamping:
    def test_child_outside_window_is_clamped(self):
        child = make_span("child", start=0.0, duration=10.0)
        parent = make_span("parent", start=2.0, duration=3.0, children=[child])
        parent.clamp_children()
        assert child.start == pytest.approx(2.0)
        assert child.end <= parent.end + 1e-12
        assert child.duration >= 0.0

    def test_clamp_is_recursive(self):
        grandchild = make_span("g", start=-5.0, duration=100.0)
        child = make_span("c", start=0.0, duration=10.0, children=[grandchild])
        parent = make_span("p", start=1.0, duration=2.0, children=[child])
        parent.clamp_children()
        for span in parent.walk():
            assert span.start >= parent.start - 1e-12
            assert span.end <= parent.end + 1e-12
            assert span.duration >= 0.0

    def test_clamp_closes_open_children(self):
        child = Span("open-child")
        assert not child.closed
        parent = make_span("p", start=child.start - 1.0, duration=5.0)
        parent.children.append(child)
        parent.clamp_children()
        assert child.closed
        assert child.duration >= 0.0

    def test_clamp_into_degenerate_window(self):
        span = make_span("s", start=5.0, duration=1.0)
        _clamp_into(span, 2.0, 2.0)
        assert span.start == pytest.approx(2.0)
        assert span.duration == pytest.approx(0.0)


class TestSpanSerialization:
    def test_dict_round_trip(self):
        child = make_span("c", start=1.5, duration=0.5, engine="kernel")
        root = make_span("r", start=1.0, duration=2.0, children=[child])
        rebuilt = Span.from_dict(root.to_dict())
        assert rebuilt.name == "r"
        assert rebuilt.start == pytest.approx(1.0)
        assert [c.name for c in rebuilt.children] == ["c"]
        assert rebuilt.children[0].tags == {"engine": "kernel"}
        assert rebuilt.to_dict() == root.to_dict()

    def test_pickle_round_trip(self):
        child = make_span("c", start=1.5, duration=0.5, n=3)
        root = make_span("r", start=1.0, duration=2.0, children=[child])
        rebuilt = pickle.loads(pickle.dumps(root))
        assert rebuilt.to_dict() == root.to_dict()

    def test_pickling_open_span_does_not_crash(self):
        # Workers should only ship closed spans, but an open one must at
        # least survive the boundary (duration collapses to 0.0).
        span = Span("open")
        rebuilt = pickle.loads(pickle.dumps(span))
        assert rebuilt.duration == 0.0

    def test_walk_and_find(self):
        leaf = make_span("leaf", start=0.2, duration=0.1)
        mid = make_span("mid", start=0.1, duration=0.5, children=[leaf])
        root = make_span("root", start=0.0, duration=1.0, children=[mid])
        assert [s.name for s in root.walk()] == ["root", "mid", "leaf"]
        assert root.find("leaf") is leaf
        assert root.find("missing") is None


class TestTrace:
    def _trace(self):
        stages = [
            make_span("detect", 0.0, 0.3),
            make_span("solve", 0.3, 0.6),
        ]
        for stage in stages:
            stage.category = "stage"
        root = make_span("repair", 0.0, 1.0, children=stages)
        return Trace(roots=[root], metrics={"counters": [], "gauges": []})

    def test_len_and_spans(self):
        trace = self._trace()
        assert len(trace) == 3
        assert [s.name for s in trace.spans()] == ["repair", "detect", "solve"]

    def test_stage_seconds_view(self):
        trace = self._trace()
        assert trace.stage_seconds() == {
            "detect": pytest.approx(0.3),
            "solve": pytest.approx(0.6),
        }
        assert trace.stage_seconds("missing-root") == {}

    def test_dict_round_trip(self):
        trace = self._trace()
        data = trace.to_dict()
        assert data["format"] == "repro-trace"
        rebuilt = Trace.from_dict(data)
        assert rebuilt.to_dict() == data
