"""Tracing must never change a repair: traced vs untraced parity.

The observability layer's core promise is that it only *observes* -
``repair_database(..., trace=True)`` returns the byte-identical repair
(same changes, same cover, same serialized form) as the untraced call,
for every approximation algorithm and both detection engines.
"""

from __future__ import annotations

import json

import pytest

from repro import repair_database
from repro.model import kernel_available
from repro.repair.serialize import change_to_dict

APPROXIMATIONS = ["greedy", "modified-greedy", "layer", "modified-layer"]
ENGINES = ["interpreted"] + (["kernel"] if kernel_available() else [])


def _comparable(result):
    """Everything a repair produced except the observability payloads."""
    return {
        "changes": json.dumps(
            [change_to_dict(c) for c in result.changes], sort_keys=True
        ),
        "cover_weight": result.cover_weight,
        "distance": result.distance,
        "violations_before": result.violations_before,
        "verified": result.verified,
        "solver_iterations": result.solver_iterations,
        "repaired": result.repaired,
    }


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("algorithm", APPROXIMATIONS)
def test_traced_run_is_byte_identical(small_clientbuy, algorithm, engine):
    kwargs = dict(algorithm=algorithm, engine=engine)
    untraced = repair_database(
        small_clientbuy.instance, small_clientbuy.constraints, **kwargs
    )
    traced = repair_database(
        small_clientbuy.instance,
        small_clientbuy.constraints,
        trace=True,
        **kwargs,
    )
    assert untraced.trace is None
    assert traced.trace is not None and len(traced.trace) > 0
    assert _comparable(traced) == _comparable(untraced)


@pytest.mark.parametrize("algorithm", APPROXIMATIONS)
def test_parity_on_paper_example(paper_pub, algorithm):
    untraced = repair_database(
        paper_pub.instance, paper_pub.constraints, algorithm=algorithm
    )
    traced = repair_database(
        paper_pub.instance,
        paper_pub.constraints,
        algorithm=algorithm,
        trace=True,
    )
    assert _comparable(traced) == _comparable(untraced)
    # The stats schema is identical too - tracing adds no keys there.
    assert dict(traced.solver_stats) == dict(untraced.solver_stats)


def test_parity_under_thread_runtime(small_clientbuy):
    from repro.runtime import ExecutionPolicy

    policy = ExecutionPolicy(backend="thread", max_workers=2)
    untraced = repair_database(
        small_clientbuy.instance,
        small_clientbuy.constraints,
        algorithm="modified-greedy",
        parallel=policy,
    )
    traced = repair_database(
        small_clientbuy.instance,
        small_clientbuy.constraints,
        algorithm="modified-greedy",
        parallel=policy,
        trace=True,
    )
    assert _comparable(traced) == _comparable(untraced)
